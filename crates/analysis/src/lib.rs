//! Static analysis over the lowered [`TestProgram`] IR.
//!
//! McVerSi spends nearly all wall-clock simulating candidate tests, yet much
//! of a test's discriminating power is decidable without running it.  This
//! crate reasons about programs *before* (and independently of) simulation,
//! in three layers:
//!
//! 1. **Dataflow** ([`dataflow`]) — per-thread def-use chains, address/value
//!    flow, and the syntactic dependency graph (addr/data/ctrl) reconstructed
//!    from the IR alone.  The reconstruction mirrors the simulator's
//!    [`ExecObserver`](mcversi_sim::observer::ExecObserver) exactly (same
//!    event-id allocation, same dependency-degradation semantics), so the
//!    static graph is differential-checked against the dynamic
//!    `CandidateExecution::deps` in the test suite.
//! 2. **Lints** ([`lint`]) — a registry of [`Lint`]s over the dataflow facts
//!    with severities and machine-readable [`Diagnostic`] output (JSON via
//!    serde): dead values, ineffective/shadowed fences, tests with no
//!    cross-thread conflict, unreachable `exists` clauses, dependencies on
//!    thread-private locations.
//! 3. **Discrimination classifier** ([`mod@classify`]) — derives the program's
//!    candidate critical-cycle set from its conflict graph and queries
//!    [`ModelKind::forbids_cycle`](mcversi_mcm::ModelKind::forbids_cycle) to
//!    predict whether the test can distinguish models on the strength chain,
//!    or produce a violation under one target model at all.
//!
//! The `mcversi-lint` binary (in `mcversi-core`) runs the lints over corpora
//! and scenario-generated programs; the campaign loop can consult the
//! classifier as an opt-in pre-simulation prune (see
//! `mcversi_core::campaign`).
//!
//! [`TestProgram`]: mcversi_sim::TestProgram
//! [`Lint`]: lint::Lint
//! [`Diagnostic`]: lint::Diagnostic

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classify;
pub mod dataflow;
pub mod lint;

pub use classify::{classify, forbids_any, ClassifyBounds, Discrimination};
pub use dataflow::{Access, Dataflow, FencePoint};
pub use lint::{all_lints, run_lints, run_lints_on, Diagnostic, Lint, Severity};
