//! The lint framework: static checks over [`Dataflow`] facts with
//! machine-readable diagnostics.
//!
//! A [`Lint`] inspects one program's dataflow and emits [`Diagnostic`]s with
//! a fixed [`Severity`].  The registry ([`all_lints`]) currently holds six
//! lints; [`run_lints`] runs them all.  Diagnostics serialize to JSON (via
//! the vendored serde) so the `mcversi-lint` binary can feed CI gates and
//! external tooling.
//!
//! Every lint is *conservative on the enumerated corpus*: a program lowered
//! from a valid critical cycle triggers none of them (the corpus-wide CI
//! gate runs `mcversi-lint` over `enumerated:2x4` expecting zero
//! error-severity diagnostics, and the test suite pins each lint on minimal
//! positive/negative programs).

use crate::classify::{classify, ClassifyBounds};
use crate::dataflow::Dataflow;
use mcversi_sim::TestProgram;
use mcversi_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Programs linted ([`run_lints_on`] calls).
static LINT_RUNS: telemetry::Counter = telemetry::Counter::new("analysis.lint.runs");
/// Diagnostics emitted across all lint runs.
static LINT_DIAGNOSTICS: telemetry::Counter = telemetry::Counter::new("analysis.lint.diagnostics");

/// How serious a diagnostic is.
///
/// `Error` means the test is statically incapable of its purpose (it cannot
/// exhibit any memory-model violation); `Warning` flags ops whose effect is
/// dead or degraded; `Note` is reserved for informational output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational.
    Note,
    /// The op is dead, degraded or redundant; the test still works.
    Warning,
    /// The test cannot serve its purpose.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding of one lint, with an optional program location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Name of the emitting lint (kebab-case, stable).
    pub lint: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Thread the finding is about, if location-specific.
    pub thread: Option<usize>,
    /// Op index within the thread, if location-specific.
    pub poi: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.thread, self.poi) {
            (Some(t), Some(p)) => {
                write!(
                    f,
                    "{}: [{}] t{}:{}: {}",
                    self.severity, self.lint, t, p, self.message
                )
            }
            _ => write!(f, "{}: [{}] {}", self.severity, self.lint, self.message),
        }
    }
}

/// A static check over one program's dataflow facts.
pub trait Lint {
    /// Stable kebab-case name (appears in diagnostics and JSON output).
    fn name(&self) -> &'static str;
    /// The severity every diagnostic of this lint carries.
    fn severity(&self) -> Severity;
    /// Runs the check, appending findings to `out`.
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>);
}

/// Builds a diagnostic in a lint's name and severity.
fn diag(lint: &dyn Lint, thread: Option<usize>, poi: Option<u32>, message: String) -> Diagnostic {
    Diagnostic {
        lint: lint.name().to_string(),
        severity: lint.severity(),
        thread,
        poi,
        message,
    }
}

/// `dead-value`: a read of a location no op of the program writes.  Such a
/// read can only ever observe the initial value — its result is a constant,
/// so the op contributes nothing to the test's discriminating power.
#[derive(Debug, Default)]
pub struct DeadValue;

impl Lint for DeadValue {
    fn name(&self) -> &'static str {
        "dead-value"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        for access in df.accesses() {
            if access.is_read() && !access.rmw && !df.is_written(access.addr) {
                out.push(diag(
                    self,
                    Some(access.thread),
                    Some(access.poi),
                    format!(
                        "read of {} which no op writes: it always observes the initial value",
                        access.addr
                    ),
                ));
            }
        }
    }
}

/// `ineffective-fence`: a fence with no memory access on one side of it in
/// its thread (it orders nothing), or a fence shadowed by an adjacent
/// equal-or-stronger fence with no access in between.
#[derive(Debug, Default)]
pub struct IneffectiveFence;

impl Lint for IneffectiveFence {
    fn name(&self) -> &'static str {
        "ineffective-fence"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        for fence in df.fences() {
            let before = df.thread_accesses(fence.thread).any(|a| a.poi < fence.poi);
            let after = df.thread_accesses(fence.thread).any(|a| a.poi > fence.poi);
            if !before || !after {
                out.push(diag(
                    self,
                    Some(fence.thread),
                    Some(fence.poi),
                    format!(
                        "{} fence with no memory access {} it in its thread orders nothing",
                        fence.kind,
                        if before { "after" } else { "before" }
                    ),
                ));
                continue;
            }
            // Shadowing: an earlier fence of the same thread with no access
            // between them, of equal kind or a full fence, already orders
            // every pair this one could.
            let shadowed = df.fences().iter().any(|g| {
                g.thread == fence.thread
                    && g.poi < fence.poi
                    && (g.kind == fence.kind || g.kind == mcversi_mcm::FenceKind::Full)
                    && !df
                        .thread_accesses(fence.thread)
                        .any(|a| a.poi > g.poi && a.poi < fence.poi)
            });
            if shadowed {
                out.push(diag(
                    self,
                    Some(fence.thread),
                    Some(fence.poi),
                    format!(
                        "{} fence is shadowed by an adjacent equal-or-stronger fence",
                        fence.kind
                    ),
                ));
            }
        }
    }
}

/// `no-conflict`: no location is accessed by two threads with at least one
/// write.  Without a cross-thread conflict there is no communication edge,
/// hence no candidate cycle and no observable violation — the whole test is
/// wasted simulation time.
#[derive(Debug, Default)]
pub struct NoConflict;

impl Lint for NoConflict {
    fn name(&self) -> &'static str {
        "no-conflict"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        if df.conflict_addresses().is_empty() {
            out.push(diag(
                self,
                None,
                None,
                "no cross-thread conflict: every location is thread-private or read-only, \
                 so the test cannot exhibit a memory-model violation"
                    .to_string(),
            ));
        }
    }
}

/// `unreachable-exists`: the program has cross-thread conflicts but its
/// candidate critical-cycle set is empty — no weak outcome is reachable, so
/// the `exists` clause such a test would check for can never be satisfied.
#[derive(Debug, Default)]
pub struct UnreachableExists;

impl Lint for UnreachableExists {
    fn name(&self) -> &'static str {
        "unreachable-exists"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        if df.conflict_addresses().is_empty() {
            // `no-conflict` already reports the stronger finding.
            return;
        }
        let result = classify(df, &ClassifyBounds::default());
        if result.is_empty() && !result.truncated {
            out.push(diag(
                self,
                None,
                None,
                "cross-thread conflicts exist but no candidate critical cycle: the weak \
                 `exists` outcome is unreachable"
                    .to_string(),
            ));
        }
    }
}

/// `private-dep`: a dependency-carrying op whose own location no other
/// thread accesses.  The ordering the dependency preserves can never appear
/// in a communication edge, so it constrains nothing observable.
#[derive(Debug, Default)]
pub struct PrivateDep;

impl Lint for PrivateDep {
    fn name(&self) -> &'static str {
        "private-dep"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        for access in df.accesses() {
            if access.dep_kind.is_some() && df.accessors_of(access.addr).len() < 2 {
                out.push(diag(
                    self,
                    Some(access.thread),
                    Some(access.poi),
                    format!(
                        "dependency-carrying op targets thread-private location {}: the \
                         preserved order is unobservable",
                        access.addr
                    ),
                ));
            }
        }
    }
}

/// `degraded-dep`: a dependency-carrying op with no prior load in its
/// thread.  The carried dependency has no source and the op degrades to a
/// plain access (the observer records no edge, the relaxed core does not
/// stall) — usually a sign the generator placed the op badly.
#[derive(Debug, Default)]
pub struct DegradedDep;

impl Lint for DegradedDep {
    fn name(&self) -> &'static str {
        "degraded-dep"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        for access in df.accesses() {
            if access.dep_kind.is_some() && access.dep_source.is_none() {
                out.push(diag(
                    self,
                    Some(access.thread),
                    Some(access.poi),
                    "dependency-carrying op has no prior load in its thread: it degrades \
                     to a plain access"
                        .to_string(),
                ));
            }
        }
    }
}

/// The lint registry, in reporting order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(NoConflict),
        Box::new(UnreachableExists),
        Box::new(DeadValue),
        Box::new(IneffectiveFence),
        Box::new(PrivateDep),
        Box::new(DegradedDep),
    ]
}

/// Runs every registered lint over an already-built dataflow.
pub fn run_lints_on(df: &Dataflow) -> Vec<Diagnostic> {
    LINT_RUNS.incr();
    let mut out = Vec::new();
    for lint in all_lints() {
        lint.check(df, &mut out);
    }
    LINT_DIAGNOSTICS.add(out.len() as u64);
    out
}

/// Analyzes `program` and runs every registered lint over it.
pub fn run_lints(program: &TestProgram) -> Vec<Diagnostic> {
    run_lints_on(&Dataflow::new(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::{Address, FenceKind};
    use mcversi_sim::{TestOp, TestProgram};

    fn x() -> Address {
        Address(0x100)
    }
    fn y() -> Address {
        Address(0x140)
    }
    fn z() -> Address {
        Address(0x180)
    }

    fn names(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint.as_str()).collect()
    }

    /// A clean MP-with-dependency program triggers nothing.
    #[test]
    fn clean_program_is_diagnostic_free() {
        let program = TestProgram::new(vec![
            vec![
                TestOp::write(x(), 1),
                TestOp::fence(),
                TestOp::write(y(), 2),
            ],
            vec![TestOp::read(y()), TestOp::read_addr_dp(x())],
        ]);
        assert!(run_lints(&program).is_empty());
    }

    #[test]
    fn dead_value_fires_on_never_written_reads_only() {
        let positive = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::read(z())],
            vec![TestOp::read(x())],
        ]);
        let diags = run_lints(&positive);
        assert!(names(&diags).contains(&"dead-value"));
        let dead: Vec<_> = diags.iter().filter(|d| d.lint == "dead-value").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!((dead[0].thread, dead[0].poi), (Some(0), Some(1)));
        assert_eq!(dead[0].severity, Severity::Warning);
        // Negative: an RMW write makes its own location written.
        let negative = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::rmw(z(), 2)],
            vec![TestOp::read(x()), TestOp::read(z())],
        ]);
        assert!(!names(&run_lints(&negative)).contains(&"dead-value"));
    }

    #[test]
    fn ineffective_fence_fires_on_one_sided_and_shadowed_fences() {
        // Trailing fence: nothing after it.
        let trailing = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::fence()],
            vec![TestOp::read(x())],
        ]);
        let diags = run_lints(&trailing);
        assert!(names(&diags).contains(&"ineffective-fence"));
        // Shadowed: two full fences with no access between them.
        let shadowed = TestProgram::new(vec![
            vec![
                TestOp::write(x(), 1),
                TestOp::fence(),
                TestOp::fence_of(FenceKind::Release),
                TestOp::write(y(), 2),
            ],
            vec![TestOp::read(y()), TestOp::read(x())],
        ]);
        let diags = run_lints(&shadowed);
        let fences: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == "ineffective-fence")
            .collect();
        assert_eq!(fences.len(), 1, "only the second fence is shadowed");
        assert_eq!(fences[0].poi, Some(2));
        // Negative: one fence between two accesses.
        let clean = TestProgram::new(vec![
            vec![
                TestOp::write(x(), 1),
                TestOp::fence(),
                TestOp::write(y(), 2),
            ],
            vec![TestOp::read(y()), TestOp::read(x())],
        ]);
        assert!(!names(&run_lints(&clean)).contains(&"ineffective-fence"));
    }

    #[test]
    fn no_conflict_is_an_error_and_suppresses_unreachable_exists() {
        let private = TestProgram::new(vec![
            vec![TestOp::write(x(), 1)],
            vec![TestOp::write(y(), 2)],
        ]);
        let diags = run_lints(&private);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].lint, "no-conflict");
        assert!(!names(&diags).contains(&"unreachable-exists"));
        // Negative: one shared written location.
        let shared = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::write(y(), 2)],
            vec![TestOp::read(y()), TestOp::read(x())],
        ]);
        assert!(!names(&run_lints(&shared)).contains(&"no-conflict"));
    }

    #[test]
    fn unreachable_exists_fires_on_cycle_free_conflicts() {
        // A single conflict location: communication edges exist but no
        // second location closes a cycle.
        let positive = TestProgram::new(vec![vec![TestOp::write(x(), 1)], vec![TestOp::read(x())]]);
        let diags = run_lints(&positive);
        assert!(names(&diags).contains(&"unreachable-exists"));
        // Negative: MP reaches its weak outcome.
        let mp = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::write(y(), 2)],
            vec![TestOp::read(y()), TestOp::read(x())],
        ]);
        assert!(!names(&run_lints(&mp)).contains(&"unreachable-exists"));
    }

    #[test]
    fn private_dep_fires_on_thread_private_targets() {
        let positive = TestProgram::new(vec![
            vec![TestOp::read(x()), TestOp::write_data_dp(z(), 1)],
            vec![TestOp::write(x(), 2), TestOp::read(z())],
        ]);
        // z is shared here; make it private instead.
        assert!(!names(&run_lints(&positive)).contains(&"private-dep"));
        let private = TestProgram::new(vec![
            vec![TestOp::read(x()), TestOp::write_data_dp(z(), 1)],
            vec![TestOp::write(x(), 2)],
        ]);
        let diags = run_lints(&private);
        let hits: Vec<_> = diags.iter().filter(|d| d.lint == "private-dep").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].thread, hits[0].poi), (Some(0), Some(1)));
    }

    #[test]
    fn degraded_dep_fires_on_sourceless_dependencies() {
        let positive = TestProgram::new(vec![
            vec![TestOp::write_ctrl_dp(x(), 1), TestOp::read(y())],
            vec![TestOp::read(x()), TestOp::write(y(), 2)],
        ]);
        let diags = run_lints(&positive);
        let hits: Vec<_> = diags.iter().filter(|d| d.lint == "degraded-dep").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].thread, hits[0].poi), (Some(0), Some(0)));
        // Negative: a load precedes the dependent op.
        let sourced = TestProgram::new(vec![
            vec![TestOp::read(y()), TestOp::write_ctrl_dp(x(), 1)],
            vec![TestOp::read(x()), TestOp::write(y(), 2)],
        ]);
        assert!(!names(&run_lints(&sourced)).contains(&"degraded-dep"));
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let program = TestProgram::new(vec![
            vec![TestOp::write(x(), 1)],
            vec![TestOp::write(y(), 2)],
        ]);
        let diags = run_lints(&program);
        let json = serde_json::to_string(&diags[0]).expect("diagnostics serialize");
        assert!(json.contains("\"no-conflict\""));
        assert!(json.contains("Error"));
        let display = diags[0].to_string();
        assert!(display.starts_with("error: [no-conflict]"));
    }
}
