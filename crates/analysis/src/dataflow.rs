//! Static dataflow over a lowered test program.
//!
//! [`Dataflow`] walks the [`TestProgram`] IR once and produces the facts the
//! lints and the discrimination classifier consume: the concrete memory
//! accesses with their event ids, the fence placements, the per-thread
//! def-use (dependency) edges, and the unique-value → write map (the
//! write-unique-ID scheme of the paper's §4.1 makes value flow exact).
//!
//! The walk mirrors the simulator's
//! [`ExecObserver`](mcversi_sim::observer::ExecObserver) event construction
//! *exactly* — same thread-major event-id allocation (reads, writes and
//! fences allocate one event, RMWs two, cache flushes and delays none), same
//! "most recent load" dependency source, and the same degradation rule (a
//! dependency-carrying op with no prior load in its thread records no edge).
//! This is what makes the static dependency graph directly comparable with
//! the dynamic `CandidateExecution::deps`: the test suite asserts equality on
//! random chromosomes.

use mcversi_mcm::{Address, DepKind, DependencySet, Dir, EventId, FenceKind};
use mcversi_sim::{TestOpKind, TestProgram};
use std::collections::{BTreeMap, BTreeSet};

/// One concrete memory access of the program (an event-in-waiting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The event id the observer will allocate for this access.
    pub id: EventId,
    /// Issuing thread (0-based).
    pub thread: usize,
    /// Index of the originating op within its thread's program (the
    /// observer's program-order index; flushes and delays consume an index
    /// but produce no access).
    pub poi: u32,
    /// Access direction (read or write).
    pub dir: Dir,
    /// Accessed location.
    pub addr: Address,
    /// `true` for either half of an atomic read-modify-write.
    pub rmw: bool,
    /// The syntactic dependency kind the op carries, if any (`ReadAddrDp`,
    /// `WriteDataDp`, `WriteCtrlDp`).
    pub dep_kind: Option<DepKind>,
    /// The load event feeding the carried dependency, when one exists: the
    /// thread's most recent load before this op.  `None` for plain accesses
    /// *and* for dependency-carrying ops with no prior load (which degrade
    /// to plain accesses — see [`lint::DegradedDep`](crate::lint)).
    pub dep_source: Option<EventId>,
    /// The globally unique value a write stores (`None` for reads, whose
    /// values are dynamic).
    pub value: Option<u64>,
}

impl Access {
    /// Returns `true` for write accesses (including RMW write halves).
    pub fn is_write(&self) -> bool {
        self.dir == Dir::W
    }

    /// Returns `true` for read accesses (including RMW read halves).
    pub fn is_read(&self) -> bool {
        self.dir == Dir::R
    }
}

/// One fence of the program, with its position in the event-id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FencePoint {
    /// The event id the observer will allocate for this fence.
    pub id: EventId,
    /// Issuing thread.
    pub thread: usize,
    /// Op index within the thread's program.
    pub poi: u32,
    /// Fence flavour.
    pub kind: FenceKind,
}

/// The static dataflow facts of one lowered program.
#[derive(Debug, Clone)]
pub struct Dataflow {
    num_threads: usize,
    accesses: Vec<Access>,
    fences: Vec<FencePoint>,
    deps: DependencySet,
    writes_by_value: BTreeMap<u64, EventId>,
}

impl Dataflow {
    /// Analyzes a lowered program.
    pub fn new(program: &TestProgram) -> Self {
        let mut accesses = Vec::new();
        let mut fences = Vec::new();
        let mut deps = DependencySet::new();
        let mut writes_by_value = BTreeMap::new();
        let mut next_event = 0u32;
        let mut alloc = || {
            let id = EventId(next_event);
            next_event += 1;
            id
        };
        for (t, thread) in program.threads().iter().enumerate() {
            // The most recent load of this thread: the def every carried
            // dependency uses (mirrors the observer and the core model).
            let mut last_load: Option<EventId> = None;
            for (poi, op) in thread.iter().enumerate() {
                let poi = poi as u32;
                let dep = op.kind.dep_kind();
                match op.kind {
                    TestOpKind::Read | TestOpKind::ReadAddrDp => {
                        let id = alloc();
                        let source = record_dep(&mut deps, dep, last_load, id);
                        accesses.push(Access {
                            id,
                            thread: t,
                            poi,
                            dir: Dir::R,
                            addr: op.addr,
                            rmw: false,
                            dep_kind: dep,
                            dep_source: source,
                            value: None,
                        });
                        last_load = Some(id);
                    }
                    TestOpKind::Write { value }
                    | TestOpKind::WriteDataDp { value }
                    | TestOpKind::WriteCtrlDp { value } => {
                        let id = alloc();
                        let source = record_dep(&mut deps, dep, last_load, id);
                        accesses.push(Access {
                            id,
                            thread: t,
                            poi,
                            dir: Dir::W,
                            addr: op.addr,
                            rmw: false,
                            dep_kind: dep,
                            dep_source: source,
                            value: Some(value),
                        });
                        writes_by_value.insert(value, id);
                    }
                    TestOpKind::ReadModifyWrite { value } => {
                        // RMWs allocate a read and a write event, carry no
                        // syntactic dependency, and do not become a later
                        // op's dependency source (the observer mirrors the
                        // core model here).
                        let r = alloc();
                        let w = alloc();
                        accesses.push(Access {
                            id: r,
                            thread: t,
                            poi,
                            dir: Dir::R,
                            addr: op.addr,
                            rmw: true,
                            dep_kind: None,
                            dep_source: None,
                            value: None,
                        });
                        accesses.push(Access {
                            id: w,
                            thread: t,
                            poi,
                            dir: Dir::W,
                            addr: op.addr,
                            rmw: true,
                            dep_kind: None,
                            dep_source: None,
                            value: Some(value),
                        });
                        writes_by_value.insert(value, w);
                    }
                    TestOpKind::Fence { kind } => {
                        fences.push(FencePoint {
                            id: alloc(),
                            thread: t,
                            poi,
                            kind,
                        });
                    }
                    TestOpKind::CacheFlush | TestOpKind::Delay { .. } => {}
                }
            }
        }
        Dataflow {
            num_threads: program.num_threads(),
            accesses,
            fences,
            deps,
            writes_by_value,
        }
    }

    /// Number of threads of the analyzed program.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// All memory accesses, in event-id order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// All fences, in event-id order.
    pub fn fences(&self) -> &[FencePoint] {
        &self.fences
    }

    /// The static syntactic dependency graph, one relation per
    /// [`DepKind`] — the def-use chains of the program.  Matches the
    /// observer-recorded `CandidateExecution::deps` edge for edge.
    pub fn deps(&self) -> &DependencySet {
        &self.deps
    }

    /// The write producing a given unique value (exact static value flow).
    pub fn write_of_value(&self, value: u64) -> Option<EventId> {
        self.writes_by_value.get(&value).copied()
    }

    /// The accesses of one thread, in program order.
    pub fn thread_accesses(&self, thread: usize) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(move |a| a.thread == thread)
    }

    /// The distinct addresses the program accesses, sorted.
    pub fn addresses(&self) -> Vec<Address> {
        let set: BTreeSet<Address> = self.accesses.iter().map(|a| a.addr).collect();
        set.into_iter().collect()
    }

    /// The threads with at least one access to `addr`.
    pub fn accessors_of(&self, addr: Address) -> BTreeSet<usize> {
        self.accesses
            .iter()
            .filter(|a| a.addr == addr)
            .map(|a| a.thread)
            .collect()
    }

    /// Returns `true` if any op of the program writes `addr`.
    pub fn is_written(&self, addr: Address) -> bool {
        self.accesses.iter().any(|a| a.is_write() && a.addr == addr)
    }

    /// The addresses accessed by more than one thread with at least one
    /// write among the accesses — the cross-thread conflict locations, the
    /// raw material of every communication edge.
    pub fn conflict_addresses(&self) -> Vec<Address> {
        self.addresses()
            .into_iter()
            .filter(|&addr| self.accessors_of(addr).len() >= 2 && self.is_written(addr))
            .collect()
    }

    /// The distinct fence kinds strictly between op indices `lo` and `hi`
    /// (exclusive on both sides) of one thread, in [`FenceKind::ALL`]
    /// (strongest-first) order.
    pub fn fence_kinds_between(&self, thread: usize, lo: u32, hi: u32) -> Vec<FenceKind> {
        let present: BTreeSet<FenceKind> = self
            .fences
            .iter()
            .filter(|f| f.thread == thread && f.poi > lo && f.poi < hi)
            .map(|f| f.kind)
            .collect();
        FenceKind::ALL
            .into_iter()
            .filter(|k| present.contains(k))
            .collect()
    }
}

/// Records a dependency edge if the op carries one and a source load exists,
/// returning the source used (mirrors `ExecObserver::record_dep`).
fn record_dep(
    deps: &mut DependencySet,
    dep: Option<DepKind>,
    last_load: Option<EventId>,
    target: EventId,
) -> Option<EventId> {
    if let (Some(kind), Some(source)) = (dep, last_load) {
        deps.of_mut(kind).insert(source, target);
        Some(source)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_sim::observer::ExecObserver;
    use mcversi_sim::TestOp;

    fn x() -> Address {
        Address(0x100)
    }
    fn y() -> Address {
        Address(0x140)
    }
    fn z() -> Address {
        Address(0x180)
    }

    /// The observer's pinned dependency-chain example: deps flow from the
    /// most recent load, across fences, and the leading dependent op records
    /// nothing.
    #[test]
    fn dependency_chain_matches_the_observer_pin() {
        let program = TestProgram::new(vec![vec![
            TestOp::read(x()),
            TestOp::read_addr_dp(y()),
            TestOp::write_data_dp(z(), 1),
            TestOp::fence(),
            TestOp::write_ctrl_dp(x(), 2),
        ]]);
        let df = Dataflow::new(&program);
        assert!(df.deps().of(DepKind::Addr).contains(EventId(0), EventId(1)));
        assert!(df.deps().of(DepKind::Data).contains(EventId(1), EventId(2)));
        assert!(df.deps().of(DepKind::Ctrl).contains(EventId(1), EventId(4)));
        assert_eq!(df.deps().len(), 3);
        // Event ids skip nothing: the fence is event 3.
        assert_eq!(df.fences()[0].id, EventId(3));
        assert_eq!(df.fences()[0].kind, FenceKind::Full);
    }

    /// The static graph equals the dynamic one on a program exercising every
    /// op kind, including the RMW and flush/delay allocation rules.
    #[test]
    fn deps_and_event_ids_match_the_observer() {
        let program = TestProgram::new(vec![
            vec![
                TestOp::read(x()),
                TestOp::rmw(y(), 7),
                TestOp::write_data_dp(z(), 1),
                TestOp::flush(x()),
                TestOp::delay(3),
                TestOp::read_addr_dp(y()),
            ],
            vec![
                TestOp::write_ctrl_dp(x(), 2),
                TestOp::read(z()),
                TestOp::fence_of(FenceKind::LightweightSync),
                TestOp::write_data_dp(y(), 3),
            ],
        ]);
        let df = Dataflow::new(&program);
        let dynamic = ExecObserver::new(&program).finish();
        assert_eq!(df.deps(), dynamic.deps());
        // The RMW neither records a dependency nor feeds later ones: the
        // data dep of thread 0 is sourced at the plain read, not the RMW.
        assert!(df.deps().of(DepKind::Data).contains(EventId(0), EventId(3)));
        // Thread 1's leading ctrl-dep write has no prior load: degraded.
        let t1_first = df.thread_accesses(1).next().copied();
        let t1_first = t1_first.expect("thread 1 has accesses");
        assert_eq!(t1_first.dep_kind, Some(DepKind::Ctrl));
        assert_eq!(t1_first.dep_source, None);
        // Static event count matches the observer's (initial writes are
        // created later, during `finish`, with higher ids).
        let static_events = dynamic.events().iter().filter(|e| !e.is_initial()).count();
        assert_eq!(
            df.accesses().len() + df.fences().len(),
            static_events,
            "event allocation must mirror the observer"
        );
    }

    #[test]
    fn conflict_and_value_queries() {
        let program = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::read(y())],
            vec![TestOp::write(y(), 2), TestOp::read(x())],
            vec![TestOp::read(z())],
        ]);
        let df = Dataflow::new(&program);
        assert_eq!(df.conflict_addresses(), vec![x(), y()]);
        assert_eq!(df.accessors_of(z()).len(), 1);
        assert!(!df.is_written(z()));
        assert_eq!(df.write_of_value(1), Some(EventId(0)));
        assert_eq!(df.write_of_value(9), None);
        assert_eq!(df.addresses(), vec![x(), y(), z()]);
        assert_eq!(df.num_threads(), 3);
    }

    #[test]
    fn fence_kinds_between_is_exclusive_and_ordered() {
        let program = TestProgram::new(vec![vec![
            TestOp::write(x(), 1),
            TestOp::fence_of(FenceKind::Release),
            TestOp::fence(),
            TestOp::write(y(), 2),
        ]]);
        let df = Dataflow::new(&program);
        // Strongest-first order regardless of program position.
        assert_eq!(
            df.fence_kinds_between(0, 0, 3),
            vec![FenceKind::Full, FenceKind::Release]
        );
        assert!(df.fence_kinds_between(0, 1, 2).is_empty());
        assert!(df.fence_kinds_between(1, 0, 3).is_empty());
    }
}
