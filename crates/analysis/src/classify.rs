//! Static discrimination classifier: candidate critical cycles from the
//! conflict graph.
//!
//! A test can only produce a consistency violation (or distinguish two
//! models) if some execution of it witnesses a critical cycle — and which
//! cycles are *reachable* is decidable statically: the communication edges a
//! run can produce are exactly the cross-thread same-location conflicts of
//! the program, and the internal edges are its program-order pairs with
//! their fence/dependency flavours.  This module enumerates that candidate
//! cycle set with a bounded DFS over the [`Dataflow`] facts and evaluates
//! each cycle against the whole model chain via
//! [`ModelKind::cycle_verdicts`], giving two predicates:
//!
//! * [`Discrimination::discriminates_chain`] — some candidate cycle is
//!   forbidden under one model of the chain but allowed under another (the
//!   test can tell models apart);
//! * [`Discrimination::forbids_any`] / [`forbids_any`] — some candidate
//!   cycle is forbidden under a given target model (the test can produce a
//!   violation under that model at all).  This is the predicate the
//!   campaign's pre-simulation prune uses: a chain-constant cycle (forbidden
//!   everywhere, e.g. `MP+mfence+addr`) does not discriminate, yet its weak
//!   outcome is still a reportable violation.
//!
//! The classifier is deliberately a *may* analysis of the critical-cycle
//! vocabulary: same-location (coherence) violations and protocol faults are
//! outside it, which is one reason the prune is opt-in.

use crate::dataflow::{Access, Dataflow};
use mcversi_mcm::{CriticalCycle, CycleEdge, Dir, ModelKind};
use mcversi_telemetry as telemetry;
use std::collections::BTreeSet;

/// Full classifications performed ([`classify`] calls).
static CLASSIFY_CALLS: telemetry::Counter = telemetry::Counter::new("analysis.classify.calls");
/// Early-exit forbids queries ([`forbids_any`] calls).
static FORBIDS_CALLS: telemetry::Counter = telemetry::Counter::new("analysis.forbids.calls");
/// Forbids queries answering `true` (test kept by the prune).
static FORBIDS_HITS: telemetry::Counter = telemetry::Counter::new("analysis.forbids.hits");
/// Candidate cycles visited by the bounded DFS (pre-dedup).
static CYCLES_VISITED: telemetry::Counter = telemetry::Counter::new("analysis.cycles.visited");
/// Searches that exhausted the step budget.
static SEARCH_TRUNCATED: telemetry::Counter = telemetry::Counter::new("analysis.search.truncated");

/// Search bounds of the candidate-cycle enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyBounds {
    /// Maximum number of cycle edges (diy's `-len`); the enumerated corpus
    /// default is 6.
    pub max_edges: usize,
    /// DFS step budget; the search reports `truncated` when exhausted so
    /// callers can distinguish "no cycle" from "gave up".
    pub max_steps: usize,
}

impl Default for ClassifyBounds {
    fn default() -> Self {
        ClassifyBounds {
            max_edges: 6,
            max_steps: 200_000,
        }
    }
}

/// The classifier's result: the candidate cycles with their per-model
/// verdicts.
#[derive(Debug, Clone)]
pub struct Discrimination {
    /// The canonicalized candidate critical cycles, deduplicated and sorted.
    pub cycles: Vec<CriticalCycle>,
    /// Per-cycle verdicts over [`ModelKind::ALL`] (`true` = forbidden),
    /// parallel to `cycles`.
    pub verdicts: Vec<[bool; ModelKind::ALL.len()]>,
    /// `true` when the step budget ran out before the search completed; the
    /// cycle set is then a lower bound.
    pub truncated: bool,
}

impl Discrimination {
    /// Number of candidate cycles found.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Returns `true` if no candidate cycle was found.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Returns `true` if some candidate cycle separates two models of the
    /// strength chain (forbidden under one, allowed under another).
    pub fn discriminates_chain(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| v.contains(&true) && v.contains(&false))
    }

    /// Returns `true` if some candidate cycle is forbidden under `model` —
    /// i.e. the test can produce a violation the checker would report when
    /// verifying against `model`.
    pub fn forbids_any(&self, model: ModelKind) -> bool {
        let idx = model_index(model);
        self.verdicts.iter().any(|v| v[idx])
    }

    /// The verdict vector recorded for `cycle`, if it is in the set.
    pub fn verdict_of(&self, cycle: &CriticalCycle) -> Option<[bool; ModelKind::ALL.len()]> {
        let canon = cycle.canonicalize();
        self.cycles
            .iter()
            .position(|c| *c == canon)
            .map(|i| self.verdicts[i])
    }
}

fn model_index(model: ModelKind) -> usize {
    ModelKind::ALL.iter().position(|&m| m == model).unwrap_or(0)
}

/// Enumerates the candidate critical cycles of a program and classifies each
/// against the model chain.
pub fn classify(df: &Dataflow, bounds: &ClassifyBounds) -> Discrimination {
    CLASSIFY_CALLS.incr();
    let mut seen: BTreeSet<CriticalCycle> = BTreeSet::new();
    let truncated = search(df, bounds, |cycle| {
        seen.insert(cycle);
        false
    });
    let cycles: Vec<CriticalCycle> = seen.into_iter().collect();
    let verdicts = cycles.iter().map(ModelKind::cycle_verdicts).collect();
    Discrimination {
        cycles,
        verdicts,
        truncated,
    }
}

/// Early-exit predicate: does any candidate cycle make the test capable of a
/// violation under `model`?  Stops the enumeration at the first hit.
///
/// A truncated search answers `true` (never prune a test the search could
/// not finish classifying).
pub fn forbids_any(df: &Dataflow, model: ModelKind, bounds: &ClassifyBounds) -> bool {
    FORBIDS_CALLS.incr();
    let mut hit = false;
    let truncated = search(df, bounds, |cycle| {
        if model.forbids_cycle(&cycle) {
            hit = true;
        }
        hit
    });
    let keep = hit || truncated;
    if keep {
        FORBIDS_HITS.incr();
    }
    keep
}

/// The flavour options of one same-thread program-order pair: plain `po`,
/// one `Fenced` per distinct fence kind strictly between the accesses, and
/// the carried dependency when the later access's recorded source is the
/// earlier access.
fn internal_flavours(df: &Dataflow, a: &Access, b: &Access) -> Vec<CycleEdge> {
    let mut flavours = vec![CycleEdge::Po];
    for kind in df.fence_kinds_between(a.thread, a.poi, b.poi) {
        flavours.push(CycleEdge::Fenced(kind));
    }
    if b.dep_source == Some(a.id) {
        if let Some(kind) = b.dep_kind {
            flavours.push(CycleEdge::Dep(kind));
        }
    }
    flavours
}

/// The communication edge a conflict pair can produce, from the access
/// directions (`rf: W→R`, `fr: R→W`, `ws: W→W`; read→read conflicts produce
/// no edge).
fn external_kind(a: &Access, b: &Access) -> Option<CycleEdge> {
    match (a.dir, b.dir) {
        (Dir::W, Dir::R) => Some(CycleEdge::Rf),
        (Dir::R, Dir::W) => Some(CycleEdge::Fr),
        (Dir::W, Dir::W) => Some(CycleEdge::Ws),
        (Dir::R, Dir::R) => None,
    }
}

/// Bounded DFS over the access graph.  `visit` receives canonicalized
/// cycles (the same canonical cycle can arrive more than once when distinct
/// access sets realize it — [`classify`] deduplicates) and returns `true` to
/// stop the search.  Returns `true` when the step budget was exhausted.
fn search(
    df: &Dataflow,
    bounds: &ClassifyBounds,
    mut visit: impl FnMut(CriticalCycle) -> bool,
) -> bool {
    let mut visit = |cycle: CriticalCycle| {
        CYCLES_VISITED.incr();
        visit(cycle)
    };
    let nodes = df.accesses();
    let n = nodes.len();
    // Candidate edges between every ordered node pair, computed once:
    // internal pairs are same-thread po-forward different-location, external
    // pairs cross-thread same-location.
    let mut adj: Vec<Vec<(usize, Vec<CycleEdge>)>> = vec![Vec::new(); n];
    for (i, a) in nodes.iter().enumerate() {
        for (j, b) in nodes.iter().enumerate() {
            if i == j {
                continue;
            }
            if a.thread == b.thread {
                if b.id > a.id && a.addr != b.addr {
                    let flavours = internal_flavours(df, a, b);
                    adj[i].push((j, flavours));
                }
            } else if a.addr == b.addr {
                if let Some(kind) = external_kind(a, b) {
                    adj[i].push((j, vec![kind]));
                }
            }
        }
    }

    let mut state = SearchState {
        nodes,
        adj: &adj,
        max_edges: bounds.max_edges,
        steps_left: bounds.max_steps,
        truncated: false,
        stop: false,
        path: Vec::new(),
        edges: Vec::new(),
        on_path: vec![false; n],
        threads_used: BTreeSet::new(),
        visit: &mut visit,
    };
    for (start, node) in nodes.iter().enumerate() {
        if state.stop || state.truncated {
            break;
        }
        state.path.push(start);
        state.on_path[start] = true;
        state.threads_used.insert(node.thread);
        state.extend(start);
        state.threads_used.remove(&node.thread);
        state.on_path[start] = false;
        state.path.pop();
    }
    if state.truncated {
        SEARCH_TRUNCATED.incr();
    }
    state.truncated
}

/// Mutable state of one DFS, split out so the recursion borrows cleanly.
struct SearchState<'a, F: FnMut(CriticalCycle) -> bool> {
    nodes: &'a [Access],
    adj: &'a [Vec<(usize, Vec<CycleEdge>)>],
    max_edges: usize,
    steps_left: usize,
    truncated: bool,
    stop: bool,
    path: Vec<usize>,
    edges: Vec<CycleEdge>,
    on_path: Vec<bool>,
    threads_used: BTreeSet<usize>,
    visit: &'a mut F,
}

impl<F: FnMut(CriticalCycle) -> bool> SearchState<'_, F> {
    /// Whether appending `edge` after the current last edge keeps the path a
    /// potential critical cycle (the cheap incremental subset of
    /// [`CriticalCycle::new`]'s conditions).
    fn admissible(&self, edge: CycleEdge) -> bool {
        let len = self.edges.len();
        if len == 0 {
            return true;
        }
        let prev = self.edges[len - 1];
        if prev.is_internal() && edge.is_internal() {
            return false;
        }
        if prev.is_external() && edge.is_external() {
            // External runs have length at most two and only the
            // non-collapsing compositions.
            if len >= 2 && self.edges[len - 2].is_external() {
                return false;
            }
            let pair = (prev, edge);
            if pair != (CycleEdge::Ws, CycleEdge::Rf) && pair != (CycleEdge::Fr, CycleEdge::Rf) {
                return false;
            }
        }
        true
    }

    fn extend(&mut self, current: usize) {
        if self.stop || self.truncated {
            return;
        }
        let start = self.path[0];
        let adj = self.adj;
        for &(next, ref flavours) in &adj[current] {
            for &edge in flavours {
                if self.stop || self.truncated {
                    return;
                }
                if self.steps_left == 0 {
                    self.truncated = true;
                    return;
                }
                self.steps_left -= 1;
                if !self.admissible(edge) {
                    continue;
                }
                if next == start {
                    if self.edges.len() + 1 >= 4 {
                        self.edges.push(edge);
                        self.close();
                        self.edges.pop();
                    }
                    continue;
                }
                // Rotation canonicalization: every non-start node of a cycle
                // has a larger index than the start, so each cyclic node
                // sequence is enumerated from exactly one start.
                if next < start || self.on_path[next] {
                    continue;
                }
                if self.edges.len() + 1 >= self.max_edges {
                    continue;
                }
                // A cycle visits each thread once; external edges must land
                // on fresh threads.
                let thread = self.nodes[next].thread;
                if edge.is_external() && self.threads_used.contains(&thread) {
                    continue;
                }
                self.path.push(next);
                self.on_path[next] = true;
                let fresh_thread = self.threads_used.insert(thread);
                self.edges.push(edge);
                self.extend(next);
                self.edges.pop();
                if fresh_thread {
                    self.threads_used.remove(&thread);
                }
                self.on_path[next] = false;
                self.path.pop();
            }
        }
    }

    /// The path plus the just-pushed closing edge forms a candidate cycle:
    /// validate it structurally and check that distinct location classes map
    /// to distinct concrete addresses (the wrap-around conditions the
    /// incremental checks cannot see are validated by `CriticalCycle::new`).
    fn close(&mut self) {
        let dirs: Vec<Dir> = self.path.iter().map(|&i| self.nodes[i].dir).collect();
        let Ok(cycle) = CriticalCycle::new(self.edges.clone(), dirs) else {
            return;
        };
        let locations = cycle.location_of();
        let classes: BTreeSet<usize> = locations.iter().copied().collect();
        let addrs: BTreeSet<_> = self.path.iter().map(|&i| self.nodes[i].addr).collect();
        if addrs.len() != classes.len() {
            // Two location classes collide on one concrete address: the
            // "cycle" is degenerate in this program.
            return;
        }
        if (self.visit)(cycle.canonicalize()) {
            self.stop = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::{Address, DepKind, FenceKind};
    use mcversi_sim::{TestOp, TestProgram};

    fn x() -> Address {
        Address(0x100)
    }
    fn y() -> Address {
        Address(0x140)
    }

    fn mp_program() -> TestProgram {
        TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::write(y(), 2)],
            vec![TestOp::read(y()), TestOp::read(x())],
        ])
    }

    fn classify_program(program: &TestProgram) -> Discrimination {
        classify(&Dataflow::new(program), &ClassifyBounds::default())
    }

    #[test]
    fn mp_yields_the_mp_cycle_with_the_chain_verdicts() {
        let result = classify_program(&mp_program());
        assert!(!result.truncated);
        let mp = CriticalCycle::new(
            vec![CycleEdge::Po, CycleEdge::Rf, CycleEdge::Po, CycleEdge::Fr],
            vec![Dir::W, Dir::W, Dir::R, Dir::R],
        )
        .expect("MP is a valid cycle");
        let verdict = result.verdict_of(&mp).expect("MP cycle found");
        // MP: forbidden under SC and TSO, allowed under the relaxed models.
        assert_eq!(verdict, [true, true, false, false, false]);
        assert!(result.discriminates_chain());
        assert!(result.forbids_any(ModelKind::Sc));
        assert!(result.forbids_any(ModelKind::Tso));
        assert!(!result.forbids_any(ModelKind::Armish));
    }

    #[test]
    fn fenced_mp_separates_the_relaxed_models() {
        // mfence on the writer, addr dependency on the reader: forbidden
        // everywhere — still prune-relevant for ARMish, though it no longer
        // discriminates by itself.
        let program = TestProgram::new(vec![
            vec![
                TestOp::write(x(), 1),
                TestOp::fence(),
                TestOp::write(y(), 2),
            ],
            vec![TestOp::read(y()), TestOp::read_addr_dp(x())],
        ]);
        let result = classify_program(&program);
        let strongest = CriticalCycle::new(
            vec![
                CycleEdge::Fenced(FenceKind::Full),
                CycleEdge::Rf,
                CycleEdge::Dep(DepKind::Addr),
                CycleEdge::Fr,
            ],
            vec![Dir::W, Dir::W, Dir::R, Dir::R],
        )
        .expect("MP+mfence+addr is a valid cycle");
        assert_eq!(
            result.verdict_of(&strongest),
            Some([true, true, true, true, true])
        );
        // The plain-po weakenings are enumerated alongside.
        assert!(result.len() >= 4, "po/fence × po/dep variants expected");
        assert!(result.forbids_any(ModelKind::Armish));
        assert!(result.forbids_any(ModelKind::Rmo));
    }

    #[test]
    fn private_and_read_only_programs_have_no_cycles() {
        // No cross-thread conflict: nothing to order.
        let private = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::read(x())],
            vec![TestOp::write(y(), 2), TestOp::read(y())],
        ]);
        let result = classify_program(&private);
        assert!(result.is_empty());
        assert!(!result.discriminates_chain());
        assert!(!result.forbids_any(ModelKind::Sc));
        // A single conflict with no second location cannot form a cycle.
        let single = TestProgram::new(vec![vec![TestOp::write(x(), 1)], vec![TestOp::read(x())]]);
        assert!(classify_program(&single).is_empty());
    }

    #[test]
    fn forbids_any_early_exit_agrees_with_full_classification() {
        let program = mp_program();
        let df = Dataflow::new(&program);
        let bounds = ClassifyBounds::default();
        let full = classify(&df, &bounds);
        for model in ModelKind::ALL {
            assert_eq!(
                forbids_any(&df, model, &bounds),
                full.forbids_any(model),
                "early-exit predicate must agree for {model:?}"
            );
        }
    }

    #[test]
    fn exhausted_step_budget_reports_truncation_and_stays_safe() {
        let df = Dataflow::new(&mp_program());
        let bounds = ClassifyBounds {
            max_edges: 6,
            max_steps: 1,
        };
        let result = classify(&df, &bounds);
        assert!(result.truncated);
        // A truncated search must never prune.
        assert!(forbids_any(&df, ModelKind::Armish, &bounds));
    }

    #[test]
    fn write_only_programs_yield_the_2_plus_2w_cycle() {
        let program = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::write(y(), 2)],
            vec![TestOp::write(y(), 3), TestOp::write(x(), 4)],
        ]);
        let result = classify_program(&program);
        let two_two_w = CriticalCycle::new(
            vec![CycleEdge::Po, CycleEdge::Ws, CycleEdge::Po, CycleEdge::Ws],
            vec![Dir::W, Dir::W, Dir::W, Dir::W],
        )
        .expect("2+2W is a valid cycle");
        assert_eq!(
            result.verdict_of(&two_two_w),
            Some([true, true, false, false, false])
        );
        // Same-location pairs never form internal edges.
        let same_loc = TestProgram::new(vec![
            vec![TestOp::write(x(), 1), TestOp::write(x(), 2)],
            vec![TestOp::read(x()), TestOp::read(x())],
        ]);
        assert!(classify_program(&same_loc).is_empty());
    }
}
