//! Round-trips the golden trace fixtures through the `mcversi-check` binary,
//! pinning exit codes, `--json` output shape and the `--model` / `--mode`
//! flags.  The library-path verdicts for the same fixtures are pinned in
//! `crates/conformance/tests/golden.rs`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../conformance/tests/golden")
        .join(name)
}

fn run_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mcversi-check"))
        .args(args)
        .output()
        .expect("mcversi-check runs")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

#[test]
fn golden_fixtures_return_their_pinned_exit_codes() {
    let pins: [(&str, i32); 7] = [
        ("sc_valid.trace", 0),
        ("sc_violation.trace", 1),
        ("tso_valid.trace", 0),
        ("tso_violation.trace", 1),
        ("armish_valid.trace", 0),
        ("rmo_violation.trace", 1),
        ("tso_undecided.trace", 3),
    ];
    for (name, expected) in pins {
        let path = fixture(name);
        let out = run_check(&[path.to_str().expect("utf-8 path")]);
        assert_eq!(
            exit_code(&out),
            expected,
            "{name}: stdout={} stderr={}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn json_mode_emits_one_parseable_object_per_file() {
    let valid = fixture("tso_valid.trace");
    let violating = fixture("tso_violation.trace");
    let out = run_check(&[
        "--json",
        valid.to_str().expect("utf-8 path"),
        violating.to_str().expect("utf-8 path"),
    ]);
    // A violation anywhere dominates the valid file.
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "one JSONL object per input file");
    let first = serde_json::value_from_str(lines[0]).expect("valid JSON");
    assert_eq!(first.get("verdict").and_then(|v| v.as_str()), Some("valid"));
    assert_eq!(first.get("model").and_then(|v| v.as_str()), Some("TSO"));
    let second = serde_json::value_from_str(lines[1]).expect("valid JSON");
    assert_eq!(
        second.get("verdict").and_then(|v| v.as_str()),
        Some("violation")
    );
    assert!(
        second.get("axiom").and_then(|v| v.as_str()).is_some(),
        "violations name the broken axiom"
    );
}

#[test]
fn model_flag_overrides_the_trace_directive() {
    // The SB fixture declares TSO (valid); forcing SC flips it.
    let path = fixture("tso_valid.trace");
    let out = run_check(&["--model", "sc", path.to_str().expect("utf-8 path")]);
    assert_eq!(exit_code(&out), 1);
}

#[test]
fn every_checking_mode_agrees_on_the_golden_verdicts() {
    for mode in ["per_exec", "collective", "vc"] {
        for (name, expected) in [("tso_valid.trace", 0), ("tso_violation.trace", 1)] {
            let path = fixture(name);
            let out = run_check(&["--mode", mode, path.to_str().expect("utf-8 path")]);
            assert_eq!(exit_code(&out), expected, "{name} under mode {mode}");
        }
    }
}

#[test]
fn usage_and_parse_errors_exit_2() {
    let out = run_check(&[]);
    assert_eq!(exit_code(&out), 2, "no input files is a usage error");
    let out = run_check(&["--mode", "psychic"]);
    assert_eq!(exit_code(&out), 2);
    let out = run_check(&["/nonexistent/definitely-missing.trace"]);
    assert_eq!(exit_code(&out), 2, "unreadable input is an I/O error");
}
