//! Experiment reporting: the rows behind Tables 4, 5 and 6.
//!
//! Campaign results are aggregated per (bug, generator) pair into the same
//! quantities the paper reports: how many of the samples found the bug, and
//! the mean (normalised) time to find it.  The budget-extrapolation view of
//! Table 5 treats the stateless generators' independent samples as one longer
//! run, exactly as §6.1 argues.

use crate::campaign::CampaignResult;
use crate::generator::GeneratorKind;
use mcversi_sim::Bug;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One cell of Table 4: a generator attacking a bug.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugCoverageCell {
    /// The generator.
    pub generator: GeneratorKind,
    /// Label distinguishing configurations of the same generator (e.g. the
    /// test-memory size "1KB" / "8KB").
    pub config_label: String,
    /// Number of samples that found the bug.
    pub found: usize,
    /// Total number of samples.
    pub samples: usize,
    /// Mean normalised time-to-bug over all samples (1.0 = budget exhausted).
    pub mean_time: f64,
}

impl BugCoverageCell {
    /// Returns `true` if every sample found the bug (the paper's bold cells).
    pub fn consistent(&self) -> bool {
        self.samples > 0 && self.found == self.samples
    }

    /// Formats the cell in the paper's style: `found (mean time)` or `NF`.
    pub fn render(&self) -> String {
        if self.found == 0 {
            "NF".to_string()
        } else {
            format!("{} ({:.2})", self.found, self.mean_time)
        }
    }
}

/// Aggregates the samples of one (bug, generator-config) cell.
pub fn aggregate_cell(
    generator: GeneratorKind,
    config_label: &str,
    results: &[CampaignResult],
    budget: usize,
) -> BugCoverageCell {
    let samples = results.len();
    let found = results.iter().filter(|r| r.found).count();
    let mean_time = if samples == 0 {
        1.0
    } else {
        results
            .iter()
            .map(|r| r.normalized_time_to_bug(budget))
            .sum::<f64>()
            / samples as f64
    };
    BugCoverageCell {
        generator,
        config_label: config_label.to_string(),
        found,
        samples,
        mean_time,
    }
}

/// A full Table-4-style report: per bug, per generator configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BugCoverageTable {
    /// Column labels in display order.
    pub columns: Vec<String>,
    /// Rows: bug → column label → cell.
    pub rows: BTreeMap<String, BTreeMap<String, BugCoverageCell>>,
}

impl BugCoverageTable {
    /// Creates an empty table with the given column order.
    pub fn new(columns: Vec<String>) -> Self {
        BugCoverageTable {
            columns,
            rows: BTreeMap::new(),
        }
    }

    /// Inserts one cell.
    pub fn insert(&mut self, bug: Bug, column: &str, cell: BugCoverageCell) {
        self.rows
            .entry(bug.paper_name().to_string())
            .or_default()
            .insert(column.to_string(), cell);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bug_width = self
            .rows
            .keys()
            .map(|b| b.len())
            .max()
            .unwrap_or(10)
            .max("Bug".len());
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(12)
            .max(12);
        let _ = write!(out, "{:<bug_width$}", "Bug");
        for c in &self.columns {
            let _ = write!(out, "  {c:>col_width$}");
        }
        out.push('\n');
        for (bug, cells) in &self.rows {
            let _ = write!(out, "{bug:<bug_width$}");
            for c in &self.columns {
                let rendered = match cells.get(c) {
                    Some(cell) => cell.render(),
                    None => "-".to_string(),
                };
                let _ = write!(out, "  {rendered:>col_width$}");
            }
            out.push('\n');
        }
        out
    }

    /// Summary row: per column, the number of (bug, sample) pairs that found
    /// their bug and the mean time (the paper's "All" row).
    pub fn summary(&self) -> BTreeMap<String, (usize, f64)> {
        let mut out = BTreeMap::new();
        for column in &self.columns {
            let mut found = 0usize;
            let mut times = Vec::new();
            for cells in self.rows.values() {
                if let Some(cell) = cells.get(column) {
                    found += cell.found;
                    times.push(cell.mean_time);
                }
            }
            let mean = if times.is_empty() {
                1.0
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            };
            out.insert(column.clone(), (found, mean));
        }
        out
    }
}

/// A Table-5-style budget extrapolation: the fraction of bugs found within
/// multiples of the base budget, exploiting that stateless generators'
/// independent samples compose into one longer run.
pub fn budget_extrapolation(
    cells: &[(Bug, BugCoverageCell)],
    multiples: &[usize],
) -> BTreeMap<usize, f64> {
    let mut out = BTreeMap::new();
    let num_bugs = cells.len().max(1);
    for &m in multiples {
        let mut found_bugs = 0usize;
        for (_, cell) in cells {
            // Within m times the budget, a stateless generator effectively
            // gets m * samples attempts; the bug counts as found if any sample
            // found it... within one budget each sample is an independent
            // 1-budget attempt, so "found within m budgets" means at least one
            // of the first min(m, samples) samples found it.
            let attempts = m.min(cell.samples.max(1));
            let any_found = cell.found > 0 && {
                // Conservative: assume the successful samples are uniformly
                // spread; with `found` successes out of `samples`, the chance
                // that `attempts` attempts contain a success is high once
                // attempts >= samples / found.
                attempts * cell.found >= cell.samples || cell.found >= cell.samples
            };
            if any_found {
                found_bugs += 1;
            }
        }
        out.insert(m, found_bugs as f64 / num_bugs as f64);
    }
    out
}

/// One row of Table 6: maximum total transition coverage per generator
/// configuration for one protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Protocol name ("MESI" or "TSO-CC").
    pub protocol: String,
    /// Column label → maximum coverage fraction observed across samples.
    pub coverage: BTreeMap<String, f64>,
}

impl CoverageRow {
    /// Renders the row as plain text percentages.
    pub fn render(&self, columns: &[String]) -> String {
        let mut out = format!("{:<8}", self.protocol);
        for c in columns {
            match self.coverage.get(c) {
                Some(v) => {
                    let _ = write!(out, "  {:>12}", format!("{:.1}%", v * 100.0));
                }
                None => {
                    let _ = write!(out, "  {:>12}", "-");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(found: bool, found_at: Option<usize>) -> CampaignResult {
        CampaignResult {
            generator: GeneratorKind::McVerSiRand,
            bug: Some(Bug::LqNoTso),
            model: mcversi_mcm::ModelKind::Tso,
            core: mcversi_sim::CoreStrength::Strong,
            seed: 0,
            found,
            detail: None,
            test_runs: 40,
            found_at_run: found_at,
            simulated_cycles: 1000,
            wall_time: Duration::from_secs(1),
            max_total_coverage: 0.5,
            final_mean_ndt: 1.0,
            pruned: 0,
        }
    }

    #[test]
    fn cell_aggregation_counts_and_averages() {
        let results = vec![
            result(true, Some(10)),
            result(true, Some(30)),
            result(false, None),
        ];
        let cell = aggregate_cell(GeneratorKind::McVerSiRand, "8KB", &results, 40);
        assert_eq!(cell.found, 2);
        assert_eq!(cell.samples, 3);
        assert!(!cell.consistent());
        // (10/40 + 30/40 + 1.0) / 3 = (0.25 + 0.75 + 1.0)/3
        assert!((cell.mean_time - 2.0 / 3.0).abs() < 1e-9);
        assert!(cell.render().starts_with("2 ("));
        let nf = aggregate_cell(GeneratorKind::DiyLitmus, "", &[result(false, None)], 40);
        assert_eq!(nf.render(), "NF");
    }

    #[test]
    fn table_renders_all_columns_and_summary() {
        let mut table = BugCoverageTable::new(vec!["A".to_string(), "B".to_string()]);
        let cell_a = aggregate_cell(GeneratorKind::McVerSiAll, "A", &[result(true, Some(5))], 40);
        let cell_b = aggregate_cell(GeneratorKind::McVerSiRand, "B", &[result(false, None)], 40);
        table.insert(Bug::LqNoTso, "A", cell_a);
        table.insert(Bug::LqNoTso, "B", cell_b);
        let text = table.render();
        assert!(text.contains("LQ+no-TSO"));
        assert!(text.contains("NF"));
        let summary = table.summary();
        assert_eq!(summary["A"].0, 1);
        assert_eq!(summary["B"].0, 0);
    }

    #[test]
    fn budget_extrapolation_grows_with_budget() {
        let cell_found_half = aggregate_cell(
            GeneratorKind::McVerSiRand,
            "8KB",
            &[result(true, Some(10)), result(false, None)],
            40,
        );
        let cell_never = aggregate_cell(
            GeneratorKind::McVerSiRand,
            "8KB",
            &[result(false, None)],
            40,
        );
        let cells = vec![(Bug::LqNoTso, cell_found_half), (Bug::SqNoFifo, cell_never)];
        let table = budget_extrapolation(&cells, &[1, 2, 10]);
        assert!(table[&1] <= table[&2]);
        assert!(table[&2] <= table[&10]);
        assert!(table[&10] <= 1.0);
    }

    #[test]
    fn coverage_row_renders_percentages() {
        let mut row = CoverageRow {
            protocol: "MESI".to_string(),
            coverage: BTreeMap::new(),
        };
        row.coverage.insert("A".to_string(), 0.823);
        let text = row.render(&["A".to_string(), "B".to_string()]);
        assert!(text.contains("82.3%"));
        assert!(text.contains('-'));
    }
}
