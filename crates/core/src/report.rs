//! Experiment reporting: the rows behind Tables 4, 5 and 6.
//!
//! Campaign results are aggregated per (bug, generator) pair into the same
//! quantities the paper reports: how many of the samples found the bug, and
//! the mean (normalised) time to find it.  The budget-extrapolation view of
//! Table 5 treats the stateless generators' independent samples as one longer
//! run, exactly as §6.1 argues.

use crate::campaign::CampaignResult;
use crate::generator::GeneratorKind;
use crate::runner::DedupStats;
use crate::sink::{CampaignEvent, EVENT_SCHEMA_VERSION};
use mcversi_sim::Bug;
use mcversi_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One cell of Table 4: a generator attacking a bug.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugCoverageCell {
    /// The generator.
    pub generator: GeneratorKind,
    /// Label distinguishing configurations of the same generator (e.g. the
    /// test-memory size "1KB" / "8KB").
    pub config_label: String,
    /// Number of samples that found the bug.
    pub found: usize,
    /// Total number of samples.
    pub samples: usize,
    /// Mean normalised time-to-bug over all samples (1.0 = budget exhausted).
    pub mean_time: f64,
}

impl BugCoverageCell {
    /// Returns `true` if every sample found the bug (the paper's bold cells).
    pub fn consistent(&self) -> bool {
        self.samples > 0 && self.found == self.samples
    }

    /// Formats the cell in the paper's style: `found (mean time)` or `NF`.
    pub fn render(&self) -> String {
        if self.found == 0 {
            "NF".to_string()
        } else {
            format!("{} ({:.2})", self.found, self.mean_time)
        }
    }
}

/// Aggregates the samples of one (bug, generator-config) cell.
pub fn aggregate_cell(
    generator: GeneratorKind,
    config_label: &str,
    results: &[CampaignResult],
    budget: usize,
) -> BugCoverageCell {
    let samples = results.len();
    let found = results.iter().filter(|r| r.found).count();
    let mean_time = if samples == 0 {
        1.0
    } else {
        results
            .iter()
            .map(|r| r.normalized_time_to_bug(budget))
            .sum::<f64>()
            / samples as f64
    };
    BugCoverageCell {
        generator,
        config_label: config_label.to_string(),
        found,
        samples,
        mean_time,
    }
}

/// A full Table-4-style report: per bug, per generator configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BugCoverageTable {
    /// Column labels in display order.
    pub columns: Vec<String>,
    /// Rows: bug → column label → cell.
    pub rows: BTreeMap<String, BTreeMap<String, BugCoverageCell>>,
}

impl BugCoverageTable {
    /// Creates an empty table with the given column order.
    pub fn new(columns: Vec<String>) -> Self {
        BugCoverageTable {
            columns,
            rows: BTreeMap::new(),
        }
    }

    /// Inserts one cell.
    pub fn insert(&mut self, bug: Bug, column: &str, cell: BugCoverageCell) {
        self.rows
            .entry(bug.paper_name().to_string())
            .or_default()
            .insert(column.to_string(), cell);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bug_width = self
            .rows
            .keys()
            .map(|b| b.len())
            .max()
            .unwrap_or(10)
            .max("Bug".len());
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(12)
            .max(12);
        let _ = write!(out, "{:<bug_width$}", "Bug");
        for c in &self.columns {
            let _ = write!(out, "  {c:>col_width$}");
        }
        out.push('\n');
        for (bug, cells) in &self.rows {
            let _ = write!(out, "{bug:<bug_width$}");
            for c in &self.columns {
                let rendered = match cells.get(c) {
                    Some(cell) => cell.render(),
                    None => "-".to_string(),
                };
                let _ = write!(out, "  {rendered:>col_width$}");
            }
            out.push('\n');
        }
        out
    }

    /// Summary row: per column, the number of (bug, sample) pairs that found
    /// their bug and the mean time (the paper's "All" row).
    pub fn summary(&self) -> BTreeMap<String, (usize, f64)> {
        let mut out = BTreeMap::new();
        for column in &self.columns {
            let mut found = 0usize;
            let mut times = Vec::new();
            for cells in self.rows.values() {
                if let Some(cell) = cells.get(column) {
                    found += cell.found;
                    times.push(cell.mean_time);
                }
            }
            let mean = if times.is_empty() {
                1.0
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            };
            out.insert(column.clone(), (found, mean));
        }
        out
    }
}

/// A Table-5-style budget extrapolation: the fraction of bugs found within
/// multiples of the base budget, exploiting that stateless generators'
/// independent samples compose into one longer run.
pub fn budget_extrapolation(
    cells: &[(Bug, BugCoverageCell)],
    multiples: &[usize],
) -> BTreeMap<usize, f64> {
    let mut out = BTreeMap::new();
    let num_bugs = cells.len().max(1);
    for &m in multiples {
        let mut found_bugs = 0usize;
        for (_, cell) in cells {
            // Within m times the budget, a stateless generator effectively
            // gets m * samples attempts; the bug counts as found if any sample
            // found it... within one budget each sample is an independent
            // 1-budget attempt, so "found within m budgets" means at least one
            // of the first min(m, samples) samples found it.
            let attempts = m.min(cell.samples.max(1));
            let any_found = cell.found > 0 && {
                // Conservative: assume the successful samples are uniformly
                // spread; with `found` successes out of `samples`, the chance
                // that `attempts` attempts contain a success is high once
                // attempts >= samples / found.
                attempts * cell.found >= cell.samples || cell.found >= cell.samples
            };
            if any_found {
                found_bugs += 1;
            }
        }
        out.insert(m, found_bugs as f64 / num_bugs as f64);
    }
    out
}

/// One row of Table 6: maximum total transition coverage per generator
/// configuration for one protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Protocol name ("MESI" or "TSO-CC").
    pub protocol: String,
    /// Column label → maximum coverage fraction observed across samples.
    pub coverage: BTreeMap<String, f64>,
}

impl CoverageRow {
    /// Renders the row as plain text percentages.
    pub fn render(&self, columns: &[String]) -> String {
        let mut out = format!("{:<8}", self.protocol);
        for c in columns {
            match self.coverage.get(c) {
                Some(v) => {
                    let _ = write!(out, "  {:>12}", format!("{:.1}%", v * 100.0));
                }
                None => {
                    let _ = write!(out, "  {:>12}", "-");
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Telemetry reporting (`mcversi-report`)
// ---------------------------------------------------------------------------

/// An error interpreting a campaign-event JSONL stream as a metrics report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReportError(pub String);

impl std::fmt::Display for MetricsReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for MetricsReportError {}

/// Distributed-fabric activity observed in a journal or worker stream:
/// [`CampaignEvent::FabricStats`] totals plus resume/cell bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricTotals {
    /// Shard dispatches to worker processes.
    pub dispatched: u64,
    /// Dispatches stolen from another worker's queue.
    pub stolen: u64,
    /// Shards re-dispatched after worker loss.
    pub redispatched: u64,
    /// Samples skipped thanks to a resume journal.
    pub resume_skipped: u64,
    /// [`CampaignEvent::Resume`] records observed.
    pub resumes: usize,
    /// [`CampaignEvent::CellDone`] records observed.
    pub cells_done: usize,
}

impl FabricTotals {
    /// Returns `true` when no fabric activity was observed at all.
    pub fn is_empty(&self) -> bool {
        *self == FabricTotals::default()
    }
}

/// The telemetry of one or more campaign-event JSONL streams (see
/// [`crate::sink::JsonlSink`]), reduced to one final snapshot per sample.
///
/// A [`CampaignEvent::SampleDone`] (or its cell-attributed fabric form,
/// [`CampaignEvent::SampleResult`]) closes its sample with the result's final
/// snapshot; a sample that never completed (crashed or still running) is
/// represented by its last streamed [`CampaignEvent::Metrics`] snapshot,
/// which is cumulative by construction.  Samples are kept individually —
/// sweep streams interleave many cells whose seeds repeat, so keying by seed
/// alone would silently drop data.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// One `(seed, final snapshot)` entry per completed sample, in stream
    /// order.
    pub completed: Vec<(u64, MetricsSnapshot)>,
    /// Last streamed snapshot of each sample that never reported done.
    pub unfinished: BTreeMap<u64, MetricsSnapshot>,
    /// Total wall time over all completed samples, in nanoseconds.
    pub wall_ns: u64,
    /// Total number of events in the stream (including the schema header).
    pub events: usize,
    /// Signature-dedup statistics summed over every completed sample that
    /// ran with [`crate::runner::CheckingMode::Collective`].
    pub dedup: DedupStats,
    /// Number of completed samples that contributed to [`Self::dedup`].
    pub dedup_samples: usize,
    /// Distributed-fabric activity, if the streams carried any.
    pub fabric: FabricTotals,
}

impl MetricsReport {
    /// Parses a campaign-event JSONL stream.
    ///
    /// # Errors
    ///
    /// Fails on an unparseable line or a [`CampaignEvent::Schema`] header
    /// whose version differs from this build's [`EVENT_SCHEMA_VERSION`]; a
    /// stream without a header (pre-versioning producer) is accepted.
    pub fn from_jsonl(text: &str) -> Result<Self, MetricsReportError> {
        let mut report = MetricsReport::default();
        report.ingest(text, "")?;
        Ok(report)
    }

    /// Parses and merges several campaign-event JSONL streams — e.g. one
    /// journal per fabric worker — into one report.
    ///
    /// Every stream must carry the same schema version (in practice this
    /// build's [`EVENT_SCHEMA_VERSION`]); a mix of versions is rejected with
    /// the offending stream named, so a worker left behind by a format bump
    /// cannot silently corrupt a merged report.  Error messages are prefixed
    /// with the 1-based stream index.
    pub fn from_jsonl_streams(streams: &[&str]) -> Result<Self, MetricsReportError> {
        let mut report = MetricsReport::default();
        for (idx, text) in streams.iter().enumerate() {
            let prefix = if streams.len() > 1 {
                format!("stream {}: ", idx + 1)
            } else {
                String::new()
            };
            report.ingest(text, &prefix)?;
        }
        Ok(report)
    }

    /// Folds one JSONL stream into the report (see [`Self::from_jsonl`]).
    fn ingest(&mut self, text: &str, prefix: &str) -> Result<(), MetricsReportError> {
        // Streamed snapshots are subsumed per stream: a `SampleDone` in one
        // worker's stream must not cancel another worker's live snapshot.
        let mut streamed: BTreeMap<u64, MetricsSnapshot> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: CampaignEvent = serde_json::from_str(line)
                .map_err(|e| MetricsReportError(format!("{prefix}line {}: {e}", idx + 1)))?;
            self.events += 1;
            match event {
                CampaignEvent::Schema { version } if version != EVENT_SCHEMA_VERSION => {
                    return Err(MetricsReportError(format!(
                        "{prefix}line {}: schema version {version} (this build reads \
                         {EVENT_SCHEMA_VERSION})",
                        idx + 1
                    )));
                }
                CampaignEvent::Schema { .. } => {}
                CampaignEvent::Metrics { seed, snapshot, .. } => {
                    streamed.insert(seed, snapshot);
                }
                CampaignEvent::SampleDone { result }
                | CampaignEvent::SampleResult { cell: _, result } => {
                    self.wall_ns += result.wall_time.as_nanos() as u64;
                    if let Some(dedup) = &result.dedup {
                        self.dedup.merge(dedup);
                        self.dedup_samples += 1;
                    }
                    // The final snapshot subsumes the sample's streamed ones
                    // (all snapshots are cumulative).
                    let last_streamed = streamed.remove(&result.seed);
                    if let Some(snapshot) = result.metrics.or(last_streamed) {
                        self.completed.push((result.seed, snapshot));
                    }
                }
                CampaignEvent::CellDone { .. } => {
                    self.fabric.cells_done += 1;
                }
                CampaignEvent::Resume {
                    cells_skipped: _,
                    samples_skipped,
                } => {
                    self.fabric.resumes += 1;
                    self.fabric.resume_skipped += samples_skipped as u64;
                }
                CampaignEvent::FabricStats {
                    dispatched,
                    stolen,
                    redispatched,
                    resume_skipped,
                } => {
                    self.fabric.dispatched += dispatched;
                    self.fabric.stolen += stolen;
                    self.fabric.redispatched += redispatched;
                    // `FabricStats.resume_skipped` restates the per-`Resume`
                    // counts already folded in above; keep the larger so a
                    // journal carrying both records is not double-counted.
                    self.fabric.resume_skipped = self.fabric.resume_skipped.max(resume_skipped);
                }
                _ => {}
            }
        }
        for (seed, snapshot) in streamed {
            match self.unfinished.entry(seed) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(snapshot);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(&snapshot);
                }
            }
        }
        Ok(())
    }

    /// Number of samples represented (completed plus unfinished).
    pub fn samples(&self) -> usize {
        self.completed.len() + self.unfinished.len()
    }

    /// Returns `true` if the stream carried no telemetry at all.
    pub fn is_empty(&self) -> bool {
        self.completed.iter().all(|(_, s)| s.is_empty())
            && self.unfinished.values().all(|s| s.is_empty())
    }

    /// Folds the per-sample snapshots into one campaign-wide snapshot.
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for (_, snapshot) in &self.completed {
            total.merge(snapshot);
        }
        for snapshot in self.unfinished.values() {
            total.merge(snapshot);
        }
        total
    }

    /// Total wall time across all completed samples, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Renders the aggregated telemetry as aligned plain text: the phase
    /// timers with their share of sample wall time, then every counter, then
    /// every histogram.
    pub fn render(&self) -> String {
        let total = self.aggregate();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Telemetry report: {} sample(s), {} event(s)",
            self.samples(),
            self.events
        );
        if total.is_empty() {
            out.push_str("no telemetry recorded (run with MCVERSI_METRICS=sample or a cadence)\n");
            self.render_dedup(&mut out);
            self.render_fabric(&mut out);
            return out;
        }

        let wall = self.total_wall_ns();
        let phase_total = total.timer_sum_ns("phase.");
        out.push('\n');
        if wall > 0 {
            let _ = writeln!(
                out,
                "Phase timers ({:.1}% of {} ns sample wall time):",
                100.0 * phase_total as f64 / wall as f64,
                wall
            );
        } else {
            let _ = writeln!(out, "Phase timers ({phase_total} ns total):");
        }
        let name_width = column_width(total.timers.keys().chain(total.counters.keys()));
        for (name, hist) in &total.timers {
            let share = if name.starts_with("phase.") && phase_total > 0 {
                format!("{:>5.1}%", 100.0 * hist.sum as f64 / phase_total as f64)
            } else {
                format!("{:>6}", "-")
            };
            let _ = writeln!(
                out,
                "  {name:<name_width$}  {share}  {:>14} ns  {:>10} spans",
                hist.sum, hist.count
            );
        }

        out.push('\n');
        out.push_str("Counters:\n");
        for (name, value) in &total.counters {
            let _ = writeln!(out, "  {name:<name_width$}  {value:>14}");
        }

        self.render_dedup(&mut out);
        self.render_fabric(&mut out);
        render_vc(&total, &mut out);

        if !total.histograms.is_empty() {
            out.push('\n');
            out.push_str("Histograms:\n");
            let hist_width = column_width(total.histograms.keys());
            for (name, hist) in &total.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<hist_width$}  count {:>10}  sum {:>14}  mean {:>10.1}",
                    hist.count,
                    hist.sum,
                    hist.mean()
                );
            }
        }
        out
    }

    /// Appends the collective-checking summary line, if any sample ran with
    /// signature deduplication.
    fn render_dedup(&self, out: &mut String) {
        if self.dedup_samples == 0 {
            return;
        }
        let d = &self.dedup;
        out.push('\n');
        let _ = writeln!(
            out,
            "Collective checking ({} sample(s)): {} execution(s), \
             {} cache hit(s), {} cache miss(es), {} oracle-certified, \
             {} checker call(s) ({:.1}x fewer than per-exec)",
            self.dedup_samples,
            d.executions,
            d.cache_hits,
            d.cache_misses,
            d.oracle_valid,
            d.checker_calls,
            d.executions as f64 / d.checker_calls.max(1) as f64,
        );
    }

    /// Appends the distributed-fabric summary line when the streams carried
    /// coordinator activity (`fabric.*` counters, resume or cell records).
    fn render_fabric(&self, out: &mut String) {
        if self.fabric.is_empty() {
            return;
        }
        let f = &self.fabric;
        out.push('\n');
        let _ = writeln!(
            out,
            "Distributed fabric: {} shard dispatch(es) ({} stolen, \
             {} re-dispatched after worker loss), {} cell(s) completed, \
             {} resume(s) skipping {} journaled sample(s)",
            f.dispatched, f.stolen, f.redispatched, f.cells_done, f.resumes, f.resume_skipped,
        );
    }
}

/// Appends the vector-clock first-pass summary line when the aggregated
/// counters carry `vc.*` outcomes (samples that ran with
/// `MCVERSI_CHECKING=vc` or checked traces through `mcversi-check`).
fn render_vc(total: &MetricsSnapshot, out: &mut String) {
    let get = |name: &str| total.counters.get(name).copied().unwrap_or(0);
    let (pass, fallback, abstain) = (get("vc.pass"), get("vc.fallback"), get("vc.abstain"));
    let checked = pass + fallback + abstain;
    if checked == 0 {
        return;
    }
    let _ = writeln!(
        out,
        "\nVector-clock first pass: {checked} execution(s) checked, \
         {pass} certified valid ({:.1}%), {fallback} violation fallback(s), \
         {abstain} abstention(s)",
        100.0 * pass as f64 / checked as f64,
    );
}

/// Column width fitting every name in `names`.
fn column_width<'a>(names: impl Iterator<Item = &'a String>) -> usize {
    names.map(|n| n.len()).max().unwrap_or(8).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(found: bool, found_at: Option<usize>) -> CampaignResult {
        CampaignResult {
            generator: GeneratorKind::McVerSiRand,
            bug: Some(Bug::LqNoTso),
            model: mcversi_mcm::ModelKind::Tso,
            core: mcversi_sim::CoreStrength::Strong,
            seed: 0,
            found,
            detail: None,
            test_runs: 40,
            found_at_run: found_at,
            simulated_cycles: 1000,
            wall_time: Duration::from_secs(1),
            max_total_coverage: 0.5,
            final_mean_ndt: 1.0,
            pruned: 0,
            metrics: None,
            dedup: None,
        }
    }

    #[test]
    fn cell_aggregation_counts_and_averages() {
        let results = vec![
            result(true, Some(10)),
            result(true, Some(30)),
            result(false, None),
        ];
        let cell = aggregate_cell(GeneratorKind::McVerSiRand, "8KB", &results, 40);
        assert_eq!(cell.found, 2);
        assert_eq!(cell.samples, 3);
        assert!(!cell.consistent());
        // (10/40 + 30/40 + 1.0) / 3 = (0.25 + 0.75 + 1.0)/3
        assert!((cell.mean_time - 2.0 / 3.0).abs() < 1e-9);
        assert!(cell.render().starts_with("2 ("));
        let nf = aggregate_cell(GeneratorKind::DiyLitmus, "", &[result(false, None)], 40);
        assert_eq!(nf.render(), "NF");
    }

    #[test]
    fn table_renders_all_columns_and_summary() {
        let mut table = BugCoverageTable::new(vec!["A".to_string(), "B".to_string()]);
        let cell_a = aggregate_cell(GeneratorKind::McVerSiAll, "A", &[result(true, Some(5))], 40);
        let cell_b = aggregate_cell(GeneratorKind::McVerSiRand, "B", &[result(false, None)], 40);
        table.insert(Bug::LqNoTso, "A", cell_a);
        table.insert(Bug::LqNoTso, "B", cell_b);
        let text = table.render();
        assert!(text.contains("LQ+no-TSO"));
        assert!(text.contains("NF"));
        let summary = table.summary();
        assert_eq!(summary["A"].0, 1);
        assert_eq!(summary["B"].0, 0);
    }

    #[test]
    fn budget_extrapolation_grows_with_budget() {
        let cell_found_half = aggregate_cell(
            GeneratorKind::McVerSiRand,
            "8KB",
            &[result(true, Some(10)), result(false, None)],
            40,
        );
        let cell_never = aggregate_cell(
            GeneratorKind::McVerSiRand,
            "8KB",
            &[result(false, None)],
            40,
        );
        let cells = vec![(Bug::LqNoTso, cell_found_half), (Bug::SqNoFifo, cell_never)];
        let table = budget_extrapolation(&cells, &[1, 2, 10]);
        assert!(table[&1] <= table[&2]);
        assert!(table[&2] <= table[&10]);
        assert!(table[&10] <= 1.0);
    }

    fn snapshot(hits: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("sim.l1.mesi.hit".to_string(), hits);
        let spans = mcversi_telemetry::HistogramSnapshot {
            count: 1,
            sum: 900,
            ..Default::default()
        };
        s.timers.insert("phase.simulate".to_string(), spans);
        s
    }

    fn jsonl(events: &[CampaignEvent]) -> String {
        events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn metrics_report_prefers_final_snapshots_and_keeps_streamed_fallbacks() {
        let mut done = result(true, Some(10));
        done.seed = 1;
        done.metrics = Some(snapshot(10));
        let text = jsonl(&[
            CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION,
            },
            CampaignEvent::Metrics {
                seed: 1,
                run: 2,
                snapshot: snapshot(5),
            },
            CampaignEvent::SampleDone { result: done },
            // Seed 2 never completed: its last streamed snapshot stands in.
            CampaignEvent::Metrics {
                seed: 2,
                run: 2,
                snapshot: snapshot(7),
            },
        ]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        assert_eq!(report.events, 4);
        assert_eq!(report.samples(), 2);
        assert_eq!(report.completed, vec![(1, snapshot(10))]);
        assert_eq!(report.unfinished[&2].counters["sim.l1.mesi.hit"], 7);
        assert_eq!(report.total_wall_ns(), 1_000_000_000);
        let total = report.aggregate();
        assert_eq!(total.counters["sim.l1.mesi.hit"], 17);
        assert_eq!(total.timer_sum_ns("phase."), 1800);
        let rendered = report.render();
        assert!(rendered.contains("phase.simulate"));
        assert!(rendered.contains("sim.l1.mesi.hit"));
        assert!(rendered.contains("Counters:"));
    }

    #[test]
    fn metrics_report_rejects_future_schemas_and_bad_lines() {
        let future = jsonl(&[CampaignEvent::Schema { version: 99 }]);
        let err = MetricsReport::from_jsonl(&future).unwrap_err();
        assert!(format!("{err}").contains("schema version 99"));
        assert!(MetricsReport::from_jsonl("not json\n").is_err());
        // A header-less stream (pre-versioning producer) still parses.
        let headerless = jsonl(&[CampaignEvent::Metrics {
            seed: 3,
            run: 1,
            snapshot: snapshot(1),
        }]);
        let report = MetricsReport::from_jsonl(&headerless).expect("headerless parses");
        assert_eq!(report.samples(), 1);
    }

    #[test]
    fn metrics_report_keeps_samples_whose_seeds_repeat_across_cells() {
        // Sweep streams interleave cells that reuse seeds; every sample must
        // still count.
        let mut first = result(true, Some(1));
        first.seed = 1;
        first.metrics = Some(snapshot(3));
        let mut second = result(false, None);
        second.seed = 1;
        second.metrics = Some(snapshot(4));
        let text = jsonl(&[
            CampaignEvent::SampleDone { result: first },
            CampaignEvent::SampleDone { result: second },
        ]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        assert_eq!(report.samples(), 2);
        assert_eq!(report.aggregate().counters["sim.l1.mesi.hit"], 7);
        assert_eq!(report.total_wall_ns(), 2_000_000_000);
    }

    #[test]
    fn metrics_report_aggregates_and_renders_dedup_stats() {
        let stats = DedupStats {
            executions: 120,
            cache_hits: 100,
            cache_misses: 20,
            oracle_valid: 14,
            checker_calls: 6,
        };
        let mut done = result(false, None);
        done.metrics = Some(snapshot(1));
        done.dedup = Some(stats);
        let mut per_exec = result(false, None);
        per_exec.seed = 2;
        per_exec.metrics = Some(snapshot(2));
        let text = jsonl(&[
            CampaignEvent::SampleDone {
                result: done.clone(),
            },
            CampaignEvent::SampleDone { result: per_exec },
            CampaignEvent::SampleDone { result: done },
        ]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        assert_eq!(report.dedup_samples, 2, "per-exec samples don't count");
        let mut expected = stats;
        expected.merge(&stats);
        assert_eq!(report.dedup, expected);
        let rendered = report.render();
        assert!(
            rendered.contains("Collective checking (2 sample(s)): 240 execution(s)"),
            "dedup summary rendered: {rendered}"
        );
        assert!(rendered.contains("12 checker call(s) (20.0x fewer than per-exec)"));
    }

    #[test]
    fn metrics_report_renders_the_vc_summary_line() {
        let mut vc_sample = result(false, None);
        let mut metrics = snapshot(1);
        metrics.counters.insert("vc.pass".to_string(), 90);
        metrics.counters.insert("vc.fallback".to_string(), 6);
        metrics.counters.insert("vc.abstain".to_string(), 4);
        vc_sample.metrics = Some(metrics);
        let text = jsonl(&[CampaignEvent::SampleDone { result: vc_sample }]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        let rendered = report.render();
        assert!(
            rendered.contains(
                "Vector-clock first pass: 100 execution(s) checked, \
                 90 certified valid (90.0%), 6 violation fallback(s), 4 abstention(s)"
            ),
            "vc summary rendered: {rendered}"
        );
        // Without vc counters the line is absent.
        let mut plain = result(false, None);
        plain.metrics = Some(snapshot(1));
        let text = jsonl(&[CampaignEvent::SampleDone { result: plain }]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        assert!(!report.render().contains("Vector-clock first pass"));
    }

    #[test]
    fn empty_metrics_report_renders_a_hint() {
        let report = MetricsReport::from_jsonl("").expect("empty stream parses");
        assert!(report.is_empty());
        assert!(report.render().contains("MCVERSI_METRICS"));
    }

    #[test]
    fn metrics_report_merges_per_worker_streams() {
        // Two fabric worker journals: each stream's own SampleDone subsumes
        // its streamed snapshots, but a live snapshot in one stream must not
        // be cancelled by a completion in the other.
        let mut done = result(true, Some(2));
        done.seed = 1;
        done.metrics = Some(snapshot(10));
        let stream_a = jsonl(&[
            CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION,
            },
            CampaignEvent::SampleResult {
                cell: 7,
                result: done,
            },
            CampaignEvent::CellDone {
                cell: 7,
                samples: 1,
            },
        ]);
        let stream_b = jsonl(&[
            CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION,
            },
            CampaignEvent::Metrics {
                seed: 1,
                run: 1,
                snapshot: snapshot(4),
            },
        ]);
        let report =
            MetricsReport::from_jsonl_streams(&[&stream_a, &stream_b]).expect("streams parse");
        assert_eq!(report.completed, vec![(1, snapshot(10))]);
        assert_eq!(
            report.unfinished[&1].counters["sim.l1.mesi.hit"], 4,
            "stream B's live sample survives stream A's completion of seed 1"
        );
        assert_eq!(report.samples(), 2);
        assert_eq!(report.fabric.cells_done, 1);
    }

    #[test]
    fn metrics_report_rejects_mixed_schema_versions_naming_the_stream() {
        let v1 = jsonl(&[CampaignEvent::Schema {
            version: EVENT_SCHEMA_VERSION,
        }]);
        let foreign = "{\"Schema\":{\"version\":2}}".to_string();
        let err = MetricsReport::from_jsonl_streams(&[&v1, &foreign]).unwrap_err();
        assert!(
            format!("{err}").contains("stream 2"),
            "the offending stream is named: {err}"
        );
        assert!(format!("{err}").contains("schema version 2"));
    }

    #[test]
    fn sample_results_count_exactly_like_sample_dones() {
        let mut done = result(true, Some(3));
        done.metrics = Some(snapshot(5));
        done.dedup = Some(DedupStats {
            executions: 10,
            cache_hits: 8,
            cache_misses: 2,
            oracle_valid: 1,
            checker_calls: 1,
        });
        let plain = jsonl(&[CampaignEvent::SampleDone {
            result: done.clone(),
        }]);
        let attributed = jsonl(&[CampaignEvent::SampleResult {
            cell: 42,
            result: done,
        }]);
        let a = MetricsReport::from_jsonl(&plain).unwrap();
        let b = MetricsReport::from_jsonl(&attributed).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_wall_ns(), b.total_wall_ns());
        assert_eq!(a.dedup, b.dedup);
        assert_eq!(a.dedup_samples, b.dedup_samples);
    }

    #[test]
    fn metrics_report_renders_the_fabric_summary_line() {
        let text = jsonl(&[
            CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION,
            },
            CampaignEvent::Resume {
                cells_skipped: 1,
                samples_skipped: 3,
            },
            CampaignEvent::CellDone {
                cell: 1,
                samples: 2,
            },
            CampaignEvent::CellDone {
                cell: 2,
                samples: 2,
            },
            // FabricStats restates the Resume's skip count: no double count.
            CampaignEvent::FabricStats {
                dispatched: 5,
                stolen: 2,
                redispatched: 1,
                resume_skipped: 3,
            },
        ]);
        let report = MetricsReport::from_jsonl(&text).expect("stream parses");
        assert_eq!(
            report.fabric,
            FabricTotals {
                dispatched: 5,
                stolen: 2,
                redispatched: 1,
                resume_skipped: 3,
                resumes: 1,
                cells_done: 2,
            }
        );
        let rendered = report.render();
        assert!(
            rendered.contains(
                "Distributed fabric: 5 shard dispatch(es) (2 stolen, \
                 1 re-dispatched after worker loss), 2 cell(s) completed, \
                 1 resume(s) skipping 3 journaled sample(s)"
            ),
            "fabric summary rendered: {rendered}"
        );
        // A stream with no fabric records renders no fabric line.
        let plain = MetricsReport::from_jsonl("").unwrap();
        assert!(plain.fabric.is_empty());
        assert!(!plain.render().contains("Distributed fabric"));
    }

    #[test]
    fn coverage_row_renders_percentages() {
        let mut row = CoverageRow {
            protocol: "MESI".to_string(),
            coverage: BTreeMap::new(),
        };
        row.coverage.insert("A".to_string(), 0.823);
        let text = row.render(&["A".to_string(), "B".to_string()]);
        assert!(text.contains("82.3%"));
        assert!(text.contains('-'));
    }
}
