//! Streaming campaign reporting: [`CampaignSink`] and its implementations.
//!
//! Long campaigns used to be observable only through the final result vector
//! of `run_samples`; a sink receives events *as they happen* — workers push
//! them through a bounded channel and the calling thread dispatches them in
//! arrival order (per-sample order is preserved; events of concurrent samples
//! interleave).  The bounded channel applies backpressure: a slow sink slows
//! the workers down rather than buffering without limit.
//!
//! * [`CollectSink`] — gathers completed results (the old behaviour);
//! * [`ProgressSink`] — live progress lines on stderr (or any writer);
//! * [`JsonlSink`] — one JSON line per event, the machine-readable stream
//!   that later checkpoint/resume work builds on;
//! * [`NullSink`] — discards everything;
//! * sinks compose: a `(&mut a, &mut b)` tuple fans events out to both.

use crate::campaign::CampaignResult;
use mcversi_telemetry::{MetricsSnapshot, Stopwatch};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// Version of the JSONL event format. Bumped whenever a [`CampaignEvent`]
/// variant changes incompatibly; [`JsonlSink`] writes it as a
/// [`CampaignEvent::Schema`] header line so downstream tooling (and the
/// future distributed fabric) can detect event-format drift.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// One event of a streaming campaign run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// Stream header identifying the event-format version (first line of
    /// every [`JsonlSink`] stream; never emitted by campaign workers).
    Schema {
        /// The [`EVENT_SCHEMA_VERSION`] the stream was written with.
        version: u32,
    },
    /// A sample was claimed by a worker and is about to run.
    SampleStart {
        /// The sample's seed.
        seed: u64,
        /// The sample's index within the batch.
        index: usize,
    },
    /// One test-run of a sample completed.
    TestRun {
        /// The sample's seed.
        seed: u64,
        /// 1-based test-run index within the sample.
        run: usize,
        /// Whether the run exposed a bug.
        found: bool,
        /// Adaptive-coverage fitness of the run.
        fitness: f64,
        /// Simulated cycles consumed by the run.
        cycles: u64,
    },
    /// A test-run exposed a violation (emitted in addition to its
    /// [`CampaignEvent::TestRun`] event).
    Violation {
        /// The sample's seed.
        seed: u64,
        /// 1-based test-run index at which the violation surfaced.
        run: usize,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A sample ran to completion.
    SampleDone {
        /// The completed result.
        result: CampaignResult,
    },
    /// A sample panicked; the batch continues without it.
    SamplePanic {
        /// The sample's seed.
        seed: u64,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A cumulative telemetry snapshot of one sample, emitted at the cadence
    /// configured by `CampaignConfig::metrics` (see `MCVERSI_METRICS`).
    Metrics {
        /// The sample's seed.
        seed: u64,
        /// 1-based test-run index after which the snapshot was taken.
        run: usize,
        /// Cumulative metrics since the sample started.
        snapshot: MetricsSnapshot,
    },
    /// A fabric worker started a grid cell (distributed campaigns only).
    CellStart {
        /// Stable cell identity (`ScenarioSpec::cell_id`).
        cell: u64,
        /// The cell's human-readable label.
        label: String,
    },
    /// A sample of a grid cell ran to completion on a fabric worker.  This is
    /// the cell-attributed form of [`CampaignEvent::SampleDone`]: workers
    /// rewrite `SampleDone` into `SampleResult` so a journal merging several
    /// cells (and several workers) stays unambiguous.
    SampleResult {
        /// Stable cell identity (`ScenarioSpec::cell_id`).
        cell: u64,
        /// The completed result.
        result: CampaignResult,
    },
    /// A fabric worker finished every requested sample of a grid cell.
    CellDone {
        /// Stable cell identity (`ScenarioSpec::cell_id`).
        cell: u64,
        /// How many samples the worker ran for this cell (excluding samples
        /// skipped because a resume journal already had their results).
        samples: usize,
    },
    /// The coordinator resumed a campaign from a partial journal; appended to
    /// the journal itself so the resume is visible downstream.
    Resume {
        /// Cells skipped entirely because the journal marked them done.
        cells_skipped: usize,
        /// Individual samples skipped inside partially-complete cells.
        samples_skipped: usize,
    },
    /// End-of-campaign coordinator statistics (distributed campaigns only).
    FabricStats {
        /// Shard dispatches to worker processes.
        dispatched: u64,
        /// Dispatches stolen from another worker's queue.
        stolen: u64,
        /// Shards re-dispatched after a worker died or went silent.
        redispatched: u64,
        /// Samples skipped thanks to a resume journal.
        resume_skipped: u64,
    },
}

/// A consumer of streaming campaign events.
///
/// All methods default to no-ops, so implementations override only what they
/// observe.  Methods take `&mut self` and are invoked from the thread that
/// called `run_samples_streamed` — sinks need `Send` only because campaign
/// configs may cross threads, not for concurrent dispatch.
pub trait CampaignSink: Send {
    /// A sample is about to run.
    fn on_sample_start(&mut self, _seed: u64, _index: usize) {}

    /// One test-run of a sample completed.
    fn on_test_run(&mut self, _seed: u64, _run: usize, _found: bool, _fitness: f64, _cycles: u64) {}

    /// A test-run exposed a violation.
    fn on_violation(&mut self, _seed: u64, _run: usize, _detail: &str) {}

    /// A sample ran to completion.
    fn on_sample_done(&mut self, _result: &CampaignResult) {}

    /// A sample panicked.
    fn on_sample_panic(&mut self, _seed: u64, _message: &str) {}

    /// A stream schema header was observed.
    fn on_schema(&mut self, _version: u32) {}

    /// A telemetry snapshot arrived.
    fn on_metrics(&mut self, _seed: u64, _run: usize, _snapshot: &MetricsSnapshot) {}

    /// A fabric worker started a grid cell.
    fn on_cell_start(&mut self, _cell: u64, _label: &str) {}

    /// A cell-attributed sample completed on a fabric worker.  Defaults to
    /// forwarding the result to [`CampaignSink::on_sample_done`], so
    /// collectors and progress reporters see distributed completions without
    /// fabric-specific code.
    fn on_sample_result(&mut self, _cell: u64, result: &CampaignResult) {
        self.on_sample_done(result);
    }

    /// A fabric worker finished a grid cell.
    fn on_cell_done(&mut self, _cell: u64, _samples: usize) {}

    /// The coordinator resumed from a partial journal.
    fn on_resume(&mut self, _cells_skipped: usize, _samples_skipped: usize) {}

    /// End-of-campaign coordinator statistics arrived.
    fn on_fabric_stats(
        &mut self,
        _dispatched: u64,
        _stolen: u64,
        _redispatched: u64,
        _resume_skipped: u64,
    ) {
    }

    /// Dispatches one event to the matching method (the channel-drain entry
    /// point; implementations normally override the specific methods).
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::Schema { version } => self.on_schema(*version),
            CampaignEvent::SampleStart { seed, index } => self.on_sample_start(*seed, *index),
            CampaignEvent::TestRun {
                seed,
                run,
                found,
                fitness,
                cycles,
            } => self.on_test_run(*seed, *run, *found, *fitness, *cycles),
            CampaignEvent::Violation { seed, run, detail } => {
                self.on_violation(*seed, *run, detail)
            }
            CampaignEvent::SampleDone { result } => self.on_sample_done(result),
            CampaignEvent::SamplePanic { seed, message } => self.on_sample_panic(*seed, message),
            CampaignEvent::Metrics {
                seed,
                run,
                snapshot,
            } => self.on_metrics(*seed, *run, snapshot),
            CampaignEvent::CellStart { cell, label } => self.on_cell_start(*cell, label),
            CampaignEvent::SampleResult { cell, result } => self.on_sample_result(*cell, result),
            CampaignEvent::CellDone { cell, samples } => self.on_cell_done(*cell, *samples),
            CampaignEvent::Resume {
                cells_skipped,
                samples_skipped,
            } => self.on_resume(*cells_skipped, *samples_skipped),
            CampaignEvent::FabricStats {
                dispatched,
                stolen,
                redispatched,
                resume_skipped,
            } => self.on_fabric_stats(*dispatched, *stolen, *redispatched, *resume_skipped),
        }
    }
}

/// Discards every event.
#[derive(Debug, Default)]
pub struct NullSink;

impl CampaignSink for NullSink {}

/// Collects completed sample results, in arrival order (the old
/// `run_samples` behaviour expressed as a sink).
#[derive(Debug, Default)]
pub struct CollectSink {
    results: Vec<CampaignResult>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The collected results, in arrival order.
    pub fn results(&self) -> &[CampaignResult] {
        &self.results
    }

    /// Consumes the sink, returning the collected results.
    pub fn into_results(self) -> Vec<CampaignResult> {
        self.results
    }
}

impl CampaignSink for CollectSink {
    fn on_sample_done(&mut self, result: &CampaignResult) {
        self.results.push(result.clone());
    }
}

/// How many test-runs pass between `ProgressSink` throughput lines.
const PROGRESS_RATE_EVERY: u64 = 100;

/// Live progress reporting: one line per sample start/finish and per
/// violation, written as events arrive, plus a rolling runs/sec throughput
/// line every `PROGRESS_RATE_EVERY` (100) test-runs.
pub struct ProgressSink<W: Write + Send> {
    out: W,
    prefix: String,
    /// Started at sink construction; basis of the rolling runs/sec line.
    clock: Stopwatch,
    /// Test-run events observed so far, across all samples.
    runs: u64,
}

impl ProgressSink<std::io::Stderr> {
    /// Progress lines on stderr.
    pub fn stderr() -> Self {
        ProgressSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> ProgressSink<W> {
    /// Progress lines on an arbitrary writer.
    pub fn new(out: W) -> Self {
        ProgressSink {
            out,
            prefix: String::new(),
            clock: Stopwatch::start(),
            runs: 0,
        }
    }

    /// Prefixes every line (e.g. with the campaign cell's label).
    pub fn with_prefix(mut self, prefix: &str) -> Self {
        self.prefix = format!("{prefix} ");
        self
    }

    /// Test-runs per second since the sink was constructed.
    fn runs_per_sec(&self) -> f64 {
        self.runs as f64 / self.clock.elapsed().as_secs_f64().max(1e-9)
    }
}

impl<W: Write + Send> std::fmt::Debug for ProgressSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> CampaignSink for ProgressSink<W> {
    fn on_sample_start(&mut self, seed: u64, index: usize) {
        let _ = writeln!(
            self.out,
            "{}sample #{index} (seed {seed}) started",
            self.prefix
        );
    }

    fn on_test_run(&mut self, _seed: u64, _run: usize, _found: bool, _fitness: f64, _cycles: u64) {
        self.runs += 1;
        if self.runs.is_multiple_of(PROGRESS_RATE_EVERY) {
            let rate = self.runs_per_sec();
            let _ = writeln!(
                self.out,
                "{}{} runs, {rate:.1} runs/s",
                self.prefix, self.runs
            );
        }
    }

    fn on_violation(&mut self, seed: u64, run: usize, detail: &str) {
        let _ = writeln!(
            self.out,
            "{}! seed {seed}: {detail} (test-run {run})",
            self.prefix
        );
    }

    fn on_sample_done(&mut self, result: &CampaignResult) {
        let verdict = if result.found {
            format!("FOUND at run {}", result.found_at_run.unwrap_or(0))
        } else {
            "not found".to_string()
        };
        let rate = self.runs_per_sec();
        let _ = writeln!(
            self.out,
            "{}sample seed {} done: {verdict} after {} runs ({} cycles, {rate:.1} runs/s overall)",
            self.prefix, result.seed, result.test_runs, result.simulated_cycles
        );
    }

    fn on_sample_panic(&mut self, seed: u64, message: &str) {
        let _ = writeln!(
            self.out,
            "{}sample seed {seed} PANICKED: {message}",
            self.prefix
        );
    }
}

/// Machine-readable event stream: one JSON object per line (JSONL), flushed
/// per event so a consumer can tail the file while the campaign runs, and
/// once more on drop (so a buffered writer wrapped in the sink cannot lose
/// its tail when a campaign binary returns early).
///
/// The first line of every stream is a [`CampaignEvent::Schema`] header
/// carrying [`EVENT_SCHEMA_VERSION`], written lazily just before the first
/// event.
pub struct JsonlSink<W: Write + Send> {
    /// `None` only after [`JsonlSink::into_inner`] moved the writer out.
    out: Option<W>,
    lines: u64,
    /// Whether the schema header line has been written yet.
    header_written: bool,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncates) a JSONL file at `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Streams events into an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Some(out),
            lines: 0,
            header_written: false,
        }
    }

    /// Number of lines written so far, including the schema header.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the sink, returning the (flushed) writer.
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer present until into_inner");
        let _ = out.flush();
        out
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> CampaignSink for JsonlSink<W> {
    fn on_event(&mut self, event: &CampaignEvent) {
        let Some(out) = self.out.as_mut() else {
            return;
        };
        if !self.header_written {
            self.header_written = true;
            if !matches!(event, CampaignEvent::Schema { .. }) {
                let header = CampaignEvent::Schema {
                    version: EVENT_SCHEMA_VERSION,
                };
                if let Ok(line) = serde_json::to_string(&header) {
                    if writeln!(out, "{line}").is_ok() {
                        self.lines += 1;
                    }
                }
            }
        }
        if let Ok(line) = serde_json::to_string(event) {
            debug_assert!(!line.contains('\n'), "events must be single-line");
            if writeln!(out, "{line}").is_ok() {
                self.lines += 1;
            }
            let _ = out.flush();
        }
    }
}

/// Fan-out: both sinks receive every event, in order.
impl<A: CampaignSink, B: CampaignSink> CampaignSink for (A, B) {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

/// A mutable reference forwards to the sink it borrows, so sinks that
/// outlive one batch (e.g. a JSONL stream spanning a whole sweep) compose
/// with per-cell sinks: `(&mut progress, &mut jsonl)`.
impl<S: CampaignSink + ?Sized> CampaignSink for &mut S {
    fn on_event(&mut self, event: &CampaignEvent) {
        (**self).on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorKind;
    use mcversi_mcm::ModelKind;
    use mcversi_sim::CoreStrength;
    use std::time::Duration;

    fn result(seed: u64, found: bool) -> CampaignResult {
        CampaignResult {
            generator: GeneratorKind::McVerSiRand,
            bug: None,
            model: ModelKind::Tso,
            core: CoreStrength::Strong,
            seed,
            found,
            detail: found.then(|| "MCM violation of axiom 'ghb'".to_string()),
            test_runs: 5,
            found_at_run: found.then_some(5),
            simulated_cycles: 1234,
            wall_time: Duration::from_millis(10),
            max_total_coverage: 0.25,
            final_mean_ndt: 1.5,
            pruned: 0,
            metrics: None,
            dedup: None,
        }
    }

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::SampleStart { seed: 7, index: 0 },
            CampaignEvent::TestRun {
                seed: 7,
                run: 1,
                found: false,
                fitness: 0.5,
                cycles: 100,
            },
            CampaignEvent::Violation {
                seed: 7,
                run: 2,
                detail: "MCM violation of axiom 'ghb'".to_string(),
            },
            CampaignEvent::SampleDone {
                result: result(7, true),
            },
            CampaignEvent::SamplePanic {
                seed: 8,
                message: "boom".to_string(),
            },
            CampaignEvent::Metrics {
                seed: 7,
                run: 2,
                snapshot: {
                    let mut snapshot = MetricsSnapshot::default();
                    snapshot.counters.insert("sim.l1.hit".to_string(), 11);
                    snapshot
                },
            },
        ]
    }

    #[test]
    fn collect_sink_gathers_sample_results() {
        let mut sink = CollectSink::new();
        for event in sample_events() {
            sink.on_event(&event);
        }
        assert_eq!(sink.results().len(), 1);
        assert_eq!(sink.into_results()[0].seed, 7);
    }

    #[test]
    fn jsonl_sink_emits_one_valid_json_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        for event in &events {
            sink.on_event(event);
        }
        // One line per event, plus the lazily written schema header.
        assert_eq!(sink.lines(), events.len() as u64 + 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len() + 1);
        for line in &lines {
            let value = serde_json::value_from_str(line)
                .unwrap_or_else(|e| panic!("invalid JSONL line `{line}`: {e}"));
            assert!(value.as_object().is_some(), "events render as objects");
        }
        // The stream starts with the schema header and round-trips back into
        // events.
        let header: CampaignEvent = serde_json::from_str(lines[0]).unwrap();
        assert!(matches!(
            header,
            CampaignEvent::Schema {
                version: EVENT_SCHEMA_VERSION
            }
        ));
        let first: CampaignEvent = serde_json::from_str(lines[1]).unwrap();
        assert!(matches!(
            first,
            CampaignEvent::SampleStart { seed: 7, index: 0 }
        ));
        let done: CampaignEvent = serde_json::from_str(lines[4]).unwrap();
        match done {
            CampaignEvent::SampleDone { result } => {
                assert_eq!(result.seed, 7);
                assert!(result.found);
            }
            other => panic!("expected SampleDone, got {other:?}"),
        }
        let metrics: CampaignEvent = serde_json::from_str(lines[6]).unwrap();
        match metrics {
            CampaignEvent::Metrics {
                seed,
                run,
                snapshot,
            } => {
                assert_eq!((seed, run), (7, 2));
                assert_eq!(snapshot.counters["sim.l1.hit"], 11);
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_sink_writes_the_schema_header_exactly_once() {
        let mut sink = JsonlSink::new(Vec::new());
        for event in sample_events().iter().take(2) {
            sink.on_event(event);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let headers = text
            .lines()
            .filter(|line| line.contains("\"Schema\""))
            .count();
        assert_eq!(headers, 1);
        assert!(text.lines().next().unwrap().contains("\"Schema\""));
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_and_on_into_inner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// Counts `flush` calls so the test can observe the drop-time flush.
        struct FlushProbe(Arc<AtomicUsize>);
        impl Write for FlushProbe {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushes = Arc::new(AtomicUsize::new(0));
        {
            let mut sink = JsonlSink::new(FlushProbe(Arc::clone(&flushes)));
            sink.on_event(&sample_events()[0]);
            assert_eq!(flushes.load(Ordering::SeqCst), 1, "one flush per event");
        }
        assert_eq!(
            flushes.load(Ordering::SeqCst),
            2,
            "dropping the sink flushes the writer once more"
        );

        // `into_inner` flushes too, and taking the writer out means the
        // subsequent drop of the (now writer-less) sink cannot flush again.
        let probe = JsonlSink::new(FlushProbe(Arc::clone(&flushes))).into_inner();
        assert_eq!(flushes.load(Ordering::SeqCst), 3);
        drop(probe);
        assert_eq!(flushes.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn progress_sink_reports_lifecycle_lines() {
        let mut out = Vec::new();
        {
            let mut sink = ProgressSink::new(&mut out).with_prefix("[cell]");
            for event in sample_events() {
                sink.on_event(&event);
            }
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[cell] sample #0 (seed 7) started"));
        assert!(text.contains("FOUND at run 5"));
        assert!(text.contains("MCM violation"));
        assert!(text.contains("PANICKED: boom"));
    }

    #[test]
    fn tuple_sink_fans_out_to_both() {
        let mut pair = (CollectSink::new(), JsonlSink::new(Vec::new()));
        for event in sample_events() {
            pair.on_event(&event);
        }
        assert_eq!(pair.0.results().len(), 1);
        // Six events plus the JSONL schema header.
        assert_eq!(pair.1.lines(), 7);
    }

    #[test]
    fn progress_sink_reports_rolling_runs_per_sec() {
        let mut out = Vec::new();
        {
            let mut sink = ProgressSink::new(&mut out);
            for run in 1..=(PROGRESS_RATE_EVERY as usize) {
                sink.on_event(&CampaignEvent::TestRun {
                    seed: 7,
                    run,
                    found: false,
                    fitness: 0.5,
                    cycles: 100,
                });
            }
        }
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains(&format!("{PROGRESS_RATE_EVERY} runs, ")) && text.contains(" runs/s"),
            "expected a rolling throughput line, got: {text}"
        );
    }
}
