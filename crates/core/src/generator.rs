//! The four test sources compared in the evaluation (§5.2).
//!
//! * `McVerSi-ALL` — GP with the selective crossover, coverage fitness;
//! * `McVerSi-Std.XO` — GP with standard single-point crossover; its fitness
//!   additionally mixes in the normalised NDT with equal weight (the paper's
//!   modification, since this crossover cannot exploit fit addresses);
//! * `McVerSi-RAND` — pseudo-random tests, no feedback;
//! * `diy-litmus` — the x86-TSO litmus suite executed in a round-robin outer
//!   loop, as in §5.2.2.
//!
//! All four share the simulation-specific optimisations (host interface,
//! checker, short tests); only test *generation* differs — exactly the
//! comparison the paper makes.

use crate::runner::TestRunResult;
use mcversi_mcm::ModelKind;
use mcversi_testgen::gp::TestId;
use mcversi_testgen::litmus::{self, LitmusTest};
use mcversi_testgen::{
    CrossoverMode, Evaluation, GpEngine, RandomTestGenerator, Test, TestGenParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which test generation approach to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// GP with selective crossover and coverage fitness (the full proposal).
    McVerSiAll,
    /// GP with standard single-point crossover (naive GP baseline).
    McVerSiStdXo,
    /// Pseudo-random test generation (no feedback).
    McVerSiRand,
    /// The diy-generated x86-TSO litmus suite.
    DiyLitmus,
}

impl GeneratorKind {
    /// All generator kinds, in the order of the paper's tables.
    pub const ALL: [GeneratorKind; 4] = [
        GeneratorKind::McVerSiAll,
        GeneratorKind::McVerSiStdXo,
        GeneratorKind::McVerSiRand,
        GeneratorKind::DiyLitmus,
    ];

    /// The display name used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            GeneratorKind::McVerSiAll => "McVerSi-ALL",
            GeneratorKind::McVerSiStdXo => "McVerSi-Std.XO",
            GeneratorKind::McVerSiRand => "McVerSi-RAND",
            GeneratorKind::DiyLitmus => "diy-litmus",
        }
    }

    /// Returns `true` for the generators that keep internal state and improve
    /// over time (the GP-based ones); the stateless ones are the subject of
    /// the paper's "10 days" extrapolation (Table 5).
    pub fn is_stateful(self) -> bool {
        matches!(
            self,
            GeneratorKind::McVerSiAll | GeneratorKind::McVerSiStdXo
        )
    }
}

impl fmt::Display for GeneratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

enum SourceState {
    Gp(Box<GpEngine>),
    Random(RandomTestGenerator),
    Litmus {
        suite: std::sync::Arc<Vec<LitmusTest>>,
        next: usize,
    },
}

impl fmt::Debug for SourceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceState::Gp(_) => f.write_str("Gp(..)"),
            SourceState::Random(_) => f.write_str("Random(..)"),
            SourceState::Litmus { next, suite } => {
                write!(f, "Litmus {{ next: {next}, suite: {} tests }}", suite.len())
            }
        }
    }
}

/// A stream of tests with optional evaluation feedback.
#[derive(Debug)]
pub struct TestSource {
    kind: GeneratorKind,
    state: SourceState,
    rng: StdRng,
    produced: u64,
    litmus_target_size: usize,
}

impl TestSource {
    /// Creates a test source of the given kind, with the x86-TSO litmus suite
    /// for the litmus baseline.
    pub fn new(kind: GeneratorKind, params: TestGenParams, seed: u64) -> Self {
        Self::for_model(kind, params, seed, ModelKind::Tso)
    }

    /// Creates a test source tuned to a target model: the litmus baseline
    /// uses the model's default suite (weak-model shapes with the appropriate
    /// fence/dependency flavours when the model is relaxed).
    pub fn for_model(
        kind: GeneratorKind,
        params: TestGenParams,
        seed: u64,
        model: ModelKind,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = match kind {
            GeneratorKind::McVerSiAll => SourceState::Gp(Box::new(GpEngine::new(
                params.clone(),
                CrossoverMode::Selective,
                &mut rng,
            ))),
            GeneratorKind::McVerSiStdXo => SourceState::Gp(Box::new(GpEngine::new(
                params.clone(),
                CrossoverMode::SinglePoint,
                &mut rng,
            ))),
            GeneratorKind::McVerSiRand => {
                SourceState::Random(RandomTestGenerator::new(params.clone()))
            }
            GeneratorKind::DiyLitmus => {
                // Three well-separated locations from the test memory; the
                // shape set follows the target model and the configured
                // corpus (`params.litmus`, the `MCVERSI_LITMUS` axis).
                let slots = params.all_slot_addresses();
                let pick = |i: usize| slots[i * slots.len() / 3].to_owned();
                let locations = [pick(0), pick(1), pick(2)];
                let suite = match params.litmus.bounds() {
                    None => std::sync::Arc::new(litmus::handpicked_suite_for(model, &locations)),
                    // Shared per (model, bounds, locations): samples of one
                    // campaign re-use a single lowered corpus.
                    Some(bounds) => litmus::shared_suite_for_bounded(model, &locations, &bounds),
                };
                SourceState::Litmus { suite, next: 0 }
            }
        };
        TestSource {
            kind,
            state,
            rng,
            produced: 0,
            litmus_target_size: params.test_size,
        }
    }

    /// The generator kind.
    pub fn kind(&self) -> GeneratorKind {
        self.kind
    }

    /// Number of tests produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Mean NDT of the GP population (0 for stateless sources); used for the
    /// §6.1 analysis of how test suitability evolves.
    pub fn population_mean_ndt(&self) -> f64 {
        match &self.state {
            SourceState::Gp(engine) => engine.mean_ndt(),
            _ => 0.0,
        }
    }

    /// Produces the next test to run.  The returned name is the litmus-test
    /// name where applicable, and the id must be passed back to
    /// [`feedback`](Self::feedback) for the GP-based sources.
    pub fn next_test(&mut self) -> (Option<TestId>, Test, Option<String>) {
        self.produced += 1;
        match &mut self.state {
            SourceState::Gp(engine) => {
                let (id, test) = engine.propose(&mut self.rng);
                (Some(id), test, None)
            }
            SourceState::Random(gen) => (None, gen.generate(&mut self.rng), None),
            SourceState::Litmus { suite, next } => {
                let t = &suite[*next % suite.len()];
                *next += 1;
                // Scale the short shape up to roughly the configured test size
                // by repeating its body, mirroring diy's in-test iteration
                // count (its `-s` parameter).
                let repeat = (self.litmus_target_size / t.test.len().max(1)).max(1);
                (
                    None,
                    litmus::repeat_test(&t.test, repeat),
                    Some(t.name.clone()),
                )
            }
        }
    }

    /// Feeds back the result of running a previously produced test.
    ///
    /// For `McVerSi-ALL` the fitness is the adaptive coverage; for
    /// `McVerSi-Std.XO` it is the equal-weight mix of coverage and normalised
    /// NDT; the stateless sources ignore feedback.
    pub fn feedback(&mut self, id: Option<TestId>, result: &TestRunResult) {
        let SourceState::Gp(engine) = &mut self.state else {
            return;
        };
        let Some(id) = id else { return };
        let fitness = match self.kind {
            GeneratorKind::McVerSiStdXo => {
                // Equal weighting of coverage and normalised NDT (§5.2.1).
                let norm_ndt = ((result.analysis.ndt - 1.0).max(0.0) / 3.0).min(1.0);
                0.5 * result.fitness + 0.5 * norm_ndt
            }
            _ => result.fitness,
        };
        engine.report(
            id,
            Evaluation {
                fitness,
                analysis: result.analysis.clone(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunVerdict;
    use mcversi_testgen::NdtAnalysis;
    use std::collections::BTreeSet;

    fn dummy_result(fitness: f64, ndt: f64) -> TestRunResult {
        let mut analysis = NdtAnalysis::empty();
        analysis.ndt = ndt;
        TestRunResult {
            verdict: RunVerdict::Passed,
            fitness,
            analysis,
            covered: BTreeSet::new(),
            iterations_run: 1,
            cycles: 100,
            retired_ops: 10,
        }
    }

    #[test]
    fn names_and_statefulness() {
        assert_eq!(GeneratorKind::McVerSiAll.paper_name(), "McVerSi-ALL");
        assert_eq!(GeneratorKind::DiyLitmus.paper_name(), "diy-litmus");
        assert!(GeneratorKind::McVerSiAll.is_stateful());
        assert!(GeneratorKind::McVerSiStdXo.is_stateful());
        assert!(!GeneratorKind::McVerSiRand.is_stateful());
        assert!(!GeneratorKind::DiyLitmus.is_stateful());
        assert_eq!(GeneratorKind::ALL.len(), 4);
    }

    #[test]
    fn every_source_produces_tests_of_the_right_shape() {
        let params = TestGenParams::small();
        for kind in GeneratorKind::ALL {
            let mut source = TestSource::new(kind, params.clone(), 7);
            for _ in 0..3 {
                let (id, test, name) = source.next_test();
                assert!(test.num_threads() <= params.num_threads.max(4));
                assert!(!test.is_empty());
                match kind {
                    GeneratorKind::McVerSiAll | GeneratorKind::McVerSiStdXo => {
                        assert!(id.is_some());
                        assert!(name.is_none());
                        assert_eq!(test.len(), params.test_size);
                    }
                    GeneratorKind::McVerSiRand => {
                        assert!(id.is_none());
                        assert_eq!(test.len(), params.test_size);
                    }
                    GeneratorKind::DiyLitmus => {
                        assert!(id.is_none());
                        assert!(name.is_some());
                    }
                }
                source.feedback(id, &dummy_result(0.4, 1.5));
            }
            assert_eq!(source.produced(), 3);
            assert_eq!(source.kind(), kind);
        }
    }

    #[test]
    fn litmus_source_cycles_through_the_suite() {
        let params = TestGenParams::small();
        let mut source = TestSource::new(GeneratorKind::DiyLitmus, params, 1);
        let suite_len = mcversi_testgen::litmus::default_suite_for(ModelKind::Tso).len();
        let mut names = Vec::new();
        for _ in 0..suite_len + 2 {
            let (_, _, name) = source.next_test();
            names.push(name.unwrap());
        }
        // After exhausting the suite it wraps around (the paper's outer loop).
        assert_eq!(names[0], names[suite_len]);
        assert_eq!(names[1], names[suite_len + 1]);
    }

    #[test]
    fn litmus_source_honours_the_corpus_axis() {
        use mcversi_testgen::LitmusCorpus;
        let mut handpicked = TestGenParams::small();
        handpicked.litmus = LitmusCorpus::Handpicked;
        let mut source = TestSource::new(GeneratorKind::DiyLitmus, handpicked, 1);
        let (_, _, name) = source.next_test();
        // The hand-picked x86 suite leads with the classic SB shape …
        assert_eq!(name.as_deref(), Some("SB"));

        let mut toy = TestGenParams::small();
        toy.litmus = LitmusCorpus::Enumerated {
            max_threads: 2,
            max_edges: 4,
        };
        let mut source = TestSource::new(GeneratorKind::DiyLitmus, toy, 1);
        let (_, _, name) = source.next_test();
        // … while the enumerated suites lead with the coherence anchors.
        assert_eq!(name.as_deref(), Some("CoRR"));
    }

    #[test]
    fn gp_sources_accept_feedback_and_keep_breeding() {
        let params = TestGenParams::small();
        for kind in [GeneratorKind::McVerSiAll, GeneratorKind::McVerSiStdXo] {
            let mut source = TestSource::new(kind, params.clone(), 3);
            for i in 0..params.population_size + 10 {
                let (id, _test, _) = source.next_test();
                source.feedback(
                    id,
                    &dummy_result(0.1 + (i as f64) * 0.01, 1.0 + i as f64 * 0.1),
                );
            }
            assert!(source.population_mean_ndt() > 0.0);
        }
    }
}
