//! Top-level framework configuration.

use crate::coverage::AdaptiveCoverageConfig;
use mcversi_mcm::ModelKind;
use mcversi_sim::SystemConfig;
use mcversi_testgen::TestGenParams;
use serde::{Deserialize, Serialize};

/// Configuration of one McVerSi verification run: the simulated system, the
/// test generation parameters, the adaptive-coverage fitness parameters and
/// the target consistency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McVerSiConfig {
    /// The simulated system (paper Table 2).
    pub system: SystemConfig,
    /// Test generation and GP parameters (paper Table 3).
    pub testgen: TestGenParams,
    /// Adaptive coverage fitness parameters (paper §3.2).
    pub adaptive: AdaptiveCoverageConfig,
    /// The target memory consistency model the checker verifies against
    /// (x86-TSO in the paper's evaluation; the relaxed models enable
    /// cross-model campaigns).
    pub model: ModelKind,
    /// RNG seed (each sample of an experiment uses a different seed for both
    /// simulation and test generation, as in §5.1).
    pub seed: u64,
}

impl McVerSiConfig {
    /// The paper's configuration: 8-core system, 1k-operation tests, the given
    /// test memory size.
    pub fn paper_default(test_memory_bytes: u64) -> Self {
        let system = SystemConfig::paper_default();
        let testgen =
            TestGenParams::paper_default(test_memory_bytes).with_threads(system.num_cores);
        McVerSiConfig {
            system,
            testgen,
            adaptive: AdaptiveCoverageConfig::default(),
            model: ModelKind::Tso,
            seed: 1,
        }
    }

    /// A scaled-down configuration suitable for unit tests, examples and CI:
    /// 4 cores, small caches, short tests.  The *structure* of the flow is
    /// identical to the paper configuration; only sizes and budgets shrink.
    pub fn small() -> Self {
        let system = SystemConfig::small(mcversi_sim::ProtocolKind::Mesi);
        let testgen = TestGenParams::small().with_threads(system.num_cores);
        McVerSiConfig {
            system,
            testgen,
            adaptive: AdaptiveCoverageConfig::default(),
            model: ModelKind::Tso,
            seed: 1,
        }
    }

    /// Retargets the configuration at a consistency model, following the
    /// same bias policy as [`crate::ScenarioSpec::testgen`]: relaxed targets
    /// get the relaxed operation mix (dependency-carrying ops and weak fence
    /// flavours with non-zero weight), strong targets the paper's Table 3
    /// mix — unless the caller already customised the bias, which is never
    /// touched.
    ///
    /// This is *not* a sweep-cell builder (the deleted
    /// `with_model`/`with_core_strength`/`with_protocol` shims were; cells
    /// are described declaratively with [`crate::ScenarioSpec`]); it exists
    /// for in-process retargeting of an existing configuration, e.g. in
    /// differential tests.
    pub fn retarget(mut self, model: ModelKind) -> Self {
        use mcversi_testgen::OperationBias;
        if model.is_relaxed() && self.testgen.bias == OperationBias::paper_default() {
            self.testgen.bias = OperationBias::relaxed_default();
        } else if !model.is_relaxed() && self.testgen.bias == OperationBias::relaxed_default() {
            self.testgen.bias = OperationBias::paper_default();
        }
        self.model = model;
        self
    }

    /// Replaces the RNG seed, returning a modified copy.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the test size, returning a modified copy.
    pub fn with_test_size(mut self, size: usize) -> Self {
        self.testgen.test_size = size;
        self
    }

    /// Replaces the per-test-run iteration count, returning a modified copy.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.testgen.iterations = iterations;
        self
    }
}

impl Default for McVerSiConfig {
    fn default() -> Self {
        McVerSiConfig::paper_default(8 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_sim::ProtocolKind;

    #[test]
    fn paper_default_wires_thread_count_to_core_count() {
        let cfg = McVerSiConfig::paper_default(1024);
        assert_eq!(cfg.testgen.num_threads, cfg.system.num_cores);
        assert_eq!(cfg.testgen.test_memory_bytes, 1024);
    }

    #[test]
    fn retarget_bias_swap_is_symmetric() {
        use mcversi_mcm::ModelKind;
        use mcversi_testgen::OperationBias;
        let cfg = McVerSiConfig::small().retarget(ModelKind::Armish);
        assert_eq!(cfg.testgen.bias, OperationBias::relaxed_default());
        let back = cfg.retarget(ModelKind::Tso);
        assert_eq!(
            back.testgen.bias,
            OperationBias::paper_default(),
            "retargeting to TSO must restore the Table 3 mix"
        );
        // A customised bias is never touched in either direction.
        let mut custom = McVerSiConfig::small();
        custom.testgen.bias.read = 60;
        let custom = custom.retarget(ModelKind::Rmo).retarget(ModelKind::Sc);
        assert_eq!(custom.testgen.bias.read, 60);
    }

    #[test]
    fn builders_modify_copies() {
        let mut cfg = McVerSiConfig::small()
            .with_seed(42)
            .with_test_size(64)
            .with_iterations(3);
        cfg.system.protocol = ProtocolKind::TsoCc;
        assert_eq!(cfg.system.protocol, ProtocolKind::TsoCc);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.testgen.test_size, 64);
        assert_eq!(cfg.testgen.iterations, 3);
    }
}
