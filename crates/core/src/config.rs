//! Top-level framework configuration.

use crate::coverage::AdaptiveCoverageConfig;
use mcversi_mcm::ModelKind;
use mcversi_sim::SystemConfig;
use mcversi_testgen::TestGenParams;
use serde::{Deserialize, Serialize};

/// Configuration of one McVerSi verification run: the simulated system, the
/// test generation parameters, the adaptive-coverage fitness parameters and
/// the target consistency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McVerSiConfig {
    /// The simulated system (paper Table 2).
    pub system: SystemConfig,
    /// Test generation and GP parameters (paper Table 3).
    pub testgen: TestGenParams,
    /// Adaptive coverage fitness parameters (paper §3.2).
    pub adaptive: AdaptiveCoverageConfig,
    /// The target memory consistency model the checker verifies against
    /// (x86-TSO in the paper's evaluation; the relaxed models enable
    /// cross-model campaigns).
    pub model: ModelKind,
    /// RNG seed (each sample of an experiment uses a different seed for both
    /// simulation and test generation, as in §5.1).
    pub seed: u64,
}

impl McVerSiConfig {
    /// The paper's configuration: 8-core system, 1k-operation tests, the given
    /// test memory size.
    pub fn paper_default(test_memory_bytes: u64) -> Self {
        let system = SystemConfig::paper_default();
        let testgen =
            TestGenParams::paper_default(test_memory_bytes).with_threads(system.num_cores);
        McVerSiConfig {
            system,
            testgen,
            adaptive: AdaptiveCoverageConfig::default(),
            model: ModelKind::Tso,
            seed: 1,
        }
    }

    /// A scaled-down configuration suitable for unit tests, examples and CI:
    /// 4 cores, small caches, short tests.  The *structure* of the flow is
    /// identical to the paper configuration; only sizes and budgets shrink.
    pub fn small() -> Self {
        let system = SystemConfig::small(mcversi_sim::ProtocolKind::Mesi);
        let testgen = TestGenParams::small().with_threads(system.num_cores);
        McVerSiConfig {
            system,
            testgen,
            adaptive: AdaptiveCoverageConfig::default(),
            model: ModelKind::Tso,
            seed: 1,
        }
    }

    /// Replaces the protocol of the simulated system, returning a modified copy.
    #[deprecated(
        since = "0.5.0",
        note = "describe the cell declaratively with `crate::ScenarioSpec` instead"
    )]
    pub fn with_protocol(mut self, protocol: mcversi_sim::ProtocolKind) -> Self {
        self.system.protocol = protocol;
        self
    }

    /// Replaces the pipeline strength of the simulated cores, returning a
    /// modified copy.
    ///
    /// Campaigns pairing a relaxed core with a *stronger* target model
    /// (SC/TSO) flag the correct design itself — the hardware reorders more
    /// than the model admits — so relaxed cores are normally paired with the
    /// dependency-ordered models (ARMish/POWERish/RMO).
    #[deprecated(
        since = "0.5.0",
        note = "describe the cell declaratively with `crate::ScenarioSpec` instead"
    )]
    pub fn with_core_strength(mut self, strength: mcversi_sim::CoreStrength) -> Self {
        self.system.core_strength = strength;
        self
    }

    /// Replaces the target consistency model, returning a modified copy.
    ///
    /// The operation bias follows the target unless the caller customised it:
    /// relaxed targets get the relaxed mix (dependency-carrying ops and weak
    /// fence flavours with non-zero weight), strong targets get the paper's
    /// Table 3 mix back — so retargeting is symmetric and a TSO campaign
    /// never silently keeps a relaxed bias.  (The declarative path derives
    /// the bias from [`crate::ScenarioSpec::testgen`] instead.)
    #[deprecated(
        since = "0.5.0",
        note = "describe the cell declaratively with `crate::ScenarioSpec` instead"
    )]
    pub fn with_model(mut self, model: ModelKind) -> Self {
        use mcversi_testgen::OperationBias;
        if model.is_relaxed() && self.testgen.bias == OperationBias::paper_default() {
            self.testgen.bias = OperationBias::relaxed_default();
        } else if !model.is_relaxed() && self.testgen.bias == OperationBias::relaxed_default() {
            self.testgen.bias = OperationBias::paper_default();
        }
        self.model = model;
        self
    }

    /// Replaces the RNG seed, returning a modified copy.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the test size, returning a modified copy.
    pub fn with_test_size(mut self, size: usize) -> Self {
        self.testgen.test_size = size;
        self
    }

    /// Replaces the per-test-run iteration count, returning a modified copy.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.testgen.iterations = iterations;
        self
    }
}

impl Default for McVerSiConfig {
    fn default() -> Self {
        McVerSiConfig::paper_default(8 * 1024)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shims stay covered until their removal.
    #![allow(deprecated)]

    use super::*;
    use mcversi_sim::ProtocolKind;

    #[test]
    fn paper_default_wires_thread_count_to_core_count() {
        let cfg = McVerSiConfig::paper_default(1024);
        assert_eq!(cfg.testgen.num_threads, cfg.system.num_cores);
        assert_eq!(cfg.testgen.test_memory_bytes, 1024);
    }

    #[test]
    fn with_model_bias_swap_is_symmetric() {
        use mcversi_mcm::ModelKind;
        use mcversi_testgen::OperationBias;
        let cfg = McVerSiConfig::small().with_model(ModelKind::Armish);
        assert_eq!(cfg.testgen.bias, OperationBias::relaxed_default());
        let back = cfg.with_model(ModelKind::Tso);
        assert_eq!(
            back.testgen.bias,
            OperationBias::paper_default(),
            "retargeting to TSO must restore the Table 3 mix"
        );
        // A customised bias is never touched in either direction.
        let mut custom = McVerSiConfig::small();
        custom.testgen.bias.read = 60;
        let custom = custom.with_model(ModelKind::Rmo).with_model(ModelKind::Sc);
        assert_eq!(custom.testgen.bias.read, 60);
    }

    #[test]
    fn builders_modify_copies() {
        let cfg = McVerSiConfig::small()
            .with_protocol(ProtocolKind::TsoCc)
            .with_seed(42)
            .with_test_size(64)
            .with_iterations(3);
        assert_eq!(cfg.system.protocol, ProtocolKind::TsoCc);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.testgen.test_size, 64);
        assert_eq!(cfg.testgen.iterations, 3);
    }
}
