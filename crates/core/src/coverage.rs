//! Adaptive structural-coverage fitness (paper §3.2).
//!
//! The GP fitness of a test-run is the fraction of *rare* protocol transitions
//! it covered.  "Rare" is defined against the whole simulation's cumulative
//! transition counts: transitions whose count is below the current cut-off.
//! When the fitness stays below a threshold for too many consecutive test
//! evaluations, the cut-off doubles (the verification goals change over time),
//! which keeps the population from getting stuck in a local maximum once the
//! easy transitions are saturated.

use mcversi_sim::{CoverageRecorder, Transition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters of the adaptive coverage computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCoverageConfig {
    /// Initial cut-off: transitions with fewer cumulative occurrences than
    /// this are considered rare.
    pub initial_cutoff: u64,
    /// Fitness below this value counts towards the low-coverage streak.
    pub low_fitness_threshold: f64,
    /// Number of consecutive low-fitness evaluations after which the cut-off
    /// doubles.
    pub low_streak_limit: usize,
}

impl Default for AdaptiveCoverageConfig {
    fn default() -> Self {
        AdaptiveCoverageConfig {
            initial_cutoff: 8,
            low_fitness_threshold: 0.05,
            low_streak_limit: 20,
        }
    }
}

/// The adaptive coverage state for one campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveCoverage {
    config: AdaptiveCoverageConfig,
    cutoff: u64,
    low_streak: usize,
    evaluations: u64,
    cutoff_doublings: u32,
}

impl AdaptiveCoverage {
    /// Creates the adaptive coverage state.
    pub fn new(config: AdaptiveCoverageConfig) -> Self {
        AdaptiveCoverage {
            cutoff: config.initial_cutoff.max(1),
            low_streak: 0,
            evaluations: 0,
            cutoff_doublings: 0,
            config,
        }
    }

    /// The current rarity cut-off.
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// How many times the cut-off has been doubled.
    pub fn cutoff_doublings(&self) -> u32 {
        self.cutoff_doublings
    }

    /// Number of test evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Computes the fitness of one test-run.
    ///
    /// `run` is the set of transitions the test-run covered, `recorder` holds
    /// the cumulative counts since simulation start, and `universe` is the set
    /// of transitions defined by the protocol implementation.
    pub fn fitness(
        &mut self,
        run: &BTreeSet<Transition>,
        recorder: &CoverageRecorder,
        universe: &[Transition],
    ) -> f64 {
        self.evaluations += 1;
        let rare: Vec<Transition> = universe
            .iter()
            .copied()
            .filter(|t| recorder.count(*t) < self.cutoff)
            .collect();
        let fitness = if rare.is_empty() {
            0.0
        } else {
            let covered = rare.iter().filter(|t| run.contains(t)).count();
            covered as f64 / rare.len() as f64
        };
        if fitness < self.config.low_fitness_threshold || rare.is_empty() {
            self.low_streak += 1;
            if self.low_streak >= self.config.low_streak_limit {
                self.cutoff = self.cutoff.saturating_mul(2);
                self.cutoff_doublings += 1;
                self.low_streak = 0;
            }
        } else {
            self.low_streak = 0;
        }
        fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Vec<Transition> {
        vec![
            Transition::l1("I", "Load"),
            Transition::l1("S", "Inv"),
            Transition::l2("NP", "GetS"),
            Transition::l2("MT", "PutX"),
        ]
    }

    #[test]
    fn fitness_is_fraction_of_rare_transitions_covered() {
        let mut ac = AdaptiveCoverage::new(AdaptiveCoverageConfig::default());
        let recorder = CoverageRecorder::new();
        let run: BTreeSet<Transition> = [Transition::l1("I", "Load"), Transition::l2("NP", "GetS")]
            .into_iter()
            .collect();
        let f = ac.fitness(&run, &recorder, &universe());
        assert!((f - 0.5).abs() < 1e-9);
        assert_eq!(ac.evaluations(), 1);
    }

    #[test]
    fn frequent_transitions_drop_out_of_the_rare_set() {
        let mut ac = AdaptiveCoverage::new(AdaptiveCoverageConfig {
            initial_cutoff: 2,
            ..AdaptiveCoverageConfig::default()
        });
        let mut recorder = CoverageRecorder::new();
        // Make "I + Load" frequent.
        for _ in 0..10 {
            recorder.record(Transition::l1("I", "Load"));
        }
        let run: BTreeSet<Transition> = [Transition::l1("I", "Load")].into_iter().collect();
        // The only transition the run covered is no longer rare, so fitness 0
        // over the remaining 3 rare transitions.
        let f = ac.fitness(&run, &recorder, &universe());
        assert_eq!(f, 0.0);
    }

    #[test]
    fn sustained_low_fitness_doubles_the_cutoff() {
        let cfg = AdaptiveCoverageConfig {
            initial_cutoff: 4,
            low_fitness_threshold: 0.5,
            low_streak_limit: 3,
        };
        let mut ac = AdaptiveCoverage::new(cfg);
        let recorder = CoverageRecorder::new();
        let empty_run = BTreeSet::new();
        assert_eq!(ac.cutoff(), 4);
        for _ in 0..3 {
            ac.fitness(&empty_run, &recorder, &universe());
        }
        assert_eq!(ac.cutoff(), 8, "cut-off doubles after the low streak");
        assert_eq!(ac.cutoff_doublings(), 1);
        // A good run resets the streak.
        let good: BTreeSet<Transition> = universe().into_iter().collect();
        ac.fitness(&good, &recorder, &universe());
        for _ in 0..2 {
            ac.fitness(&empty_run, &recorder, &universe());
        }
        assert_eq!(ac.cutoff(), 8, "streak was reset by the good run");
    }

    #[test]
    fn empty_universe_is_handled() {
        let mut ac = AdaptiveCoverage::new(AdaptiveCoverageConfig::default());
        let recorder = CoverageRecorder::new();
        let f = ac.fitness(&BTreeSet::new(), &recorder, &[]);
        assert_eq!(f, 0.0);
    }
}
