//! `mcversi-report`: renders campaign-event JSONL telemetry.
//!
//! Reads the JSONL a campaign wrote via `MCVERSI_JSONL` (with telemetry
//! enabled through `MCVERSI_METRICS`, see [`mcversi_core::ScenarioSpec`])
//! and prints per-phase wall-time attribution plus every counter and
//! histogram, aggregated across samples.  Several streams — e.g. one journal
//! per fabric worker — merge into one report; streams whose schema versions
//! differ are rejected.
//!
//! ```text
//! mcversi-report <events.jsonl> [more.jsonl ...]
//! mcversi-report -          # read a stream from stdin
//! ```
//!
//! Exit status: `0` on success, `1` when a stream cannot be read or parsed,
//! `2` on usage errors.

use mcversi_core::report::MetricsReport;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: mcversi-report <events.jsonl | -> [more.jsonl ...]");
        return ExitCode::from(2);
    }
    let mut texts = Vec::with_capacity(args.len());
    for path in &args {
        let text = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("mcversi-report: cannot read stdin: {e}");
                    return ExitCode::from(1);
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("mcversi-report: cannot read `{path}`: {e}");
                    return ExitCode::from(1);
                }
            }
        };
        texts.push(text);
    }
    let streams: Vec<&str> = texts.iter().map(String::as_str).collect();
    match MetricsReport::from_jsonl_streams(&streams) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mcversi-report: {e}");
            ExitCode::from(1)
        }
    }
}
