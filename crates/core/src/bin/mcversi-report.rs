//! `mcversi-report`: renders a campaign-event JSONL stream's telemetry.
//!
//! Reads the JSONL a campaign wrote via `MCVERSI_JSONL` (with telemetry
//! enabled through `MCVERSI_METRICS`, see [`mcversi_core::ScenarioSpec`])
//! and prints per-phase wall-time attribution plus every counter and
//! histogram, aggregated across samples.
//!
//! ```text
//! mcversi-report <events.jsonl>
//! mcversi-report -          # read the stream from stdin
//! ```
//!
//! Exit status: `0` on success, `1` when the stream cannot be read or
//! parsed, `2` on usage errors.

use mcversi_core::report::MetricsReport;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: mcversi-report <events.jsonl | ->");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("mcversi-report: cannot read stdin: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("mcversi-report: cannot read `{path}`: {e}");
                return ExitCode::from(1);
            }
        }
    };
    match MetricsReport::from_jsonl(&text) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mcversi-report: {e}");
            ExitCode::from(1)
        }
    }
}
