//! `mcversi-check`: conformance-check black-box trace files.
//!
//! Parses version-1 trace files (see the `mcversi_conformance::trace` wire
//! format), lowers them into candidate executions, infers the per-location
//! coherence order from the observed reads-from and final state, and runs
//! the selected checking flow — the same stack simulator-observed executions
//! flow through.
//!
//! ```text
//! mcversi-check [--json] [--model <name>] [--mode per_exec|collective|vc] <file...>
//! ```
//!
//! `-` reads a trace from stdin.  `--model` overrides the trace's own
//! `model` directive (default when neither is present: TSO).  `--json`
//! emits one JSON object per input file (JSONL) instead of prose.
//!
//! Exit status: `0` when every trace conforms, `1` when at least one trace
//! violates its model, `2` on usage, parse or I/O errors, `3` when at least
//! one verdict is undecided (the observations underdetermine the coherence
//! order).  Errors dominate violations dominate undecided.

use mcversi_conformance::{check_lowered, parse, AbstainReason, VcVerdict};
use mcversi_mcm::checker::Verdict;
use mcversi_mcm::signature::classify_execution;
use mcversi_mcm::{Checker, ModelKind};
use serde::Serialize;
use std::io::Read;
use std::process::ExitCode;

/// The checking flow applied to each trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Axiomatic checker on every trace.
    PerExec,
    /// Signature-oracle first, axiomatic checker on what it cannot certify.
    Collective,
    /// Vector-clock first pass, axiomatic checker on violation/abstention.
    Vc,
}

impl Mode {
    fn parse(raw: &str) -> Option<Mode> {
        match raw {
            "per_exec" => Some(Mode::PerExec),
            "collective" => Some(Mode::Collective),
            "vc" => Some(Mode::Vc),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Mode::PerExec => "per_exec",
            Mode::Collective => "collective",
            Mode::Vc => "vc",
        }
    }
}

/// One trace's outcome, as serialized in `--json` mode.
#[derive(Debug, Serialize)]
struct Report {
    /// Input file name (`-` for stdin).
    file: String,
    /// The model the trace was checked against.
    model: String,
    /// The checking flow that produced the verdict.
    mode: String,
    /// `valid`, `violation` or `undecided`.
    verdict: String,
    /// The violated axiom, when `verdict` is `violation`.
    axiom: Option<String>,
    /// The witness cycle's events, when one exists.
    witness: Vec<String>,
    /// Human-readable detail (undecided reason, fallback notes).
    detail: Option<String>,
    /// Whether the axiomatic checker ran (`false` = the first pass or the
    /// coherence inference alone decided).
    checker_ran: bool,
}

/// A verdict's contribution to the process exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Outcome {
    Valid,
    Undecided,
    Violation,
    Error,
}

impl Outcome {
    fn exit_code(self) -> ExitCode {
        match self {
            Outcome::Valid => ExitCode::SUCCESS,
            Outcome::Violation => ExitCode::from(1),
            Outcome::Error => ExitCode::from(2),
            Outcome::Undecided => ExitCode::from(3),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcversi-check [--json] [--model <sc|tso|armish|powerish|rmo>] \
         [--mode <per_exec|collective|vc>] <file...>\n\
         \x20  - reads a trace from stdin; exit 0 valid, 1 violation, 2 error, 3 undecided"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut model_override: Option<ModelKind> = None;
    let mut mode = Mode::Vc;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--model" => {
                let Some(model) = args.next().as_deref().and_then(ModelKind::parse) else {
                    eprintln!("mcversi-check: --model needs a model name");
                    return usage();
                };
                model_override = Some(model);
            }
            "--mode" => {
                let Some(parsed) = args.next().as_deref().and_then(Mode::parse) else {
                    eprintln!("mcversi-check: --mode needs per_exec, collective or vc");
                    return usage();
                };
                mode = parsed;
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with("--") => {
                eprintln!("mcversi-check: unknown option {other:?}");
                return usage();
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut worst = Outcome::Valid;
    for file in &files {
        let outcome = match read_input(file) {
            Ok(text) => check_one(file, &text, model_override, mode, json),
            Err(e) => {
                eprintln!("mcversi-check: {file}: {e}");
                Outcome::Error
            }
        };
        worst = worst.max(outcome);
    }
    worst.exit_code()
}

fn read_input(file: &str) -> Result<String, std::io::Error> {
    if file == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(file)
    }
}

/// Parses, lowers and checks one trace; prints its report.
fn check_one(
    file: &str,
    text: &str,
    model_override: Option<ModelKind>,
    mode: Mode,
    json: bool,
) -> Outcome {
    let program = match parse(text) {
        Ok(program) => program,
        Err(e) => {
            eprintln!("mcversi-check: {file}: {e}");
            return Outcome::Error;
        }
    };
    let model = model_override.or(program.model).unwrap_or(ModelKind::Tso);
    let lowered = match program.lower() {
        Ok(lowered) => lowered,
        Err(e) => {
            eprintln!("mcversi-check: {file}: {e}");
            return Outcome::Error;
        }
    };

    // The vector-clock front half always runs: it owns coherence inference,
    // and its verdict is final wherever no complete execution exists.
    let (vc_verdict, exec) = check_lowered(&lowered, model);
    let mut report = Report {
        file: file.to_string(),
        model: model.name().to_string(),
        mode: mode.as_str().to_string(),
        verdict: "undecided".to_string(),
        axiom: None,
        witness: Vec::new(),
        detail: None,
        checker_ran: false,
    };
    let outcome = match (&exec, mode) {
        (None, _) => settle_without_execution(&vc_verdict, &mut report),
        (Some(exec), Mode::Vc) => match &vc_verdict {
            VcVerdict::Valid => {
                report.verdict = "valid".to_string();
                Outcome::Valid
            }
            // Violation: rerun axiomatically for the authoritative witness.
            // Abstain: the first pass cannot decide this model/shape.
            VcVerdict::Violation(_) | VcVerdict::Abstain(_) => {
                report.detail = Some(format!("vc first pass: {vc_verdict}"));
                axiomatic(exec, model, &mut report)
            }
        },
        (Some(exec), Mode::PerExec) => axiomatic(exec, model, &mut report),
        (Some(exec), Mode::Collective) => {
            let oracle = classify_execution(exec, model);
            if oracle.certifies_valid() {
                report.verdict = "valid".to_string();
                report.detail = Some(format!("certified by the cycle oracle: {oracle:?}"));
                Outcome::Valid
            } else {
                axiomatic(exec, model, &mut report)
            }
        }
    };
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("reports serialize")
        );
    } else {
        let axiom = report
            .axiom
            .as_deref()
            .map(|a| format!(" ({a})"))
            .unwrap_or_default();
        let detail = report
            .detail
            .as_deref()
            .map(|d| format!(" — {d}"))
            .unwrap_or_default();
        println!(
            "{file}: {} under {} [{}]{axiom}{detail}",
            report.verdict, report.model, report.mode
        );
    }
    outcome
}

/// Settles a verdict the coherence inference produced without a complete
/// execution: contradictions and final-state mismatches are violations in
/// any mode; an underdetermined order is undecided in any mode (there is no
/// execution the axiomatic checker could refute).
fn settle_without_execution(vc_verdict: &VcVerdict, report: &mut Report) -> Outcome {
    match vc_verdict {
        VcVerdict::Violation(w) => {
            report.verdict = "violation".to_string();
            report.axiom = Some(w.axiom.to_string());
            report.witness = w.cycle.iter().map(|e| e.to_string()).collect();
            Outcome::Violation
        }
        VcVerdict::Abstain(reason) => {
            report.detail = Some(reason.to_string());
            match reason {
                AbstainReason::Malformed(_) => Outcome::Error,
                _ => Outcome::Undecided,
            }
        }
        VcVerdict::Valid => {
            report.verdict = "valid".to_string();
            Outcome::Valid
        }
    }
}

/// Runs the axiomatic checker and fills the report from its verdict.
fn axiomatic(
    exec: &mcversi_mcm::CandidateExecution,
    model: ModelKind,
    report: &mut Report,
) -> Outcome {
    report.checker_ran = true;
    match Checker::new(model.instance()).try_check(exec) {
        Ok(Verdict::Valid) => {
            report.verdict = "valid".to_string();
            Outcome::Valid
        }
        Ok(Verdict::Invalid(v)) => {
            report.verdict = "violation".to_string();
            report.axiom = Some(v.axiom.clone());
            report.witness = v.witness.iter().map(|e| e.to_string()).collect();
            Outcome::Violation
        }
        Err(e) => {
            report.detail = Some(format!("malformed execution: {e:?}"));
            Outcome::Error
        }
    }
}
