//! `mcversi-lint`: static analysis of test programs before any simulation.
//!
//! Runs the [`mcversi_analysis`] lint registry over a litmus corpus or over
//! the programs a [`ScenarioSpec`]'s random generator produces, and reports
//! [`Diagnostic`]s as human-readable lines or JSON (`--json`).
//!
//! ```text
//! mcversi-lint [--json] corpus <handpicked|enumerated[:<threads>x<edges>]>
//! mcversi-lint [--json] spec <path.json> [count]
//! ```
//!
//! Exit status: `0` when no error-severity diagnostic was produced, `1` when
//! at least one was, `2` on usage errors.  CI runs
//! `mcversi-lint corpus enumerated:2x4` and expects a clean exit — every
//! enumerated test is a conflict-bearing critical-cycle program, so an error
//! diagnostic there means either a corpus or a lint regression.

use mcversi_analysis::{run_lints, Diagnostic, Severity};
use mcversi_core::lowering::lower;
use mcversi_core::ScenarioSpec;
use mcversi_mcm::{Address, ModelKind};
use mcversi_sim::TestProgram;
use mcversi_testgen::{litmus, LitmusCorpus, RandomTestGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::process::ExitCode;

/// Four line-separated test-memory locations, enough for every corpus bound
/// (cycles of up to eight edges use at most four location classes).
const LOCATIONS: [Address; 4] = [
    Address(0x10_0000),
    Address(0x10_0040),
    Address(0x10_0080),
    Address(0x10_00c0),
];

/// One linted program's findings, as serialized in `--json` mode.
#[derive(Debug, Serialize)]
struct Report {
    /// Program name (litmus test name or `spec:<index>`).
    name: String,
    /// The diagnostics the lint registry produced.
    diagnostics: Vec<Diagnostic>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcversi-lint [--json] corpus <handpicked|enumerated[:<threads>x<edges>]>\n\
         \x20      mcversi-lint [--json] spec <path.json> [count]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.first().is_some_and(|a| a == "--json");
    if json {
        args.remove(0);
    }
    let programs = match args.first().map(String::as_str) {
        Some("corpus") => {
            let Some(corpus) = args.get(1).and_then(|raw| LitmusCorpus::parse(raw)) else {
                eprintln!(
                    "mcversi-lint: corpus mode needs `handpicked` or \
                     `enumerated[:<threads>x<edges>]`, got {:?}",
                    args.get(1).map(String::as_str).unwrap_or("")
                );
                return usage();
            };
            corpus_programs(corpus)
        }
        Some("spec") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let spec = match ScenarioSpec::from_json_file(path) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("mcversi-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let count = match args.get(2) {
                None => 10,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("mcversi-lint: invalid program count {raw:?}");
                        return usage();
                    }
                },
            };
            spec_programs(&spec, count)
        }
        _ => return usage(),
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (name, program) in &programs {
        let diagnostics = run_lints(program);
        errors += count(&diagnostics, Severity::Error);
        warnings += count(&diagnostics, Severity::Warning);
        if json {
            let report = Report {
                name: name.clone(),
                diagnostics,
            };
            println!(
                "{}",
                serde_json::to_string(&report).expect("reports serialize")
            );
        } else {
            for diagnostic in &diagnostics {
                println!("{name}: {diagnostic}");
            }
        }
    }
    if !json {
        eprintln!(
            "mcversi-lint: {} program(s), {errors} error(s), {warnings} warning(s)",
            programs.len()
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn count(diagnostics: &[Diagnostic], severity: Severity) -> usize {
    diagnostics
        .iter()
        .filter(|d| d.severity == severity)
        .count()
}

/// Lowers every test of the corpus.  The handpicked corpus is per-model;
/// lint the union over all models, deduplicated by name.
fn corpus_programs(corpus: LitmusCorpus) -> Vec<(String, TestProgram)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut programs = Vec::new();
    match corpus.bounds() {
        Some(bounds) => {
            for test in mcversi_testgen::enumerate::enumerate(&bounds).iter() {
                let litmus = test.litmus(&LOCATIONS);
                programs.push((litmus.name, lower(&litmus.test)));
            }
        }
        None => {
            for model in ModelKind::ALL {
                for test in litmus::handpicked_suite_for(model, &LOCATIONS[..3]) {
                    if seen.insert(test.name.clone()) {
                        programs.push((test.name, lower(&test.test)));
                    }
                }
            }
        }
    }
    programs
}

/// Generates `count` programs the way the spec's random generator would.
fn spec_programs(spec: &ScenarioSpec, count: usize) -> Vec<(String, TestProgram)> {
    let generator = RandomTestGenerator::new(spec.testgen());
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    (0..count)
        .map(|i| (format!("spec:{i}"), lower(&generator.generate(&mut rng))))
        .collect()
}
