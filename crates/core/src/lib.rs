//! The McVerSi framework: coverage-directed MCM test generation in simulation.
//!
//! This crate ties the three lower layers together into the verification flow
//! of the paper:
//!
//! * [`lowering`] turns a generated [`mcversi_testgen::Test`] into an
//!   executable [`mcversi_sim::TestProgram`] (the analogue of on-the-fly code
//!   emission to the target ISA), assigning globally unique write values;
//! * [`host`] is the guest–host interface of Table 1 and [`runner`] is the
//!   guest workload kernel of Algorithm 2: it executes a test-run (several
//!   iterations of one test), checks every iteration against the target MCM,
//!   and accumulates the observed conflict orders for the NDT analysis;
//! * [`coverage`] implements the adaptive structural-coverage fitness of
//!   §3.2 (rare-transition coverage with an exponentially increasing cut-off);
//! * [`generator`] wraps the four test sources compared in the evaluation
//!   (McVerSi-ALL, McVerSi-Std.XO, McVerSi-RAND, diy-litmus);
//! * [`scenario`] is the declarative campaign description: one serializable
//!   [`ScenarioSpec`] per sweep cell, [`ScenarioGrid`] for cartesian sweeps,
//!   and the consolidated `MCVERSI_*` environment parsing;
//! * [`campaign`] runs generator × bug verification campaigns and the
//!   coverage campaigns behind Tables 4, 5 and 6, streaming events through
//!   [`sink`] implementations; [`report`] renders them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod config;
pub mod coverage;
pub mod generator;
pub mod host;
pub mod lowering;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sink;

pub use campaign::{
    run_campaign, run_campaign_budgeted, run_campaign_observed, run_sample_subset, run_samples,
    run_samples_outcomes, run_samples_streamed, CampaignConfig, CampaignResult, SampleOutcome,
    StaticPrune, WallBudget,
};
pub use config::McVerSiConfig;
pub use coverage::{AdaptiveCoverage, AdaptiveCoverageConfig};
pub use generator::{GeneratorKind, TestSource};
pub use runner::{CheckingMode, DedupStats, RunVerdict, TestRunResult, TestRunner};
pub use scenario::{
    fabric_from_env, grid_from_env, FabricEnv, ScenarioGrid, ScenarioSpec, SeedPolicy, SpecError,
};
pub use sink::{CampaignEvent, CampaignSink, CollectSink, JsonlSink, NullSink, ProgressSink};

#[cfg(test)]
mod smoke {
    use crate::lowering::lower;
    use mcversi_testgen::{RandomTestGenerator, TestGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Crate-level smoke test: a generated test lowers to a valid program.
    #[test]
    fn program_build() {
        let params = TestGenParams::small().with_test_size(16).with_threads(2);
        let test = RandomTestGenerator::new(params).generate(&mut StdRng::seed_from_u64(1));
        let program = lower(&test);
        assert_eq!(program.total_ops(), 16);
        assert!(program.written_values_unique());
    }
}
