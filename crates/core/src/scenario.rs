//! Declarative campaign scenarios: [`ScenarioSpec`], [`ScenarioGrid`] and the
//! consolidated `MCVERSI_*` environment parsing.
//!
//! A [`ScenarioSpec`] is a complete, serializable description of *one cell*
//! of a verification sweep: which generator attacks which bug, under which
//! target model, on which simulated system (core count, pipeline strength,
//! protocol), with which budgets, corpus and seeds.  Everything the
//! framework needs to run the cell is derived from the spec
//! ([`ScenarioSpec::mcversi`], [`ScenarioSpec::campaign`]); the old
//! `with_model`/`with_core_strength`/`with_protocol` setter chains across
//! three config layers were deleted after their deprecation window — the
//! spec is the only sweep-cell description.
//!
//! A [`ScenarioGrid`] expands cartesian axes (generator columns × models ×
//! core strengths × protocols × bugs) around a base spec into the cell specs
//! of a whole sweep, with a deterministic per-cell [`SeedPolicy`].  The
//! experiment binaries build their sweeps exclusively through grids.
//!
//! # Environment variables
//!
//! All `MCVERSI_*` parsing lives here (the experiment binaries never read the
//! environment directly).  Scaled-down defaults keep the whole suite runnable
//! on one machine; the scale can be raised up to the paper's values:
//!
//! | Variable               | Meaning                                  | Default |
//! |------------------------|------------------------------------------|---------|
//! | `MCVERSI_SPEC`         | path of a JSON [`ScenarioSpec`] used as the base (see `examples/scenario.json`) | unset |
//! | `MCVERSI_SAMPLES`      | samples (seeds) per generator/bug pair   | 2       |
//! | `MCVERSI_TEST_RUNS`    | test-run budget per sample               | 60      |
//! | `MCVERSI_TEST_SIZE`    | operations per test                      | 96      |
//! | `MCVERSI_ITERATIONS`   | executions per test-run                  | 4       |
//! | `MCVERSI_CORES`        | core *count* (a number) and/or core *strengths* (`strong`/`relaxed`/`all`), comma-separated | 4, `strong` |
//! | `MCVERSI_WALL_SECS`    | wall-clock cap per sample (seconds)      | 120     |
//! | `MCVERSI_FULL`         | if set, use the paper-scale parameters   | unset   |
//! | `MCVERSI_MODELS`       | comma-separated target models, or `all`  | `SC,TSO,ARMish,RMO` |
//! | `MCVERSI_LITMUS`       | litmus corpus of the `diy-litmus` baseline: `handpicked` or `enumerated[:<threads>x<edges>]` | `enumerated:4x6` |
//! | `MCVERSI_JSONL`        | path; streams campaign events there as JSONL ([`crate::sink::JsonlSink`]) | unset |
//! | `MCVERSI_METRICS`      | telemetry: `off`, `sample` (final snapshot only), or a cadence `n` (also stream a snapshot every `n` test-runs) | unset (off) |
//! | `MCVERSI_CHECKING`     | execution checking mode: `per_exec` (check every iteration), `collective` (signature-deduplicated collective checking) or `vc` (vector-clock first pass, axiomatic fallback) | `per_exec` |
//! | `MCVERSI_FABRIC`       | worker child processes of the distributed fabric (`0` = run in-process) | unset   |
//! | `MCVERSI_JOURNAL`      | path of the fabric checkpoint journal; an existing journal is resumed | unset   |
//! | `MCVERSI_FABRIC_FAULT` | fault injected into the first worker dispatch (`kill-after:<n>`, `hang-after:<n>`, `corrupt-tail:<n>`; test/CI only) | unset   |
//! | `MCVERSI_FABRIC_RETRIES` | re-dispatch attempts per shard after a worker dies | 2       |
//!
//! `MCVERSI_CORES` mixes both axes of the core configuration: numeric parts
//! set the simulated core count, named parts select the pipeline strengths to
//! sweep (e.g. `MCVERSI_CORES=8,strong,relaxed` or just
//! `MCVERSI_CORES=strong,relaxed`).  An all-numeric value (`MCVERSI_CORES=8`)
//! leaves the strength axis untouched — the base spec's strength, a single
//! `strong` entry by default; unknown entries are skipped with a warning
//! that is emitted once per process.
//! When `MCVERSI_SPEC` is set, explicit scalar variables still override the
//! corresponding spec fields, and the spec's `model` / `core_strength`
//! become the sweep axes unless `MCVERSI_MODELS` / `MCVERSI_CORES` name
//! their own (see [`grid_from_env`]).

use crate::campaign::{CampaignConfig, StaticPrune};
use crate::config::McVerSiConfig;
use crate::generator::GeneratorKind;
use crate::runner::CheckingMode;
use mcversi_mcm::ModelKind;
use mcversi_sim::{Bug, CoreStrength, ProtocolKind, SystemConfig};
use mcversi_telemetry as telemetry;
use mcversi_testgen::{LitmusCorpus, OperationBias, TestGenParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Duration;

/// An error loading or interpreting a scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// A complete, serializable description of one verification-campaign cell.
///
/// The spec is deliberately *scalar*: it names the axes of the paper's
/// evaluation rather than embedding whole config structs, so a JSON spec
/// stays short, diffable and forward-compatible.  [`ScenarioSpec::mcversi`]
/// and [`ScenarioSpec::campaign`] derive the full configuration objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The test generator under evaluation.
    pub generator: GeneratorKind,
    /// The injected bug, or `None` for a correct-design (coverage) campaign.
    pub bug: Option<Bug>,
    /// The target consistency model the checker verifies against.
    pub model: ModelKind,
    /// Pipeline strength of the simulated cores.
    pub core_strength: CoreStrength,
    /// Number of simulated cores (and test threads).
    pub cores: usize,
    /// Cache coherence protocol (a bug's required protocol still overrides).
    pub protocol: ProtocolKind,
    /// Usable test memory in bytes (the paper evaluates 1 KB and 8 KB).
    pub test_memory_bytes: u64,
    /// Operations per test.
    pub test_size: usize,
    /// Executions per test-run.
    pub iterations: usize,
    /// Samples (seeds) per cell.
    pub samples: usize,
    /// Test-run budget per sample.
    pub max_test_runs: usize,
    /// Wall-clock cap per sample, in seconds.
    pub wall_secs: u64,
    /// Optional wall-clock budget shared by all samples of a batch.
    pub shared_wall_secs: Option<u64>,
    /// Worker threads for sample batches (`0` = one per hardware thread).
    pub parallelism: usize,
    /// Seed of the first sample (sample `i` runs with `base_seed + i`).
    pub base_seed: u64,
    /// Whether the full paper-scale system (Table 2) is the base; otherwise
    /// the scaled-down test system is used.
    pub full: bool,
    /// Litmus corpus of the `diy-litmus` baseline (`None` = the default
    /// enumerated corpus; see [`LitmusCorpus`] and `MCVERSI_LITMUS`).
    pub litmus: Option<LitmusCorpus>,
    /// Opt-in pre-simulation pruning of statically inert tests (`None` =
    /// [`StaticPrune::Off`]; see [`StaticPrune`] for the soundness caveat).
    pub prune: Option<StaticPrune>,
    /// Telemetry collection (`None` = off; `Some(0)` = final snapshot only;
    /// `Some(n)` = also stream a [`crate::sink::CampaignEvent::Metrics`]
    /// snapshot every `n` test-runs).  See `MCVERSI_METRICS`.
    pub metrics: Option<usize>,
    /// Execution checking mode (`None` = [`CheckingMode::PerExec`];
    /// serialized as `"per_exec"` / `"collective"` / `"vc"`).  See
    /// `MCVERSI_CHECKING`.
    pub checking: Option<CheckingMode>,
    /// Optional display label (defaults to the paper's column naming).
    pub label: Option<String>,
}

impl ScenarioSpec {
    /// The scaled-down default cell: the paper's structure at CI-friendly
    /// sizes (the old `Scale::from_env` defaults).
    pub fn small() -> Self {
        ScenarioSpec {
            generator: GeneratorKind::McVerSiRand,
            bug: None,
            model: ModelKind::Tso,
            core_strength: CoreStrength::Strong,
            cores: 4,
            protocol: ProtocolKind::Mesi,
            test_memory_bytes: 8 * 1024,
            test_size: 96,
            iterations: 4,
            samples: 2,
            max_test_runs: 60,
            wall_secs: 120,
            shared_wall_secs: None,
            parallelism: 0,
            base_seed: 1,
            full: false,
            litmus: None,
            prune: None,
            metrics: None,
            checking: None,
            label: None,
        }
    }

    /// The paper-scale cell (Tables 2 and 3; 24-hour per-sample budget).
    pub fn paper() -> Self {
        ScenarioSpec {
            cores: 8,
            test_size: 1000,
            iterations: 10,
            samples: 10,
            max_test_runs: 2000,
            wall_secs: 24 * 3600,
            full: true,
            ..ScenarioSpec::small()
        }
    }

    // ---- chainable field updates (struct-update syntax works too) ----

    /// Replaces the generator, returning a modified copy.
    pub fn generator(mut self, generator: GeneratorKind) -> Self {
        self.generator = generator;
        self
    }

    /// Replaces the injected bug, returning a modified copy.
    pub fn bug(mut self, bug: Option<Bug>) -> Self {
        self.bug = bug;
        self
    }

    /// Replaces the target model, returning a modified copy.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Replaces the core pipeline strength, returning a modified copy.
    pub fn core_strength(mut self, strength: CoreStrength) -> Self {
        self.core_strength = strength;
        self
    }

    /// Replaces the protocol, returning a modified copy.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the test memory size, returning a modified copy.
    pub fn test_memory(mut self, bytes: u64) -> Self {
        self.test_memory_bytes = bytes;
        self
    }

    /// Replaces the base seed, returning a modified copy.
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Replaces the litmus corpus, returning a modified copy.
    pub fn litmus(mut self, corpus: LitmusCorpus) -> Self {
        self.litmus = Some(corpus);
        self
    }

    /// Replaces the prune mode, returning a modified copy.
    pub fn prune(mut self, prune: StaticPrune) -> Self {
        self.prune = Some(prune);
        self
    }

    /// Enables telemetry with the given streaming cadence (`0` = final
    /// snapshot only), returning a modified copy.
    pub fn metrics(mut self, cadence: usize) -> Self {
        self.metrics = Some(cadence);
        self
    }

    /// Replaces the execution checking mode, returning a modified copy.
    pub fn checking(mut self, checking: CheckingMode) -> Self {
        self.checking = Some(checking);
        self
    }

    /// The effective litmus corpus (the spec's, or the default enumerated
    /// one).
    pub fn litmus_corpus(&self) -> LitmusCorpus {
        self.litmus.unwrap_or_default()
    }

    /// The display label of this cell: the explicit label if set, otherwise
    /// the paper's column naming (`McVerSi-ALL (8KB)`, `diy-litmus`).
    pub fn display_label(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        match self.generator {
            GeneratorKind::DiyLitmus => self.generator.paper_name().to_string(),
            _ => format!(
                "{} ({}KB)",
                self.generator.paper_name(),
                self.test_memory_bytes / 1024
            ),
        }
    }

    /// Derives the simulated-system configuration for this cell.
    pub fn system(&self) -> SystemConfig {
        let mut system = if self.full {
            SystemConfig::paper_default()
        } else {
            SystemConfig::small(self.protocol)
        };
        system.num_cores = self.cores;
        system.protocol = self.protocol;
        system.core_strength = self.core_strength;
        system
    }

    /// Derives the test-generation parameters for this cell.
    ///
    /// The operation bias follows the target model: relaxed targets get the
    /// dependency-carrying mix ([`OperationBias::relaxed_default`]), strong
    /// targets the paper's Table 3 mix.
    pub fn testgen(&self) -> TestGenParams {
        let mut params = if self.full {
            TestGenParams::paper_default(self.test_memory_bytes)
        } else {
            let mut p = TestGenParams::small();
            p.test_memory_bytes = self.test_memory_bytes;
            p.population_size = 24;
            p
        };
        params.num_threads = self.cores;
        params.test_size = self.test_size;
        params.iterations = self.iterations;
        params.bias = if self.model.is_relaxed() {
            OperationBias::relaxed_default()
        } else {
            OperationBias::paper_default()
        };
        params.litmus = self.litmus_corpus();
        params
    }

    /// Derives the full framework configuration for this cell.
    pub fn mcversi(&self) -> McVerSiConfig {
        McVerSiConfig {
            system: self.system(),
            testgen: self.testgen(),
            adaptive: Default::default(),
            model: self.model,
            seed: self.base_seed,
        }
    }

    /// Derives the campaign configuration for this cell.
    pub fn campaign(&self) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(
            self.generator,
            self.bug,
            self.mcversi(),
            self.max_test_runs,
            Duration::from_secs(self.wall_secs),
        );
        cfg.parallelism = self.parallelism;
        cfg.shared_wall_time = self.shared_wall_secs.map(Duration::from_secs);
        cfg.prune = self.prune.unwrap_or_default();
        cfg.metrics = self.metrics;
        cfg.checking = self.checking.unwrap_or_default();
        cfg
    }

    /// Runs the cell's `samples` samples, streaming events into `sink`, and
    /// returns the results in seed order.
    pub fn run(&self, sink: &mut dyn crate::sink::CampaignSink) -> Vec<crate::CampaignResult> {
        let config = self.campaign();
        crate::campaign::run_samples_streamed(&config, self.samples, self.base_seed, sink)
            .into_iter()
            .map(|outcome| outcome.into_result(&config))
            .collect()
    }

    /// A stable 64-bit identity for this spec as a grid cell: the FNV-1a
    /// hash of its canonical JSON rendering.
    ///
    /// The id is derived from the cell's *content* (every spec field,
    /// including `base_seed` and `label`), never from its position in a
    /// grid enumeration, so shard assignment and journal records stay valid
    /// when a grid is re-expanded in a different order or filtered.
    pub fn cell_id(&self) -> u64 {
        // FNV-1a, 64-bit: small, dependency-free and stable across platforms.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    // ---- serialization ----

    /// Renders the spec as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Parses a spec from JSON (the inverse of [`ScenarioSpec::to_json`]).
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        serde_json::from_str(json).map_err(|e| SpecError(format!("invalid scenario spec: {e}")))
    }

    /// Loads a spec from a JSON file.
    pub fn from_json_file(path: &str) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read scenario spec `{path}`: {e}")))?;
        Self::from_json(&text).map_err(|e| SpecError(format!("{path}: {e}")))
    }

    /// Reads the base spec from the environment: `MCVERSI_SPEC` (a JSON spec
    /// file) or the `MCVERSI_FULL`-selected defaults, with the scalar
    /// `MCVERSI_*` variables overriding individual fields (see the module
    /// documentation for the full table).
    ///
    /// # Panics
    ///
    /// Panics when `MCVERSI_SPEC` names an unreadable or invalid spec file —
    /// a misspelled spec silently replaced by defaults would invalidate a
    /// whole campaign.
    pub fn from_env() -> Self {
        let mut spec = match std::env::var("MCVERSI_SPEC") {
            Ok(path) => Self::from_json_file(&path).unwrap_or_else(|e| panic!("MCVERSI_SPEC: {e}")),
            Err(_) => {
                if std::env::var("MCVERSI_FULL").is_ok() {
                    Self::paper()
                } else {
                    Self::small()
                }
            }
        };
        spec.samples = env_usize("MCVERSI_SAMPLES", spec.samples);
        spec.max_test_runs = env_usize("MCVERSI_TEST_RUNS", spec.max_test_runs);
        spec.test_size = env_usize("MCVERSI_TEST_SIZE", spec.test_size);
        spec.iterations = env_usize("MCVERSI_ITERATIONS", spec.iterations);
        spec.wall_secs = env_usize("MCVERSI_WALL_SECS", spec.wall_secs as usize) as u64;
        let (cores, _) = cores_from_env(spec.cores);
        spec.cores = cores;
        if let Ok(raw) = std::env::var("MCVERSI_LITMUS") {
            match LitmusCorpus::parse(&raw) {
                Some(corpus) => spec.litmus = Some(corpus),
                None => warn_once(&format!(
                    "warning: MCVERSI_LITMUS: unknown corpus '{raw}' ignored \
                     (expected handpicked or enumerated[:<threads>x<edges>])"
                )),
            }
        }
        if let Ok(raw) = std::env::var("MCVERSI_METRICS") {
            match parse_metrics(&raw) {
                Some(metrics) => spec.metrics = metrics,
                None => warn_once(&format!(
                    "warning: MCVERSI_METRICS: unknown value '{raw}' ignored \
                     (expected off, sample, or a cadence in test-runs)"
                )),
            }
        }
        if let Ok(raw) = std::env::var("MCVERSI_CHECKING") {
            match parse_checking(&raw) {
                Some(checking) => spec.checking = Some(checking),
                None => warn_once(&format!(
                    "warning: MCVERSI_CHECKING: unknown value '{raw}' ignored \
                     (expected per_exec, collective or vc)"
                )),
            }
        }
        spec
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec::small()
    }
}

/// How a [`ScenarioGrid`] assigns the base seed of each cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Every cell keeps the base spec's seed.
    Fixed,
    /// The weighted sum `base + bug·bug_weight + model_idx·model_weight +
    /// core_idx·core_weight + generator_idx·generator_weight` —
    /// deterministic, well-separated seeds per cell (the bug contribution
    /// uses the bug's discriminant so it is stable under axis reordering).
    Strided {
        /// Seed of the first cell.
        base: u64,
        /// Weight of the bug discriminant.
        bug_weight: u64,
        /// Weight of the model axis index.
        model_weight: u64,
        /// Weight of the core-strength axis index.
        core_weight: u64,
        /// Weight of the generator axis index.
        generator_weight: u64,
    },
}

impl SeedPolicy {
    /// The seed policy of the paper's Table 4 sweep.
    pub fn table4() -> Self {
        SeedPolicy::Strided {
            base: 1000,
            bug_weight: 100,
            model_weight: 10_000,
            core_weight: 100_000,
            generator_weight: 0,
        }
    }
}

/// One generator column of a sweep: the generator kind, its test-memory size
/// and an optional display label.
pub type GeneratorColumn = (GeneratorKind, u64, Option<String>);

/// A cartesian grid of [`ScenarioSpec`]s around a base spec.
///
/// Axes default to the base spec's single value; each builder method replaces
/// one axis.  [`ScenarioGrid::cells`] expands the product in a fixed order —
/// core strength (outermost), model, protocol, bug, generator (innermost) —
/// so tables render in the order the old hand-rolled loops used.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    base: ScenarioSpec,
    generators: Vec<GeneratorColumn>,
    models: Vec<ModelKind>,
    core_strengths: Vec<CoreStrength>,
    protocols: Vec<ProtocolKind>,
    bugs: Vec<Option<Bug>>,
    seeds: SeedPolicy,
    observable_only: bool,
}

/// Starts a grid around the environment-configured base spec, with the model
/// and core-strength axes taken from `MCVERSI_MODELS` / `MCVERSI_CORES`.
///
/// Explicit variables win; otherwise a `MCVERSI_SPEC`-loaded base
/// contributes its own model / core strength as the (single-valued) axis,
/// and without a spec file the axes fall back to the historical sweep
/// defaults (`SC,TSO,ARMish,RMO` × `strong`).  A purely numeric
/// `MCVERSI_CORES` (a core *count*) does not override the strength axis.
pub fn grid_from_env() -> ScenarioGrid {
    let base = ScenarioSpec::from_env();
    let (models, strengths) = grid_axes(
        &base,
        std::env::var("MCVERSI_MODELS").ok().as_deref(),
        std::env::var("MCVERSI_CORES").ok().as_deref(),
        std::env::var("MCVERSI_SPEC").is_ok(),
    );
    ScenarioGrid::new(base)
        .models(models)
        .core_strengths(strengths)
}

/// Resolves the model and core-strength axes from the (optional) environment
/// values and the base spec (see [`grid_from_env`] for the precedence).
fn grid_axes(
    base: &ScenarioSpec,
    models_env: Option<&str>,
    cores_env: Option<&str>,
    spec_loaded: bool,
) -> (Vec<ModelKind>, Vec<CoreStrength>) {
    let models = match models_env {
        Some(raw) => parse_models(raw),
        None if spec_loaded => vec![base.model],
        None => parse_models(""),
    };
    let strengths = match cores_env.map(parse_core_entries) {
        Some((_, named)) if !named.is_empty() => named,
        _ => vec![base.core_strength],
    };
    (models, strengths)
}

impl ScenarioGrid {
    /// A grid whose every axis is the base spec's single value.
    pub fn new(base: ScenarioSpec) -> Self {
        ScenarioGrid {
            generators: vec![(base.generator, base.test_memory_bytes, base.label.clone())],
            models: vec![base.model],
            core_strengths: vec![base.core_strength],
            protocols: vec![base.protocol],
            bugs: vec![base.bug],
            seeds: SeedPolicy::Fixed,
            observable_only: false,
            base,
        }
    }

    /// The base spec the axes expand around.
    pub fn base(&self) -> &ScenarioSpec {
        &self.base
    }

    /// Replaces the generator axis with labelled `(generator, memory, label)`
    /// columns (the paper's table columns).
    pub fn generator_columns(mut self, columns: impl IntoIterator<Item = GeneratorColumn>) -> Self {
        self.generators = columns.into_iter().collect();
        self
    }

    /// Replaces the generator axis (unlabelled, at the base memory size).
    pub fn generators(mut self, generators: impl IntoIterator<Item = GeneratorKind>) -> Self {
        let memory = self.base.test_memory_bytes;
        self.generators = generators.into_iter().map(|g| (g, memory, None)).collect();
        self
    }

    /// Replaces the model axis.
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Replaces the core-strength axis.
    pub fn core_strengths(mut self, strengths: impl IntoIterator<Item = CoreStrength>) -> Self {
        self.core_strengths = strengths.into_iter().collect();
        self
    }

    /// Replaces the protocol axis.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = ProtocolKind>) -> Self {
        self.protocols = protocols.into_iter().collect();
        self
    }

    /// Replaces the bug axis.
    pub fn bugs(mut self, bugs: impl IntoIterator<Item = Bug>) -> Self {
        self.bugs = bugs.into_iter().map(Some).collect();
        self
    }

    /// Sets the bug axis to the correct design only.
    pub fn correct_design(mut self) -> Self {
        self.bugs = vec![None];
        self
    }

    /// Skips (bug × core strength) cells whose bug is provably unobservable
    /// on that pipeline ([`Bug::required_core`]) — e.g. `LQ+no-TSO`
    /// suppresses a squash the relaxed pipeline does not have.
    pub fn observable_bugs_only(mut self) -> Self {
        self.observable_only = true;
        self
    }

    /// Sets the per-cell seed policy.
    pub fn seed_policy(mut self, seeds: SeedPolicy) -> Self {
        self.seeds = seeds;
        self
    }

    /// The model axis.
    pub fn model_axis(&self) -> &[ModelKind] {
        &self.models
    }

    /// The core-strength axis.
    pub fn core_axis(&self) -> &[CoreStrength] {
        &self.core_strengths
    }

    /// The generator-column labels, in axis order.
    pub fn column_labels(&self) -> Vec<String> {
        self.generators
            .iter()
            .map(|(generator, memory, label)| {
                let probe = ScenarioSpec {
                    generator: *generator,
                    test_memory_bytes: *memory,
                    label: label.clone(),
                    ..self.base.clone()
                };
                probe.display_label()
            })
            .collect()
    }

    /// Expands the grid into the cell specs, in sweep order.
    pub fn cells(&self) -> Vec<ScenarioSpec> {
        let mut cells = Vec::new();
        for (core_idx, &core_strength) in self.core_strengths.iter().enumerate() {
            for (model_idx, &model) in self.models.iter().enumerate() {
                for &protocol in &self.protocols {
                    for &bug in &self.bugs {
                        if self.observable_only {
                            if let Some(required) = bug.and_then(mcversi_sim::Bug::required_core) {
                                if required != core_strength {
                                    continue;
                                }
                            }
                        }
                        for (generator_idx, (generator, memory, label)) in
                            self.generators.iter().enumerate()
                        {
                            let base_seed = match self.seeds {
                                SeedPolicy::Fixed => self.base.base_seed,
                                SeedPolicy::Strided {
                                    base,
                                    bug_weight,
                                    model_weight,
                                    core_weight,
                                    generator_weight,
                                } => base
                                    .wrapping_add(
                                        bug.map_or(0, |b| b as u64).wrapping_mul(bug_weight),
                                    )
                                    .wrapping_add((model_idx as u64).wrapping_mul(model_weight))
                                    .wrapping_add((core_idx as u64).wrapping_mul(core_weight))
                                    .wrapping_add(
                                        (generator_idx as u64).wrapping_mul(generator_weight),
                                    ),
                            };
                            cells.push(ScenarioSpec {
                                generator: *generator,
                                bug,
                                model,
                                core_strength,
                                protocol,
                                test_memory_bytes: *memory,
                                base_seed,
                                label: label.clone(),
                                ..self.base.clone()
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Number of cells the grid expands to (without materialising them).
    pub fn len(&self) -> usize {
        let per_core: usize = self
            .core_strengths
            .iter()
            .map(|&core| {
                self.bugs
                    .iter()
                    .filter(|bug| {
                        !self.observable_only
                            || bug
                                .and_then(mcversi_sim::Bug::required_core)
                                .is_none_or(|required| required == core)
                    })
                    .count()
            })
            .sum();
        per_core * self.models.len() * self.protocols.len() * self.generators.len()
    }

    /// Returns `true` if the grid expands to no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Environment parsing
// ---------------------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Distinct once-per-process warnings actually emitted (see [`warn_once`]).
static WARNINGS_EMITTED: telemetry::Counter = telemetry::Counter::new("events.warn_once");

/// Emits `message` to stderr at most once per process (keyed by the message
/// text), so per-cell re-parsing of the environment cannot flood a table run
/// with identical warnings.
fn warn_once(message: &str) {
    static SEEN: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut seen = SEEN.lock().expect("warning registry lock");
    if seen.insert(message.to_string()) {
        WARNINGS_EMITTED.incr();
        eprintln!("{message}");
    }
}

/// Parses a `MCVERSI_METRICS` value: `off` disables telemetry, `sample` (or
/// `on`) collects final per-sample snapshots only, and an integer `n`
/// additionally streams a cumulative snapshot every `n` test-runs (`0` is
/// equivalent to `sample`).  Returns `None` when the value is not understood.
fn parse_metrics(raw: &str) -> Option<Option<usize>> {
    match raw.trim() {
        "off" => Some(None),
        "sample" | "on" => Some(Some(0)),
        n => n.parse().ok().map(Some),
    }
}

/// Parses a `MCVERSI_CHECKING` value: `per_exec` checks every iteration's
/// execution as it is observed; `collective` deduplicates by signature and
/// checks novel outcomes collectively; `vc` runs the polynomial-time
/// vector-clock first pass and falls back to the axiomatic checker on
/// violation or abstention.  Returns `None` when the value is not understood.
fn parse_checking(raw: &str) -> Option<CheckingMode> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "per_exec" | "per-exec" | "perexec" => Some(CheckingMode::PerExec),
        "collective" => Some(CheckingMode::Collective),
        "vc" | "vc_first" | "vc-first" => Some(CheckingMode::Vc),
        _ => None,
    }
}

/// Parses a `MCVERSI_CORES`-style value: numeric parts set the simulated core
/// count, named parts (`strong`/`relaxed`, or `all`) select the pipeline
/// strengths to sweep.  Returns `(core count, strengths)`.
///
/// The strength list is deduplicated; when the value carries no (valid)
/// strength name — including the all-numeric `MCVERSI_CORES=8` — it contains
/// the default [`CoreStrength::Strong`] exactly once.  Unknown entries are
/// skipped with a once-per-process warning.
pub fn parse_cores(raw: &str, default_count: usize) -> (usize, Vec<CoreStrength>) {
    let (count, mut strengths) = parse_core_entries(raw);
    if strengths.is_empty() {
        strengths.push(CoreStrength::Strong);
    }
    (count.unwrap_or(default_count), strengths)
}

/// The defaulting-free core of [`parse_cores`]: `None` / an empty list mean
/// the value carried no count / no (valid) strength name, so callers can
/// distinguish "explicitly strong" from "unspecified".
fn parse_core_entries(raw: &str) -> (Option<usize>, Vec<CoreStrength>) {
    let mut count = None;
    let mut strengths: Vec<CoreStrength> = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        if let Ok(n) = part.parse::<usize>() {
            count = Some(n.max(1));
        } else if part.eq_ignore_ascii_case("all") {
            for s in CoreStrength::ALL {
                if !strengths.contains(&s) {
                    strengths.push(s);
                }
            }
        } else if let Some(strength) = CoreStrength::parse(part) {
            if !strengths.contains(&strength) {
                strengths.push(strength);
            }
        } else {
            warn_once(&format!(
                "warning: MCVERSI_CORES: unknown entry '{part}' skipped"
            ));
        }
    }
    (count, strengths)
}

/// Reads `MCVERSI_CORES` (see [`parse_cores`]); an unset variable yields the
/// default count and a single `strong` strength.
pub fn cores_from_env(default_count: usize) -> (usize, Vec<CoreStrength>) {
    match std::env::var("MCVERSI_CORES") {
        Ok(raw) => parse_cores(&raw, default_count),
        Err(_) => (default_count, vec![CoreStrength::Strong]),
    }
}

/// Parses a `MCVERSI_MODELS`-style value: a comma-separated model list, or
/// `all`.  Unknown names are skipped with a once-per-process warning; an
/// empty result falls back to the default four-architecture comparison.
pub fn parse_models(raw: &str) -> Vec<ModelKind> {
    let default = vec![
        ModelKind::Sc,
        ModelKind::Tso,
        ModelKind::Armish,
        ModelKind::Rmo,
    ];
    if raw.trim().eq_ignore_ascii_case("all") {
        return ModelKind::ALL.to_vec();
    }
    let mut models = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        match ModelKind::parse(part) {
            Some(model) if !models.contains(&model) => models.push(model),
            Some(_) => {}
            None => warn_once(&format!(
                "warning: MCVERSI_MODELS: unknown model '{part}' skipped"
            )),
        }
    }
    if models.is_empty() {
        default
    } else {
        models
    }
}

/// Reads `MCVERSI_MODELS` (see [`parse_models`]).
pub fn models_from_env() -> Vec<ModelKind> {
    match std::env::var("MCVERSI_MODELS") {
        Ok(raw) => parse_models(&raw),
        Err(_) => parse_models(""),
    }
}

/// Distributed-fabric settings read from the environment (see
/// [`fabric_from_env`]).  This is plain data: the fabric crate interprets
/// it, `crates/core` only centralises the parsing (xtask rule 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricEnv {
    /// Worker child processes (`MCVERSI_FABRIC`; `0`/unset = in-process).
    pub workers: usize,
    /// Journal path for checkpoint/resume (`MCVERSI_JOURNAL`).
    pub journal: Option<String>,
    /// Fault-injection spec for the first dispatches, e.g. `kill-after:25`
    /// (`MCVERSI_FABRIC_FAULT`; test/CI only).
    pub fault: Option<String>,
    /// Re-dispatch attempts per shard after worker loss
    /// (`MCVERSI_FABRIC_RETRIES`).
    pub max_redispatch: usize,
}

/// Reads the `MCVERSI_FABRIC*` / `MCVERSI_JOURNAL` variables; `None` unless
/// `MCVERSI_FABRIC` names a positive worker count.
pub fn fabric_from_env() -> Option<FabricEnv> {
    let raw = std::env::var("MCVERSI_FABRIC").ok()?;
    let workers = match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        Ok(_) => return None,
        Err(_) => {
            warn_once(&format!(
                "warning: MCVERSI_FABRIC: not a worker count: '{raw}' ignored"
            ));
            return None;
        }
    };
    Some(FabricEnv {
        workers,
        journal: std::env::var("MCVERSI_JOURNAL").ok(),
        fault: std::env::var("MCVERSI_FABRIC_FAULT").ok(),
        max_redispatch: env_usize("MCVERSI_FABRIC_RETRIES", 2),
    })
}

/// Opens a [`crate::sink::JsonlSink`] on the `MCVERSI_JSONL` path, if set.
pub fn jsonl_sink_from_env() -> Option<crate::sink::JsonlSink<std::fs::File>> {
    let path = std::env::var("MCVERSI_JSONL").ok()?;
    match crate::sink::JsonlSink::create(&path) {
        Ok(sink) => Some(sink),
        Err(e) => {
            warn_once(&format!(
                "warning: MCVERSI_JSONL: cannot open `{path}`: {e}"
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            generator: GeneratorKind::McVerSiAll,
            bug: Some(Bug::SqNoDataDep),
            model: ModelKind::Armish,
            core_strength: CoreStrength::Relaxed,
            shared_wall_secs: Some(30),
            label: Some("custom".to_string()),
            ..ScenarioSpec::small()
        };
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn prune_mode_threads_into_the_campaign_and_is_optional_in_json() {
        let spec = ScenarioSpec::small().prune(StaticPrune::Skip);
        assert_eq!(spec.campaign().prune, StaticPrune::Skip);
        assert_eq!(ScenarioSpec::small().campaign().prune, StaticPrune::Off);
        // Spec files written before the field existed (no `prune` key) still
        // parse, defaulting to no pruning.
        let json: String = spec
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"prune\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = ScenarioSpec::from_json(&json).expect("prune-less spec parses");
        assert_eq!(back.prune, None);
        assert_eq!(back.campaign().prune, StaticPrune::Off);
    }

    #[test]
    fn metrics_cadence_threads_into_the_campaign_and_is_optional_in_json() {
        let spec = ScenarioSpec::small().metrics(25);
        assert_eq!(spec.campaign().metrics, Some(25));
        assert_eq!(ScenarioSpec::small().campaign().metrics, None);
        // Spec files written before the field existed (no `metrics` key)
        // still parse, defaulting to telemetry off.
        let json: String = spec
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"metrics\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = ScenarioSpec::from_json(&json).expect("metrics-less spec parses");
        assert_eq!(back.metrics, None);
        assert_eq!(back.campaign().metrics, None);
    }

    #[test]
    fn checking_mode_threads_into_the_campaign_and_is_optional_in_json() {
        let spec = ScenarioSpec::small().checking(CheckingMode::Collective);
        assert_eq!(spec.campaign().checking, CheckingMode::Collective);
        assert_eq!(
            ScenarioSpec::small().campaign().checking,
            CheckingMode::PerExec
        );
        // Spec files written before the field existed (no `checking` key)
        // still parse, defaulting to per-execution checking.
        let json: String = spec
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"checking\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = ScenarioSpec::from_json(&json).expect("checking-less spec parses");
        assert_eq!(back.checking, None);
        assert_eq!(back.campaign().checking, CheckingMode::PerExec);
        // The vc-first mode round-trips through JSON too.
        let vc = ScenarioSpec::small().checking(CheckingMode::Vc);
        assert_eq!(vc.campaign().checking, CheckingMode::Vc);
        let back = ScenarioSpec::from_json(&vc.to_json()).expect("vc spec round trips");
        assert_eq!(back.checking, Some(CheckingMode::Vc));
    }

    #[test]
    fn checking_values_parse_like_the_env_variable() {
        assert_eq!(parse_checking("per_exec"), Some(CheckingMode::PerExec));
        assert_eq!(
            parse_checking(" Collective "),
            Some(CheckingMode::Collective)
        );
        assert_eq!(parse_checking("per-exec"), Some(CheckingMode::PerExec));
        assert_eq!(parse_checking("vc"), Some(CheckingMode::Vc));
        assert_eq!(parse_checking("VC-First"), Some(CheckingMode::Vc));
        assert_eq!(parse_checking("batched"), None);
    }

    #[test]
    fn metrics_values_parse_like_the_env_variable() {
        assert_eq!(parse_metrics("off"), Some(None));
        assert_eq!(parse_metrics("sample"), Some(Some(0)));
        assert_eq!(parse_metrics("on"), Some(Some(0)));
        assert_eq!(parse_metrics("0"), Some(Some(0)));
        assert_eq!(parse_metrics(" 50 "), Some(Some(50)));
        assert_eq!(parse_metrics("every-other-day"), None);
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        assert!(ScenarioSpec::from_json("{").is_err());
        assert!(ScenarioSpec::from_json(r#"{"generator": "NoSuchGen"}"#).is_err());
    }

    #[test]
    fn spec_derives_the_old_setter_built_configuration() {
        let spec = ScenarioSpec::small()
            .model(ModelKind::Armish)
            .core_strength(CoreStrength::Relaxed)
            .protocol(ProtocolKind::TsoCc);
        let cfg = spec.mcversi();
        assert_eq!(cfg.model, ModelKind::Armish);
        assert_eq!(cfg.system.core_strength, CoreStrength::Relaxed);
        assert_eq!(cfg.system.protocol, ProtocolKind::TsoCc);
        assert_eq!(cfg.testgen.bias, OperationBias::relaxed_default());
        assert_eq!(cfg.testgen.num_threads, spec.cores);
        // Retargeting at a strong model restores the Table 3 mix.
        let strong = spec.model(ModelKind::Tso).mcversi();
        assert_eq!(strong.testgen.bias, OperationBias::paper_default());
    }

    #[test]
    fn display_labels_match_the_paper_columns() {
        let spec = ScenarioSpec::small().generator(GeneratorKind::McVerSiAll);
        assert_eq!(spec.display_label(), "McVerSi-ALL (8KB)");
        assert_eq!(
            spec.clone().test_memory(1024).display_label(),
            "McVerSi-ALL (1KB)"
        );
        assert_eq!(
            spec.generator(GeneratorKind::DiyLitmus).display_label(),
            "diy-litmus"
        );
    }

    #[test]
    fn grid_expands_the_cartesian_product_in_sweep_order() {
        let grid = ScenarioGrid::new(ScenarioSpec::small())
            .models([ModelKind::Tso, ModelKind::Armish])
            .core_strengths(CoreStrength::ALL)
            .bugs([Bug::LqNoTso, Bug::SqNoDataDep]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Core strength is the outermost axis.
        assert!(cells[..4]
            .iter()
            .all(|c| c.core_strength == CoreStrength::Strong));
        assert!(cells[4..]
            .iter()
            .all(|c| c.core_strength == CoreStrength::Relaxed));
        // Models alternate groups of the bug × generator product.
        assert_eq!(cells[0].model, ModelKind::Tso);
        assert_eq!(cells[2].model, ModelKind::Armish);
    }

    #[test]
    fn grid_skips_unobservable_bugs_per_core() {
        let grid = ScenarioGrid::new(ScenarioSpec::small())
            .core_strengths(CoreStrength::ALL)
            .bugs(Bug::ALL_EXTENDED)
            .observable_bugs_only();
        let cells = grid.cells();
        let strong: Vec<_> = cells
            .iter()
            .filter(|c| c.core_strength == CoreStrength::Strong)
            .collect();
        let relaxed: Vec<_> = cells
            .iter()
            .filter(|c| c.core_strength == CoreStrength::Relaxed)
            .collect();
        assert_eq!(strong.len(), 11, "the paper's Table 4 sweep is pinned");
        assert_eq!(relaxed.len(), 14);
        assert!(strong.iter().all(|c| c.bug != Some(Bug::SqNoDataDep)));
        assert!(relaxed.iter().all(|c| c.bug != Some(Bug::LqNoTso)));
    }

    #[test]
    fn strided_seed_policy_reproduces_the_table4_seeds() {
        let grid = ScenarioGrid::new(ScenarioSpec::small())
            .models([ModelKind::Sc, ModelKind::Tso])
            .core_strengths(CoreStrength::ALL)
            .bugs([Bug::LqNoTso])
            .seed_policy(SeedPolicy::table4());
        let cells = grid.cells();
        for cell in &cells {
            let model_idx = [ModelKind::Sc, ModelKind::Tso]
                .iter()
                .position(|&m| m == cell.model)
                .unwrap() as u64;
            let core_idx = (cell.core_strength == CoreStrength::Relaxed) as u64;
            assert_eq!(
                cell.base_seed,
                1000 + Bug::LqNoTso as u64 * 100 + model_idx * 10_000 + core_idx * 100_000
            );
        }
    }

    #[test]
    fn cores_parsing_defaults_strong_exactly_once() {
        // All-numeric: count set, exactly one default strength.
        let (count, strengths) = parse_cores("8", 4);
        assert_eq!(count, 8);
        assert_eq!(strengths, vec![CoreStrength::Strong]);
        // Repetition and `all` never duplicate entries.
        let (_, strengths) = parse_cores("strong,all,STRONG,relaxed", 4);
        assert_eq!(strengths, vec![CoreStrength::Strong, CoreStrength::Relaxed]);
        // Mixed numeric + names; unknown entries are skipped (warning is
        // emitted at most once per process, see `warn_once`).
        let (count, strengths) = parse_cores("2,bogus,relaxed,bogus", 4);
        assert_eq!(count, 2);
        assert_eq!(strengths, vec![CoreStrength::Relaxed]);
        // Empty value: defaults.
        assert_eq!(parse_cores("", 4), (4, vec![CoreStrength::Strong]));
    }

    #[test]
    fn model_parsing_defaults_and_dedups() {
        assert_eq!(parse_models("all"), ModelKind::ALL.to_vec());
        assert_eq!(
            parse_models("tso,TSO,armish"),
            vec![ModelKind::Tso, ModelKind::Armish]
        );
        assert_eq!(parse_models("bogus").len(), 4, "fallback to the default");
    }

    #[test]
    fn grid_len_matches_materialised_cells() {
        let grid = ScenarioGrid::new(ScenarioSpec::small())
            .core_strengths(CoreStrength::ALL)
            .models([ModelKind::Tso, ModelKind::Armish])
            .bugs(Bug::ALL_EXTENDED)
            .observable_bugs_only();
        assert_eq!(grid.len(), grid.cells().len());
        assert!(!grid.is_empty());
        let empty = ScenarioGrid::new(ScenarioSpec::small()).models(Vec::<ModelKind>::new());
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert!(empty.cells().is_empty());
    }

    /// The axis-resolution precedence of `grid_from_env`: explicit variables
    /// win, a spec-loaded base contributes its own model/strength, and the
    /// no-spec default keeps the historical four-model × strong sweep.
    #[test]
    fn grid_axes_respect_spec_loaded_bases() {
        let relaxed_base = ScenarioSpec::small()
            .model(ModelKind::Powerish)
            .core_strength(CoreStrength::Relaxed);

        // Spec file loaded, nothing else set: the spec defines both axes.
        let (models, strengths) = grid_axes(&relaxed_base, None, None, true);
        assert_eq!(models, vec![ModelKind::Powerish]);
        assert_eq!(strengths, vec![CoreStrength::Relaxed]);

        // A purely numeric MCVERSI_CORES sets the count, not the strength.
        let (_, strengths) = grid_axes(&relaxed_base, None, Some("8"), true);
        assert_eq!(strengths, vec![CoreStrength::Relaxed]);

        // Explicit variables override the spec.
        let (models, strengths) = grid_axes(&relaxed_base, Some("tso"), Some("8,strong"), true);
        assert_eq!(models, vec![ModelKind::Tso]);
        assert_eq!(strengths, vec![CoreStrength::Strong]);

        // No spec, nothing set: the historical sweep defaults.
        let (models, strengths) = grid_axes(&ScenarioSpec::small(), None, None, false);
        assert_eq!(models.len(), 4);
        assert_eq!(strengths, vec![CoreStrength::Strong]);
    }

    #[test]
    fn grid_column_labels_follow_the_generator_axis() {
        let grid = ScenarioGrid::new(ScenarioSpec::small()).generator_columns([
            (GeneratorKind::McVerSiAll, 1024, None),
            (GeneratorKind::DiyLitmus, 8 * 1024, None),
            (GeneratorKind::McVerSiRand, 1024, Some("custom".to_string())),
        ]);
        assert_eq!(
            grid.column_labels(),
            vec!["McVerSi-ALL (1KB)", "diy-litmus", "custom"]
        );
    }
}
