//! The test-run executor (the guest workload kernel, Algorithm 2).
//!
//! A *test-run* executes one test for several iterations.  Per iteration the
//! runner resets the test memory, executes the staged code on all threads in
//! lock step, verifies the observed candidate execution against the target
//! MCM (x86-TSO by default; any [`ModelKind`](mcversi_mcm::ModelKind) via
//! [`McVerSiConfig::model`]) and accumulates the conflict orders for the NDT
//! analysis.
//! After the last iteration the per-run coverage is turned into the adaptive
//! fitness.  The correspondence with Algorithm 2 is one-to-one:
//!
//! | Algorithm 2                      | Runner                                   |
//! |----------------------------------|------------------------------------------|
//! | `barrier_wait_coarse()`          | [`HostInterface::barrier_wait_coarse`]   |
//! | `make_test_thread(code)`         | [`HostInterface::make_test_thread`]      |
//! | `barrier_wait_precise(); execute`| [`HostInterface::execute_test`]          |
//! | `verify_reset_conflict()`        | per-iteration check + conflict recording |
//! | `reset_test_mem()`               | [`HostInterface::reset_test_mem`]        |
//! | `verify_reset_all()`             | final check + fitness evaluation         |

use crate::config::McVerSiConfig;
use crate::coverage::AdaptiveCoverage;
use crate::host::{HostInterface, SimHost};
use mcversi_conformance::VcChecker;
use mcversi_mcm::checker::Verdict;
use mcversi_mcm::execution::CandidateExecution;
use mcversi_mcm::signature::{self, ExecutionSignature, SignatureCache};
use mcversi_mcm::Violation;
use mcversi_sim::{BugConfig, ProtocolError, Transition};
use mcversi_telemetry as telemetry;
use mcversi_testgen::{NdtAnalysis, RunConflicts, Test};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeSet, HashSet};

/// Phase timer: lowering the test into its executable program.
static PHASE_LOWER: telemetry::Timer = telemetry::Timer::new("phase.lower");
/// Phase timer: resetting the test memory between iterations.
static PHASE_RESET: telemetry::Timer = telemetry::Timer::new("phase.reset");
/// Phase timer: the per-iteration MCM check (`verify_reset_conflict`).
static PHASE_CHECK: telemetry::Timer = telemetry::Timer::new("phase.check");
/// Phase timer: end-of-run fitness evaluation and NDT analysis.
static PHASE_FITNESS: telemetry::Timer = telemetry::Timer::new("phase.fitness");

/// How the runner verifies observed executions against the target MCM.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum CheckingMode {
    /// Check every iteration's execution as it is observed (the paper's
    /// Algorithm 2 flow).  This is the default.
    #[default]
    PerExec,
    /// MTraceCheck-style collective checking: deduplicate iterations by
    /// [`ExecutionSignature`], certify what the cycle oracle can decide with
    /// zero checker runs, and batch the remaining novel outcomes so the
    /// checker runs once per *distinct* outcome instead of once per
    /// iteration.  Verdicts are identical to [`CheckingMode::PerExec`]
    /// (pinned by the differential property test); only the point within the
    /// run at which a violation surfaces may move later.
    Collective,
    /// Vector-clock first pass: deduplicate by [`ExecutionSignature`], run
    /// the polynomial-time [`VcChecker`] on each novel outcome and only fall
    /// back to the axiomatic `Checker::check` when the first pass reports a
    /// violation or abstains.  Nothing is batched, so verdicts *and* the
    /// point within the run at which a violation surfaces are identical to
    /// [`CheckingMode::PerExec`] (pinned by the differential property test).
    Vc,
}

impl CheckingMode {
    /// The canonical spelling used in scenario specs and `MCVERSI_CHECKING`.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckingMode::PerExec => "per_exec",
            CheckingMode::Collective => "collective",
            CheckingMode::Vc => "vc",
        }
    }
}

impl Serialize for CheckingMode {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for CheckingMode {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("per_exec") | Some("PerExec") => Ok(CheckingMode::PerExec),
            Some("collective") | Some("Collective") => Ok(CheckingMode::Collective),
            Some("vc") | Some("Vc") => Ok(CheckingMode::Vc),
            _ => Err(DeError::expected(
                "\"per_exec\", \"collective\" or \"vc\"",
                "CheckingMode",
            )),
        }
    }
}

/// Execution-deduplication statistics accumulated by a runner in
/// [`CheckingMode::Collective`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Complete executions that reached the checking stage.
    pub executions: u64,
    /// Executions whose signature was already known (cached verdict replayed
    /// or already batched) — no checker work at all.
    pub cache_hits: u64,
    /// Novel signatures (first sighting of an outcome).
    pub cache_misses: u64,
    /// Novel signatures certified valid by a first pass with zero checker
    /// runs: the cycle oracle in collective mode, the vector-clock checker
    /// in vc mode.
    pub oracle_valid: u64,
    /// `Checker::check` invocations actually performed.
    pub checker_calls: u64,
}

impl DedupStats {
    /// Accumulates another runner's statistics into this one.
    pub fn merge(&mut self, other: &DedupStats) {
        self.executions += other.executions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.oracle_valid += other.oracle_valid;
        self.checker_calls += other.checker_calls;
    }
}

/// The verdict of one test-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunVerdict {
    /// Every iteration satisfied the target MCM.
    Passed,
    /// An iteration's candidate execution violated the MCM.
    McmViolation(Violation),
    /// The protocol monitor flagged an invalid transition (as Ruby would).
    ProtocolFault(ProtocolError),
    /// An iteration did not complete within its cycle budget.
    Hang,
}

impl RunVerdict {
    /// Returns `true` if the run exposed a bug of any kind.
    pub fn is_bug(&self) -> bool {
        !matches!(self, RunVerdict::Passed)
    }
}

/// The outcome of one test-run.
#[derive(Debug, Clone)]
pub struct TestRunResult {
    /// Pass/fail verdict.
    pub verdict: RunVerdict,
    /// Adaptive-coverage fitness of the run (the GP fitness signal).
    pub fitness: f64,
    /// Non-determinism analysis of the run (NDT, NDe, fit addresses).
    pub analysis: NdtAnalysis,
    /// Transitions covered by this run.
    pub covered: BTreeSet<Transition>,
    /// Number of iterations actually executed (may be fewer than configured if
    /// a bug was found early).
    pub iterations_run: usize,
    /// Simulated cycles consumed by the run.
    pub cycles: u64,
    /// Test operations retired during the run.
    pub retired_ops: usize,
}

/// Executes test-runs against one simulated system instance.
///
/// The runner owns the simulation; consecutive test-runs share the simulator
/// state that the paper deliberately does not reset (RNG, cumulative coverage,
/// protocol-persistent state), so repeated executions are perturbed
/// differently.
#[derive(Debug)]
pub struct TestRunner {
    host: SimHost,
    config: McVerSiConfig,
    adaptive: AdaptiveCoverage,
    total_test_runs: u64,
    total_cycles: u64,
    checking: CheckingMode,
    dedup: DedupStats,
}

impl TestRunner {
    /// Creates a runner for the given configuration and injected bugs; the
    /// checker verifies against `config.model`.
    pub fn new(config: McVerSiConfig, bugs: BugConfig) -> Self {
        let host = SimHost::with_model(config.system.clone(), bugs, config.seed, config.model);
        let adaptive = AdaptiveCoverage::new(config.adaptive);
        TestRunner {
            host,
            adaptive,
            total_test_runs: 0,
            total_cycles: 0,
            checking: CheckingMode::default(),
            dedup: DedupStats::default(),
            config,
        }
    }

    /// Selects how this runner verifies executions (builder style).
    pub fn with_checking(mut self, checking: CheckingMode) -> Self {
        self.checking = checking;
        self
    }

    /// The active checking mode.
    pub fn checking(&self) -> CheckingMode {
        self.checking
    }

    /// Deduplication statistics accumulated so far (all zero in
    /// [`CheckingMode::PerExec`]).
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup
    }

    /// The framework configuration.
    pub fn config(&self) -> &McVerSiConfig {
        &self.config
    }

    /// Total number of test-runs executed.
    pub fn total_test_runs(&self) -> u64 {
        self.total_test_runs
    }

    /// Total simulated cycles across all test-runs.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Maximum total transition coverage achieved so far (Table 6 metric).
    pub fn total_coverage(&self) -> f64 {
        let universe = self.host.system().coverage_universe().to_vec();
        self.host.system().coverage().total_coverage(&universe)
    }

    /// Access to the underlying host (e.g. for inspecting the system).
    pub fn host(&self) -> &SimHost {
        &self.host
    }

    /// Executes one test-run (Algorithm 2) and evaluates it.
    pub fn run_test(&mut self, test: &Test) -> TestRunResult {
        self.total_test_runs += 1;
        let iterations = self.config.testgen.iterations.max(1);
        let mut conflicts = RunConflicts::new();
        let mut verdict = RunVerdict::Passed;
        let mut cycles = 0u64;
        let mut retired_ops = 0usize;
        let mut iterations_run = 0usize;

        self.host.barrier_wait_coarse();
        {
            let _span = PHASE_LOWER.span();
            self.host.make_test_thread(test);
        }
        // Collective checking keeps a per-test signature cache plus a batch
        // of novel outcomes whose verdicts are deferred to one collective
        // pass (at the latest, the end of the run); vc-first checking keeps
        // the cache and a vector-clock checker but never defers.
        let mut check = match self.checking {
            CheckingMode::PerExec => CheckState::PerExec,
            CheckingMode::Collective => {
                CheckState::Collective(CollectiveState::new(self.host.staged_fingerprint()))
            }
            CheckingMode::Vc => CheckState::VcFirst(VcState::new(
                self.host.staged_fingerprint(),
                self.host.model(),
            )),
        };

        for _ in 0..iterations {
            self.host.barrier_wait_precise();
            {
                let _span = PHASE_RESET.span();
                self.host.reset_test_mem();
            }
            let outcome = self.host.execute_test();
            iterations_run += 1;
            cycles += outcome.cycles;
            retired_ops += outcome.retired_ops;

            if let Some(err) = outcome.protocol_errors.first() {
                // Batched outcomes come from earlier iterations: under
                // per-execution checking a violating one would have ended the
                // run before this fault, so the flushed verdict wins.
                {
                    let _span = PHASE_CHECK.span();
                    if let Some(v) = check.flush(&self.host, &mut self.dedup) {
                        verdict = RunVerdict::McmViolation(v);
                        break;
                    }
                }
                verdict = RunVerdict::ProtocolFault(err.clone());
                break;
            }
            if outcome.hung {
                {
                    let _span = PHASE_CHECK.span();
                    if let Some(v) = check.flush(&self.host, &mut self.dedup) {
                        verdict = RunVerdict::McmViolation(v);
                        break;
                    }
                }
                verdict = RunVerdict::Hang;
                break;
            }
            conflicts.add_iteration(&outcome.execution);
            let _span = PHASE_CHECK.span();
            let violation = match &mut check {
                CheckState::PerExec => match self.host.verify_reset_conflict(&outcome) {
                    Verdict::Valid => None,
                    Verdict::Invalid(v) => Some(v),
                },
                CheckState::Collective(state) => state.observe(
                    &outcome.execution,
                    outcome.complete,
                    &self.host,
                    &mut self.dedup,
                ),
                CheckState::VcFirst(state) => state.observe(
                    &outcome.execution,
                    outcome.complete,
                    &self.host,
                    &mut self.dedup,
                ),
            };
            if let Some(v) = violation {
                verdict = RunVerdict::McmViolation(v);
                break;
            }
        }

        // Collectively check any still-deferred novel outcomes (a no-op in
        // the undeferred modes).
        if matches!(verdict, RunVerdict::Passed) {
            let _span = PHASE_CHECK.span();
            if let Some(v) = check.flush(&self.host, &mut self.dedup) {
                verdict = RunVerdict::McmViolation(v);
            }
        }

        // End of test-run bookkeeping (verify_reset_all): fitness from the
        // run's coverage, NDT analysis from the accumulated conflict orders.
        let fitness_span = PHASE_FITNESS.span();
        let covered = self.host.system_mut().finish_coverage_run();
        let universe = self.host.system().coverage_universe().to_vec();
        let fitness = self
            .adaptive
            .fitness(&covered, self.host.system().coverage(), &universe);
        let analysis = conflicts.analyze(test);
        drop(fitness_span);
        self.total_cycles += cycles;

        TestRunResult {
            verdict,
            fitness,
            analysis,
            covered,
            iterations_run,
            cycles,
            retired_ops,
        }
    }
}

/// Per-test-run checking state, one variant per [`CheckingMode`].
enum CheckState {
    /// No state: every iteration is checked as it is observed.
    PerExec,
    /// Signature deduplication with deferred collective verdicts.
    Collective(CollectiveState),
    /// Signature deduplication with an undeferred vector-clock first pass.
    VcFirst(VcState),
}

impl CheckState {
    /// Settles any deferred verdicts; a no-op except in collective mode.
    fn flush(&mut self, host: &SimHost, dedup: &mut DedupStats) -> Option<Violation> {
        match self {
            CheckState::PerExec | CheckState::VcFirst(_) => None,
            CheckState::Collective(state) => state.flush(host, dedup),
        }
    }
}

/// Per-test-run state of the vc-first checking flow: the signature cache and
/// the polynomial-time vector-clock checker consulted on novel outcomes.
struct VcState {
    cache: SignatureCache,
    vc: VcChecker,
}

impl VcState {
    fn new(program: u64, model: mcversi_mcm::ModelKind) -> Self {
        VcState {
            cache: SignatureCache::new(program),
            vc: VcChecker::new(model),
        }
    }

    /// Processes one observed execution; verdicts (and the iteration at
    /// which a violation surfaces) are identical to per-execution checking
    /// because nothing is deferred — the vector-clock pass only decides
    /// whether the axiomatic checker needs to run at all.
    fn observe(
        &mut self,
        execution: &CandidateExecution,
        complete: bool,
        host: &SimHost,
        dedup: &mut DedupStats,
    ) -> Option<Violation> {
        if !complete {
            // Partial observations carry event subsets that vary run to run;
            // their signatures are not comparable, so check directly.
            dedup.checker_calls += 1;
            return match host.check_execution(execution) {
                Verdict::Valid => None,
                Verdict::Invalid(v) => Some(v),
            };
        }
        dedup.executions += 1;
        let sig = self.cache.signature_of(execution);
        match self.cache.lookup(&sig) {
            Some(Verdict::Valid) => {
                dedup.cache_hits += 1;
                None
            }
            Some(Verdict::Invalid(v)) => {
                dedup.cache_hits += 1;
                Some(v)
            }
            None => {
                dedup.cache_misses += 1;
                if self.vc.check(execution).is_valid() {
                    // The vector-clock pass is exact on its Valid side for
                    // every model (it abstains when unsure), so the verdict
                    // can be cached without an axiomatic run.
                    dedup.oracle_valid += 1;
                    signature::record_oracle_valid();
                    self.cache.insert(sig, Verdict::Valid);
                    None
                } else {
                    // Violation (we want the authoritative witness) or
                    // Abstain: fall back to the axiomatic checker.
                    dedup.checker_calls += 1;
                    let verdict = host.check_execution(execution);
                    self.cache.insert(sig, verdict.clone());
                    match verdict {
                        Verdict::Valid => None,
                        Verdict::Invalid(v) => Some(v),
                    }
                }
            }
        }
    }
}

/// Per-test-run state of the collective checking flow: the signature cache,
/// the set of signatures awaiting a deferred verdict, and the batch of novel
/// executions to check collectively.
struct CollectiveState {
    cache: SignatureCache,
    pending: HashSet<ExecutionSignature>,
    batch: Vec<(ExecutionSignature, CandidateExecution)>,
}

impl CollectiveState {
    fn new(program: u64) -> Self {
        CollectiveState {
            cache: SignatureCache::new(program),
            pending: HashSet::new(),
            batch: Vec::new(),
        }
    }

    /// Processes one observed execution; returns a violation when the run
    /// must end, exactly as per-execution checking would have ended it.
    fn observe(
        &mut self,
        execution: &CandidateExecution,
        complete: bool,
        host: &SimHost,
        dedup: &mut DedupStats,
    ) -> Option<Violation> {
        if !complete {
            // Partial observations carry event subsets that vary run to run;
            // their signatures are not comparable, so check directly (after
            // flushing, to preserve the per-execution violation order).
            if let Some(earlier) = self.flush(host, dedup) {
                return Some(earlier);
            }
            dedup.checker_calls += 1;
            return match host.check_execution(execution) {
                Verdict::Valid => None,
                Verdict::Invalid(v) => Some(v),
            };
        }
        dedup.executions += 1;
        let sig = self.cache.signature_of(execution);
        if self.pending.contains(&sig) {
            // Same novel outcome seen again before its deferred verdict.
            dedup.cache_hits += 1;
            signature::record_batched_hit();
            return None;
        }
        match self.cache.lookup(&sig) {
            Some(Verdict::Valid) => {
                dedup.cache_hits += 1;
                None
            }
            Some(Verdict::Invalid(v)) => {
                dedup.cache_hits += 1;
                if let Some(earlier) = self.flush(host, dedup) {
                    return Some(earlier);
                }
                Some(v)
            }
            None => {
                dedup.cache_misses += 1;
                match signature::classify_execution(execution, host.model()) {
                    oracle if oracle.certifies_valid() => {
                        dedup.oracle_valid += 1;
                        signature::record_oracle_valid();
                        self.cache.insert(sig, Verdict::Valid);
                        None
                    }
                    signature::OracleVerdict::ForbiddenCycle => {
                        // The oracle's "forbidden" is advisory: run the full
                        // checker for the authoritative witness (and in case
                        // the hint is wrong).
                        signature::record_oracle_hint();
                        if let Some(earlier) = self.flush(host, dedup) {
                            return Some(earlier);
                        }
                        dedup.checker_calls += 1;
                        let verdict = host.check_execution(execution);
                        self.cache.insert(sig, verdict.clone());
                        match verdict {
                            Verdict::Valid => None,
                            Verdict::Invalid(v) => Some(v),
                        }
                    }
                    _ => {
                        self.pending.insert(sig.clone());
                        self.batch.push((sig, execution.clone()));
                        None
                    }
                }
            }
        }
    }

    /// Collectively checks the batched novel outcomes in first-seen order and
    /// returns the first violation; outcomes after a violation stay unchecked
    /// (per-execution checking would never have reached them).
    fn flush(&mut self, host: &SimHost, dedup: &mut DedupStats) -> Option<Violation> {
        let mut found: Option<Violation> = None;
        for (sig, exec) in self.batch.drain(..) {
            self.pending.remove(&sig);
            if found.is_some() {
                continue;
            }
            dedup.checker_calls += 1;
            let verdict = host.check_execution(&exec);
            if let Verdict::Invalid(v) = &verdict {
                found = Some(v.clone());
            }
            self.cache.insert(sig, verdict);
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_sim::Bug;
    use mcversi_testgen::litmus;
    use mcversi_testgen::{RandomTestGenerator, TestGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_runner(bugs: BugConfig) -> TestRunner {
        let cfg = McVerSiConfig::small().with_iterations(3).with_test_size(32);
        TestRunner::new(cfg, bugs)
    }

    #[test]
    fn random_tests_pass_on_the_correct_design() {
        let mut runner = small_runner(BugConfig::none());
        let params = TestGenParams::small()
            .with_threads(runner.config().system.num_cores)
            .with_test_size(32);
        let gen = RandomTestGenerator::new(params);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let test = gen.generate(&mut rng);
            let result = runner.run_test(&test);
            assert!(
                !result.verdict.is_bug(),
                "correct design flagged: {:?}",
                result.verdict
            );
            assert!(result.iterations_run >= 3);
            assert!(result.analysis.ndt >= 0.0);
            assert!(result.fitness >= 0.0 && result.fitness <= 1.0);
            assert!(!result.covered.is_empty());
        }
        assert_eq!(runner.total_test_runs(), 5);
        assert!(runner.total_cycles() > 0);
        assert!(runner.total_coverage() > 0.0);
    }

    #[test]
    fn litmus_suite_passes_on_the_correct_design() {
        // The correct design must never trip any litmus shape, even when the
        // shapes are repeated within one test (as the diy runner's size
        // parameter effectively does).  Bug-finding ability of the litmus
        // baseline is exercised by the campaign tests and the experiment
        // binaries: as in the paper, litmus tests need far more executions
        // than the GP/random generators to hit a timing window.
        let suite = litmus::default_suite();
        let shapes: Vec<_> = suite
            .iter()
            .filter(|t| ["MP", "CoRR", "SB", "LB", "WRC", "IRIW"].contains(&t.name.as_str()))
            .map(|t| (t.name.clone(), litmus::repeat_test(&t.test, 12)))
            .collect();

        let mut correct = small_runner(BugConfig::none());
        for (name, test) in &shapes {
            for _ in 0..3 {
                let result = correct.run_test(test);
                assert!(
                    !result.verdict.is_bug(),
                    "correct design failed {}: {:?}",
                    name,
                    result.verdict
                );
            }
        }
    }

    #[test]
    fn random_tests_expose_lq_no_tso() {
        // Table 4: LQ+no-TSO is found almost immediately by every McVerSi
        // generator (0.00–0.08 hours); random generation with a small address
        // range reproduces that here.
        let mut runner = small_runner(BugConfig::single(Bug::LqNoTso));
        let params = TestGenParams::small()
            .with_threads(runner.config().system.num_cores)
            .with_test_size(48);
        let gen = RandomTestGenerator::new(params);
        let mut rng = StdRng::seed_from_u64(17);
        let mut found = false;
        for _ in 0..80 {
            let result = runner.run_test(&gen.generate(&mut rng));
            if result.verdict.is_bug() {
                found = true;
                break;
            }
        }
        assert!(found, "LQ+no-TSO not exposed by random tests");
    }

    #[test]
    fn protocol_fault_is_reported_for_putx_race() {
        // The PUTX race needs replacements; drive it with a flush-heavy test.
        let cfg = McVerSiConfig::small().with_iterations(2).with_test_size(48);
        let mut params = TestGenParams::small()
            .with_threads(cfg.system.num_cores)
            .with_test_size(48);
        params.bias.cache_flush = 30;
        params.bias.write = 50;
        params.bias.read = 20;
        params.bias.read_addr_dp = 0;
        params.bias.read_modify_write = 0;
        params.bias.delay = 0;
        let gen = RandomTestGenerator::new(params);
        let mut runner = TestRunner::new(cfg, BugConfig::single(Bug::MesiPutxRace));
        let mut rng = StdRng::seed_from_u64(11);
        let mut protocol_fault = false;
        for _ in 0..60 {
            let result = runner.run_test(&gen.generate(&mut rng));
            if matches!(result.verdict, RunVerdict::ProtocolFault(_)) {
                protocol_fault = true;
                break;
            }
        }
        assert!(protocol_fault, "PUTX race never triggered a protocol fault");
    }
}
