//! Verification campaigns: generator × bug runs and coverage runs.
//!
//! A *campaign* corresponds to one cell of the paper's Table 4: a particular
//! test generator attacking a particular (injected) bug with a bounded budget.
//! The paper's budget is 24 hours of host wall-clock time per sample; this
//! reproduction expresses the budget both as wall-clock time and as a maximum
//! number of test-runs, so experiments can be scaled to the available compute
//! while keeping the comparison between generators fair (every generator gets
//! the same budget).  Multiple samples (different seeds) run in parallel.

use crate::config::McVerSiConfig;
use crate::generator::{GeneratorKind, TestSource};
use crate::lowering::lower;
use crate::runner::{CheckingMode, DedupStats, RunVerdict, TestRunResult, TestRunner};
use crate::sink::{CampaignEvent, CampaignSink, NullSink};
use mcversi_analysis::{forbids_any, ClassifyBounds, Dataflow};
use mcversi_mcm::ModelKind;
use mcversi_sim::{Bug, BugConfig, CoreStrength};
use mcversi_telemetry as telemetry;
use mcversi_telemetry::MetricsSnapshot;
use mcversi_testgen::NdtAnalysis;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Events buffered per worker before the bounded channel applies
/// backpressure to the sample workers.
const EVENT_CHANNEL_DEPTH: usize = 64;

/// How many statically rejected tests a [`StaticPrune::Skip`] campaign may
/// discard per unit of test-run budget before the sample gives up.  The cap
/// bounds the wall-clock spent generating and classifying when a generator
/// produces (almost) exclusively inert tests.
const PRUNE_SKIP_CAP_FACTOR: usize = 50;

/// Phase timer: generating the next candidate test.
static PHASE_GENERATE: telemetry::Timer = telemetry::Timer::new("phase.generate");
/// Phase timer: static classification for the pre-simulation prune.
static PHASE_CLASSIFY: telemetry::Timer = telemetry::Timer::new("phase.classify");
/// Phase timer: generator feedback (fitness accounting, GP evolution).
static PHASE_FITNESS: telemetry::Timer = telemetry::Timer::new("phase.fitness");
/// Sample panics observed while draining a streamed batch (countable even
/// when the panic messages themselves scroll past in a sink).
static EVT_SAMPLE_PANIC: telemetry::Counter = telemetry::Counter::new("events.sample_panic");

/// Pre-simulation pruning of statically inert tests.
///
/// Before a test is simulated, the campaign can consult the static
/// discrimination classifier ([`mcversi_analysis::classify()`]): a test whose
/// candidate critical-cycle set contains no cycle the target model forbids
/// cannot produce an MCM violation under that model, so simulating it only
/// spends budget on coverage.
///
/// Pruning is a *may*-analysis over critical cycles of two or more
/// locations: single-location coherence violations and protocol faults can
/// still surface in tests the classifier calls inert.  It is therefore
/// off by default and opt-in per scenario.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticPrune {
    /// No pruning (the default): every generated test is simulated.
    #[default]
    Off,
    /// Statically inert tests are not simulated at all.  The generator still
    /// receives zero-fitness feedback for them (so a GP population evolves
    /// away from inert chromosomes), and they do not count against the
    /// test-run budget.
    Skip,
    /// Statically inert tests still run (no detection loss), but their
    /// fitness is forced to zero before the generator feedback, steering the
    /// GP search toward discriminating tests.
    Penalize,
}

/// Configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The test generator under evaluation.
    pub generator: GeneratorKind,
    /// The injected bug (or `None` for a coverage campaign on the correct
    /// design, as used for Table 6).
    pub bug: Option<Bug>,
    /// Framework configuration (system, test generation, fitness).
    pub mcversi: McVerSiConfig,
    /// Maximum number of test-runs per sample.
    pub max_test_runs: usize,
    /// Maximum wall-clock time per sample.
    pub max_wall_time: Duration,
    /// Number of worker threads used by [`run_samples`].  `0` (the default)
    /// means one worker per available hardware thread, capped at the number
    /// of samples.
    pub parallelism: usize,
    /// Optional wall-clock budget shared by *all* samples of a batch.  When a
    /// batch of samples runs on an oversubscribed host, per-sample wall-clock
    /// budgets skew generator comparisons (late-scheduled samples observe a
    /// colder machine); a shared deadline bounds the whole batch instead.
    /// `None` (the default) bounds each sample only by `max_wall_time`.
    pub shared_wall_time: Option<Duration>,
    /// Pre-simulation pruning of statically inert tests (default
    /// [`StaticPrune::Off`]; see [`StaticPrune`] for the soundness caveat).
    pub prune: StaticPrune,
    /// Telemetry cadence. `None` (the default) leaves metric recording off;
    /// `Some(0)` records metrics and snapshots them once into
    /// [`CampaignResult::metrics`]; `Some(n)` additionally emits a cumulative
    /// [`CampaignEvent::Metrics`] record every `n` test-runs.  Metrics never
    /// affect campaign behaviour, only what is recorded and reported.
    pub metrics: Option<usize>,
    /// How executions are verified against the target model (default
    /// [`CheckingMode::PerExec`]; [`CheckingMode::Collective`] deduplicates
    /// by signature and checks novel outcomes collectively — same verdicts,
    /// far fewer checker runs on repetitive tests).
    pub checking: CheckingMode,
}

impl CampaignConfig {
    /// Creates a campaign configuration with the given budget.
    pub fn new(
        generator: GeneratorKind,
        bug: Option<Bug>,
        mcversi: McVerSiConfig,
        max_test_runs: usize,
        max_wall_time: Duration,
    ) -> Self {
        CampaignConfig {
            generator,
            bug,
            mcversi,
            max_test_runs,
            max_wall_time,
            parallelism: 0,
            shared_wall_time: None,
            prune: StaticPrune::Off,
            metrics: None,
            checking: CheckingMode::PerExec,
        }
    }

    /// Sets the number of worker threads used by [`run_samples`]
    /// (`0` = one per available hardware thread).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets a wall-clock budget shared by all samples of a batch.
    pub fn with_shared_wall_time(mut self, budget: Duration) -> Self {
        self.shared_wall_time = Some(budget);
        self
    }

    /// Sets the pre-simulation prune mode (see [`StaticPrune`]).
    pub fn with_prune(mut self, prune: StaticPrune) -> Self {
        self.prune = prune;
        self
    }

    /// Enables telemetry with the given cadence (see
    /// [`CampaignConfig::metrics`]): `0` snapshots once per sample, `n > 0`
    /// additionally streams a cumulative snapshot every `n` test-runs.
    pub fn with_metrics(mut self, cadence: usize) -> Self {
        self.metrics = Some(cadence);
        self
    }

    /// Sets the execution-checking mode (see [`CheckingMode`]).
    pub fn with_checking(mut self, checking: CheckingMode) -> Self {
        self.checking = checking;
        self
    }

    /// The campaign's target consistency model.
    pub fn model(&self) -> ModelKind {
        self.mcversi.model
    }

    /// The campaign's core pipeline strength (before any per-bug override;
    /// see [`CampaignConfig::effective_mcversi`]).
    pub fn core_strength(&self) -> CoreStrength {
        self.mcversi.system.core_strength
    }

    /// The effective number of worker threads for a batch of `samples`.
    fn effective_parallelism(&self, samples: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = if self.parallelism == 0 {
            hw
        } else {
            self.parallelism
        };
        workers.clamp(1, samples.max(1))
    }

    fn bug_config(&self) -> BugConfig {
        match self.bug {
            Some(bug) => BugConfig::single(bug),
            None => BugConfig::none(),
        }
    }

    /// Adjusts the system protocol to the one the bug requires (if any),
    /// returning the effective framework configuration.
    ///
    /// The core strength is deliberately *not* forced from
    /// [`Bug::required_core`]: a protocol bug does not exist in the other
    /// protocol's logic, but a dependency-ordering bug's hook is present in
    /// both pipelines — the strong core merely masks it.  Running such a bug
    /// on the strong core is exactly the (model × core) cell that
    /// demonstrates the gap, so the caller's choice stands.
    pub fn effective_mcversi(&self) -> McVerSiConfig {
        let mut cfg = self.mcversi.clone();
        if let Some(protocol) = self.bug.and_then(|b| b.required_protocol()) {
            cfg.system.protocol = protocol;
        }
        cfg
    }
}

/// The result of one campaign sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The generator that ran.
    pub generator: GeneratorKind,
    /// The targeted bug, if any.
    pub bug: Option<Bug>,
    /// The consistency model the checker verified against.
    pub model: ModelKind,
    /// The core pipeline strength the simulated system ran with (after any
    /// per-bug override).
    pub core: CoreStrength,
    /// Sample seed.
    pub seed: u64,
    /// Whether the bug was found within the budget.
    pub found: bool,
    /// Human-readable description of how the bug manifested.
    pub detail: Option<String>,
    /// Number of test-runs executed.
    pub test_runs: usize,
    /// Test-run index (1-based) at which the bug was found, if found.
    pub found_at_run: Option<usize>,
    /// Simulated cycles consumed.
    pub simulated_cycles: u64,
    /// Wall-clock time consumed.
    pub wall_time: Duration,
    /// Maximum total transition coverage reached (Table 6 metric).
    pub max_total_coverage: f64,
    /// Mean NDT of the GP population at the end (0 for stateless generators).
    pub final_mean_ndt: f64,
    /// Number of generated tests the static classifier rejected (skipped or
    /// fitness-penalized, per [`CampaignConfig::prune`]; 0 with pruning off).
    pub pruned: usize,
    /// Final cumulative telemetry snapshot of the sample (present only when
    /// [`CampaignConfig::metrics`] was set; absent in older serialized
    /// results, which deserialize to `None`).
    pub metrics: Option<MetricsSnapshot>,
    /// Execution-deduplication statistics (present only when the sample ran
    /// with [`CheckingMode::Collective`] or [`CheckingMode::Vc`]; absent in
    /// older serialized results, which deserialize to `None`).
    pub dedup: Option<DedupStats>,
}

impl CampaignResult {
    /// Fraction of the test-run budget used before the bug was found (1.0 if
    /// not found).  This is the scaled analogue of the paper's
    /// "hours to find the bug" column.
    pub fn normalized_time_to_bug(&self, budget: usize) -> f64 {
        match self.found_at_run {
            Some(run) if budget > 0 => run as f64 / budget as f64,
            _ => 1.0,
        }
    }
}

/// A wall-clock budget shared by every sample of a campaign batch.
///
/// Samples poll [`WallBudget::expired`] between test-runs; once the deadline
/// passes, all in-flight samples wind down at the next test-run boundary.
#[derive(Debug, Clone, Copy)]
pub struct WallBudget {
    deadline: Option<Instant>,
}

impl WallBudget {
    /// A budget that never expires.
    pub fn unlimited() -> Self {
        WallBudget { deadline: None }
    }

    /// A budget expiring `limit` from now.
    pub fn starting_now(limit: Duration) -> Self {
        WallBudget {
            deadline: Some(Instant::now() + limit),
        }
    }

    /// Whether the budget has expired.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Runs one campaign sample with the given seed.
pub fn run_campaign(config: &CampaignConfig, seed: u64) -> CampaignResult {
    let budget = config
        .shared_wall_time
        .map_or_else(WallBudget::unlimited, WallBudget::starting_now);
    run_campaign_budgeted(config, seed, &budget)
}

/// Runs one campaign sample under an externally shared wall-clock budget
/// (in addition to the per-sample `max_wall_time`).
pub fn run_campaign_budgeted(
    config: &CampaignConfig,
    seed: u64,
    budget: &WallBudget,
) -> CampaignResult {
    run_campaign_observed(config, seed, budget, &mut |_| {})
}

/// Like [`run_campaign_budgeted`], but reports every test-run (and any
/// violation) through `emit` as it happens.  The emitted stream is the
/// per-sample slice of the [`CampaignSink`] event protocol; `emit` is called
/// on the worker thread executing the sample.
pub fn run_campaign_observed(
    config: &CampaignConfig,
    seed: u64,
    budget: &WallBudget,
    emit: &mut dyn FnMut(CampaignEvent),
) -> CampaignResult {
    if config.metrics.is_some() {
        telemetry::enable();
    }
    // Start every sample from a clean thread-local slate so its final
    // snapshot attributes exactly this sample's work (each sample runs
    // entirely on one worker thread).
    telemetry::reset_local();

    let mcversi = config.effective_mcversi().with_seed(seed);
    let model = mcversi.model;
    let core = mcversi.system.core_strength;
    let params = mcversi.testgen.clone();
    let mut runner = TestRunner::new(mcversi, config.bug_config()).with_checking(config.checking);
    let mut source = TestSource::for_model(
        config.generator,
        params,
        seed.wrapping_add(0x9e37_79b9),
        model,
    );
    let start = Instant::now();

    let mut found = false;
    let mut detail = None;
    let mut found_at_run = None;
    let mut test_runs = 0usize;
    let mut pruned = 0usize;
    let prune_bounds = ClassifyBounds::default();

    while test_runs < config.max_test_runs
        && start.elapsed() < config.max_wall_time
        && !budget.expired()
    {
        let (id, test, name) = {
            let _span = PHASE_GENERATE.span();
            source.next_test()
        };
        // Pre-simulation prune: a test with no statically reachable cycle the
        // target model forbids cannot produce an MCM violation under it.
        let inert = config.prune != StaticPrune::Off && {
            let _span = PHASE_CLASSIFY.span();
            !forbids_any(&Dataflow::new(&lower(&test)), model, &prune_bounds)
        };
        if inert && config.prune == StaticPrune::Skip {
            pruned += 1;
            // Feed back a zero-signal result so a GP population evolves away
            // from inert chromosomes; the skipped test does not count against
            // the test-run budget.
            let _span = PHASE_FITNESS.span();
            source.feedback(
                id,
                &TestRunResult {
                    verdict: RunVerdict::Passed,
                    fitness: 0.0,
                    analysis: NdtAnalysis::empty(),
                    covered: BTreeSet::new(),
                    iterations_run: 0,
                    cycles: 0,
                    retired_ops: 0,
                },
            );
            if pruned >= config.max_test_runs.saturating_mul(PRUNE_SKIP_CAP_FACTOR) {
                break;
            }
            continue;
        }
        let result = runner.run_test(&test);
        test_runs += 1;
        {
            let _span = PHASE_FITNESS.span();
            if inert {
                // Penalize: the test still ran (no detection loss), but the
                // generator sees it as worthless.
                pruned += 1;
                let mut penalized = result.clone();
                penalized.fitness = 0.0;
                penalized.analysis = NdtAnalysis::empty();
                source.feedback(id, &penalized);
            } else {
                source.feedback(id, &result);
            }
        }
        emit(CampaignEvent::TestRun {
            seed,
            run: test_runs,
            found: result.verdict.is_bug(),
            fitness: result.fitness,
            cycles: result.cycles,
        });
        if let Some(cadence) = config.metrics {
            if cadence > 0 && test_runs.is_multiple_of(cadence) {
                emit(CampaignEvent::Metrics {
                    seed,
                    run: test_runs,
                    snapshot: telemetry::local_snapshot(),
                });
            }
        }
        if result.verdict.is_bug() {
            found = true;
            found_at_run = Some(test_runs);
            let description = match &result.verdict {
                RunVerdict::McmViolation(v) => match name {
                    Some(n) => format!("MCM violation ({}) in litmus test {n}", v.axiom),
                    None => format!("MCM violation of axiom '{}'", v.axiom),
                },
                RunVerdict::ProtocolFault(e) => format!("protocol fault: {e}"),
                RunVerdict::Hang => "iteration hang (cycle budget exceeded)".to_string(),
                RunVerdict::Passed => unreachable!(),
            };
            emit(CampaignEvent::Violation {
                seed,
                run: test_runs,
                detail: description.clone(),
            });
            detail = Some(description);
            break;
        }
    }

    CampaignResult {
        generator: config.generator,
        bug: config.bug,
        model,
        core,
        seed,
        found,
        detail,
        test_runs,
        found_at_run,
        simulated_cycles: runner.total_cycles(),
        wall_time: start.elapsed(),
        max_total_coverage: runner.total_coverage(),
        final_mean_ndt: source.population_mean_ndt(),
        pruned,
        metrics: config.metrics.map(|_| telemetry::local_snapshot()),
        dedup: matches!(config.checking, CheckingMode::Collective | CheckingMode::Vc)
            .then(|| runner.dedup_stats()),
    }
}

/// The outcome of one scheduled sample: either a completed campaign result or
/// an isolated panic (a poisoned sample must not abort the rest of the batch).
///
/// One outcome exists per sample, so the size skew between the two variants
/// (a full result vs. a panic message) costs nothing worth an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SampleOutcome {
    /// The sample ran to completion.
    Completed(CampaignResult),
    /// The sample panicked; the batch continued without it.
    Panicked {
        /// The seed of the panicked sample.
        seed: u64,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl SampleOutcome {
    /// Converts the outcome into a [`CampaignResult`], mapping panics to a
    /// sentinel "not found" result whose `detail` records the panic.
    pub fn into_result(self, config: &CampaignConfig) -> CampaignResult {
        match self {
            SampleOutcome::Completed(result) => result,
            SampleOutcome::Panicked { seed, message } => {
                // Surface the crash: callers of `run_samples` (the experiment
                // binaries) would otherwise average this sentinel into their
                // tables with no visible trace.  Use `run_samples_outcomes`
                // to handle panics programmatically instead.
                eprintln!(
                    "warning: campaign sample (generator {}, seed {seed}) panicked: {message}",
                    config.generator
                );
                CampaignResult {
                    generator: config.generator,
                    bug: config.bug,
                    model: config.model(),
                    core: config.effective_mcversi().system.core_strength,
                    seed,
                    found: false,
                    detail: Some(format!("sample panicked: {message}")),
                    test_runs: 0,
                    found_at_run: None,
                    simulated_cycles: 0,
                    wall_time: Duration::ZERO,
                    max_total_coverage: 0.0,
                    final_mean_ndt: 0.0,
                    pruned: 0,
                    metrics: None,
                    dedup: None,
                }
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `samples` independent samples of a campaign (different seeds) on a
/// bounded worker pool and returns their results in seed order.
///
/// * The pool size is `config.parallelism` (or the host's available
///   parallelism when `0`), capped at the number of samples, so the batch
///   never oversubscribes the host with one thread per sample.
/// * Sample `i` always runs with seed `base_seed + i` regardless of which
///   worker picks it up or in which order, so results are reproducible for a
///   fixed `base_seed` (provided the wall-clock budgets do not bind).
/// * A panicking sample is isolated and reported as a sentinel result; the
///   remaining samples still run.
/// * When `config.shared_wall_time` is set, all samples share one deadline
///   (see [`CampaignConfig::shared_wall_time`]).
///
/// To observe the batch while it runs, use [`run_samples_streamed`].
pub fn run_samples(config: &CampaignConfig, samples: usize, base_seed: u64) -> Vec<CampaignResult> {
    run_samples_outcomes(config, samples, base_seed)
        .into_iter()
        .map(|outcome| outcome.into_result(config))
        .collect()
}

/// Like [`run_samples`], but reports panicked samples explicitly instead of
/// folding them into sentinel [`CampaignResult`]s.
pub fn run_samples_outcomes(
    config: &CampaignConfig,
    samples: usize,
    base_seed: u64,
) -> Vec<SampleOutcome> {
    run_samples_streamed(config, samples, base_seed, &mut NullSink)
}

/// Runs a sample batch like [`run_samples`], streaming [`CampaignEvent`]s
/// into `sink` *while the batch runs*, and returns the outcomes in seed
/// order.
///
/// Workers push events through a bounded channel (a fixed number of slots
/// per worker); the calling thread drains the channel and dispatches to
/// the sink, so sink implementations need no synchronisation.  Per-sample
/// event order is preserved (`SampleStart`, then `TestRun`/`Violation`
/// interleavings, then `SampleDone`/`SamplePanic`); events of concurrently
/// running samples interleave in arrival order.  The bounded channel applies
/// backpressure: a sink that cannot keep up slows the workers down instead of
/// buffering the whole campaign in memory.
pub fn run_samples_streamed(
    config: &CampaignConfig,
    samples: usize,
    base_seed: u64,
    sink: &mut dyn CampaignSink,
) -> Vec<SampleOutcome> {
    let indices: Vec<usize> = (0..samples).collect();
    run_sample_subset(config, &indices, base_seed, sink)
}

/// Runs an explicit subset of a sample batch — the checkpoint/resume
/// re-entry point of the distributed fabric.
///
/// `indices` lists the sample indices to run (normally a subset of
/// `0..samples` whose results a resume journal does *not* already hold).
/// Each index `i` runs with seed `base_seed + i`, exactly as it would in the
/// full batch, so a batch split into "journaled" and "re-run" halves merges
/// back into results bit-identical to an uninterrupted [`run_samples`] call.
/// Outcomes are returned in `indices` order.
pub fn run_sample_subset(
    config: &CampaignConfig,
    indices: &[usize],
    base_seed: u64,
    sink: &mut dyn CampaignSink,
) -> Vec<SampleOutcome> {
    if indices.is_empty() {
        return Vec::new();
    }
    let workers = config.effective_parallelism(indices.len());
    let budget = config
        .shared_wall_time
        .map_or_else(WallBudget::unlimited, WallBudget::starting_now);
    let next_job = AtomicUsize::new(0);
    let (sender, receiver) =
        mpsc::sync_channel::<(usize, CampaignEvent)>(workers * EVENT_CHANNEL_DEPTH);
    let mut outcomes: Vec<Option<SampleOutcome>> = (0..indices.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.clamp(1, indices.len()) {
            let sender = sender.clone();
            let next_job = &next_job;
            let budget = &budget;
            scope.spawn(move || loop {
                let slot = next_job.fetch_add(1, Ordering::Relaxed);
                if slot >= indices.len() {
                    break;
                }
                let i = indices[slot];
                let seed = base_seed.wrapping_add(i as u64);
                // A send only fails once the receiver is gone, i.e. the batch
                // is being torn down — then dropping events is the right call.
                let _ = sender.send((slot, CampaignEvent::SampleStart { seed, index: i }));
                let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_campaign_observed(config, seed, budget, &mut |event| {
                        let _ = sender.send((slot, event));
                    })
                }));
                let final_event = match run {
                    Ok(result) => CampaignEvent::SampleDone { result },
                    Err(payload) => CampaignEvent::SamplePanic {
                        seed,
                        message: panic_message(payload),
                    },
                };
                let _ = sender.send((slot, final_event));
            });
        }
        drop(sender);

        // Drain on the calling thread while the workers run: this is what
        // makes the sink live rather than post-hoc.
        for (slot, event) in receiver {
            match &event {
                CampaignEvent::SampleDone { result } => {
                    outcomes[slot] = Some(SampleOutcome::Completed(result.clone()));
                }
                CampaignEvent::SamplePanic { seed, message } => {
                    EVT_SAMPLE_PANIC.incr();
                    outcomes[slot] = Some(SampleOutcome::Panicked {
                        seed: *seed,
                        message: message.clone(),
                    });
                }
                _ => {}
            }
            sink.on_event(&event);
        }
    });

    outcomes
        .into_iter()
        .map(|slot| slot.expect("every scheduled sample reports a final event"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use mcversi_sim::ProtocolKind;

    fn quick_config(generator: GeneratorKind, bug: Option<Bug>) -> CampaignConfig {
        let mcversi = McVerSiConfig::small().with_test_size(32).with_iterations(3);
        CampaignConfig::new(generator, bug, mcversi, 40, Duration::from_secs(60))
    }

    /// A quick config retargeted at a (model, core strength) cell — the
    /// in-process equivalent of the `ScenarioSpec` axes (pinned equal to the
    /// spec path by the workspace-level differential test).
    fn quick_cell(
        generator: GeneratorKind,
        bug: Option<Bug>,
        model: ModelKind,
        core: CoreStrength,
    ) -> CampaignConfig {
        let mut cfg = quick_config(generator, bug);
        cfg.mcversi = cfg.mcversi.retarget(model);
        cfg.mcversi.system.core_strength = core;
        cfg
    }

    #[test]
    fn correct_design_campaign_finds_nothing() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, None);
        let result = run_campaign(&cfg, 1);
        assert!(!result.found);
        assert_eq!(result.test_runs, 40);
        assert!(result.max_total_coverage > 0.0);
        assert!(result.found_at_run.is_none());
        assert_eq!(result.normalized_time_to_bug(40), 1.0);
    }

    #[test]
    fn lq_no_tso_is_found_by_random_generation() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso));
        let result = run_campaign(&cfg, 3);
        assert!(result.found, "LQ+no-TSO should be easy to find: {result:?}");
        assert!(result.detail.is_some());
        assert!(result.normalized_time_to_bug(40) <= 1.0);
    }

    #[test]
    fn bug_protocol_requirement_overrides_system_protocol() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::TsoCcCompare));
        assert_eq!(cfg.effective_mcversi().system.protocol, ProtocolKind::TsoCc);
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::MesiLqEInv));
        assert_eq!(cfg.effective_mcversi().system.protocol, ProtocolKind::Mesi);
    }

    /// Cross-model bug coverage: the LQ+no-TSO bug produces read→read
    /// reorderings that TSO forbids, but a relaxed model with no dependency
    /// chains in play accepts the same executions — the bug hides when the
    /// target model is weak enough.
    #[test]
    fn lq_no_tso_hides_under_the_relaxed_models() {
        let tso = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso));
        assert_eq!(tso.model(), ModelKind::Tso);
        let found_tso = run_campaign(&tso, 3).found;
        assert!(found_tso, "TSO campaign must find LQ+no-TSO");

        // Same budget and seed, weakest model: plain-read reorderings are
        // architecturally allowed, so the verdict machinery must stay quiet
        // unless a dependency chain is violated (which the correct-by-
        // construction dependency stalls in the core prevent).
        let rmo = quick_cell(
            GeneratorKind::McVerSiRand,
            Some(Bug::LqNoTso),
            ModelKind::Rmo,
            CoreStrength::Strong,
        );
        assert_eq!(rmo.model(), ModelKind::Rmo);
        let result = run_campaign(&rmo, 3);
        assert!(
            !result.found,
            "RMO accepts the TSO-buggy executions: {result:?}"
        );
        assert_eq!(result.model, ModelKind::Rmo);
        assert_eq!(result.test_runs, 40, "budget exhausted without a find");
    }

    /// The headline (model × core) differential: a dependency-ordering bug is
    /// found by the litmus baseline when a *relaxed* core runs an ARM-ish
    /// campaign, and the identical campaign on the *strong* core exhausts its
    /// budget without a verdict change — the strong pipeline's squash and
    /// in-order retirement mask the injection entirely.
    #[test]
    fn dependency_bug_detectable_on_relaxed_core_only() {
        assert_eq!(
            Bug::SqNoDataDep.required_core(),
            Some(CoreStrength::Relaxed)
        );

        let relaxed = quick_cell(
            GeneratorKind::DiyLitmus,
            Some(Bug::SqNoDataDep),
            ModelKind::Armish,
            CoreStrength::Relaxed,
        );
        assert_eq!(relaxed.core_strength(), CoreStrength::Relaxed);
        let result = run_campaign(&relaxed, 3);
        assert!(
            result.found,
            "SQ+no-data-dep must be found on the relaxed core: {result:?}"
        );
        assert_eq!(result.core, CoreStrength::Relaxed);
        assert_eq!(result.model, ModelKind::Armish);

        let strong = quick_cell(
            GeneratorKind::DiyLitmus,
            Some(Bug::SqNoDataDep),
            ModelKind::Armish,
            CoreStrength::Strong,
        );
        let result = run_campaign(&strong, 3);
        assert!(
            !result.found,
            "the strong core must mask SQ+no-data-dep: {result:?}"
        );
        assert_eq!(result.core, CoreStrength::Strong);
        assert_eq!(result.test_runs, 40, "budget exhausted without a find");
    }

    /// The correct relaxed-core design passes a weak-model campaign (no false
    /// positives from the reordering pipeline) but is flagged under TSO, where
    /// the hardware is weaker than the model.
    #[test]
    fn relaxed_core_correct_design_is_model_relative() {
        let armish = quick_cell(
            GeneratorKind::DiyLitmus,
            None,
            ModelKind::Armish,
            CoreStrength::Relaxed,
        );
        let result = run_campaign(&armish, 2);
        assert!(
            !result.found,
            "correct relaxed design flagged under ARMish: {result:?}"
        );

        let tso = quick_cell(
            GeneratorKind::DiyLitmus,
            None,
            ModelKind::Tso,
            CoreStrength::Relaxed,
        );
        assert_eq!(tso.model(), ModelKind::Tso);
        let result = run_campaign(&tso, 2);
        assert!(
            result.found,
            "a relaxed core must be flagged by a TSO campaign: {result:?}"
        );
    }

    #[test]
    fn retargeting_switches_bias_and_result_records_model() {
        let cfg = quick_cell(
            GeneratorKind::McVerSiRand,
            None,
            ModelKind::Armish,
            CoreStrength::Strong,
        );
        assert_eq!(cfg.model(), ModelKind::Armish);
        assert!(
            cfg.mcversi.testgen.bias.write_data_dp > 0,
            "relaxed targets default to the relaxed operation bias"
        );
        let result = run_campaign(&cfg, 1);
        assert_eq!(result.model, ModelKind::Armish);
        assert!(!result.found, "correct design under a weaker model");
    }

    /// Penalize mode must not change what gets simulated — for a stateless
    /// generator the run sequence is identical to pruning off; only the
    /// generator-facing fitness and the `pruned` count differ.
    #[test]
    fn penalize_prune_runs_every_test_and_counts_inert_ones() {
        let base = quick_cell(
            GeneratorKind::McVerSiRand,
            Some(Bug::SqNoDataDep),
            ModelKind::Armish,
            CoreStrength::Relaxed,
        );
        let off = run_campaign(&base, 1);
        let penalized = run_campaign(&base.clone().with_prune(StaticPrune::Penalize), 1);
        assert_eq!(off.pruned, 0, "pruning is off by default");
        assert!(
            penalized.pruned > 0,
            "small random tests include statically inert ones: {penalized:?}"
        );
        assert_eq!(penalized.test_runs, off.test_runs);
        assert_eq!(penalized.found, off.found);
        assert_eq!(penalized.simulated_cycles, off.simulated_cycles);
    }

    /// Skip mode spends the test-run budget only on statically capable
    /// tests; discarded ones are counted but not simulated.
    #[test]
    fn skip_prune_discards_inert_tests_without_spending_budget() {
        let cfg = quick_cell(
            GeneratorKind::McVerSiRand,
            Some(Bug::SqNoDataDep),
            ModelKind::Armish,
            CoreStrength::Relaxed,
        )
        .with_prune(StaticPrune::Skip);
        let result = run_campaign(&cfg, 1);
        assert_eq!(
            result.test_runs, 40,
            "the budget is still filled with simulated runs"
        );
        assert!(
            result.pruned > 40,
            "most small random tests are inert under ARMish: {result:?}"
        );
    }

    /// When a generator produces exclusively inert tests, the skip cap stops
    /// the sample instead of classifying forever.
    #[test]
    fn skip_prune_cap_stops_generators_with_no_capable_tests() {
        let mut cfg = quick_cell(
            GeneratorKind::McVerSiRand,
            None,
            ModelKind::Rmo,
            CoreStrength::Relaxed,
        )
        .with_prune(StaticPrune::Skip);
        // Without dependency-carrying or fence ops no cycle is RMO-forbidden,
        // so every generated test is statically inert.
        cfg.mcversi.testgen.bias.read_addr_dp = 0;
        cfg.mcversi.testgen.bias.write_data_dp = 0;
        cfg.mcversi.testgen.bias.write_ctrl_dp = 0;
        cfg.mcversi.testgen.bias.fence = 0;
        cfg.mcversi.testgen.bias.fence_acquire = 0;
        cfg.mcversi.testgen.bias.fence_release = 0;
        cfg.mcversi.testgen.bias.fence_lw = 0;
        cfg.max_test_runs = 2;
        let result = run_campaign(&cfg, 1);
        assert_eq!(result.test_runs, 0, "nothing capable was ever simulated");
        assert_eq!(result.pruned, 2 * PRUNE_SKIP_CAP_FACTOR);
        assert!(!result.found);
    }

    #[test]
    fn parallel_samples_use_distinct_seeds() {
        let cfg = quick_config(GeneratorKind::DiyLitmus, Some(Bug::LqNoTso));
        let results = run_samples(&cfg, 3, 10);
        assert_eq!(results.len(), 3);
        let seeds: Vec<u64> = results.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![10, 11, 12]);
    }

    /// The deterministic portion of a result (everything except wall time).
    fn fingerprint(
        r: &CampaignResult,
    ) -> (
        u64,
        bool,
        Option<String>,
        usize,
        Option<usize>,
        u64,
        u64,
        u64,
    ) {
        (
            r.seed,
            r.found,
            r.detail.clone(),
            r.test_runs,
            r.found_at_run,
            r.simulated_cycles,
            r.max_total_coverage.to_bits(),
            r.final_mean_ndt.to_bits(),
        )
    }

    #[test]
    fn run_samples_is_deterministic_across_parallelism() {
        let base = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso));
        let serial: Vec<_> = run_samples(&base.clone().with_parallelism(1), 4, 7)
            .iter()
            .map(fingerprint)
            .collect();
        for _ in 0..2 {
            let pooled: Vec<_> = run_samples(&base.clone().with_parallelism(4), 4, 7)
                .iter()
                .map(fingerprint)
                .collect();
            assert_eq!(serial, pooled, "scheduling must not affect results");
        }
    }

    #[test]
    fn streamed_batch_isolates_panicking_samples() {
        // A test source generating more threads than the system has cores
        // makes every sample panic inside `run_iteration`; the batch must
        // report each as a `Panicked` outcome (and stream the panic event)
        // without aborting.
        let mut cfg = quick_config(GeneratorKind::McVerSiRand, None);
        cfg.mcversi.testgen.num_threads = cfg.mcversi.system.num_cores + 1;
        let mut sink = CollectSink::new();
        let outcomes = run_samples_streamed(&cfg.clone().with_parallelism(2), 3, 5, &mut sink);
        assert_eq!(outcomes.len(), 3);
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                SampleOutcome::Panicked { seed, message } => {
                    assert_eq!(*seed, 5 + i as u64);
                    assert!(message.contains("threads"), "unexpected panic: {message}");
                }
                other => panic!("expected a panic outcome, got {other:?}"),
            }
        }
        assert!(sink.results().is_empty(), "no sample completed");
    }

    #[test]
    fn streamed_events_arrive_in_per_sample_order() {
        use crate::sink::CampaignEvent;

        #[derive(Debug, Default)]
        struct Recorder(Vec<CampaignEvent>);
        impl CampaignSink for Recorder {
            fn on_event(&mut self, event: &CampaignEvent) {
                self.0.push(event.clone());
            }
        }

        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso));
        let mut recorder = Recorder::default();
        let outcomes = run_samples_streamed(&cfg, 2, 3, &mut recorder);
        assert_eq!(outcomes.len(), 2);

        for seed in [3u64, 4] {
            let events: Vec<&CampaignEvent> = recorder
                .0
                .iter()
                .filter(|e| match e {
                    CampaignEvent::SampleStart { seed: s, .. }
                    | CampaignEvent::TestRun { seed: s, .. }
                    | CampaignEvent::Violation { seed: s, .. }
                    | CampaignEvent::SamplePanic { seed: s, .. }
                    | CampaignEvent::Metrics { seed: s, .. } => *s == seed,
                    CampaignEvent::SampleDone { result } => result.seed == seed,
                    _ => false,
                })
                .collect();
            assert!(
                matches!(events.first(), Some(CampaignEvent::SampleStart { .. })),
                "first event of seed {seed} must be SampleStart"
            );
            assert!(
                matches!(events.last(), Some(CampaignEvent::SampleDone { .. })),
                "last event of seed {seed} must be SampleDone"
            );
            // Test-run indices are strictly increasing within the sample.
            let runs: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    CampaignEvent::TestRun { run, .. } => Some(*run),
                    _ => None,
                })
                .collect();
            assert!(!runs.is_empty());
            assert!(runs.windows(2).all(|w| w[0] < w[1]), "runs: {runs:?}");
            // The collected SampleDone result matches the returned outcome,
            // and a found bug was announced through a Violation event.
            let done_found = events
                .iter()
                .any(|e| matches!(e, CampaignEvent::SampleDone { result } if result.found));
            let violated = events
                .iter()
                .any(|e| matches!(e, CampaignEvent::Violation { .. }));
            assert_eq!(done_found, violated);
        }
    }

    /// The telemetry differential: metric recording must never change what a
    /// campaign does.  A metrics-enabled run (with the global telemetry flag
    /// forced on) produces the same deterministic result fields as a
    /// metrics-off run — i.e. results are bit-identical to the pre-telemetry
    /// behaviour.
    #[test]
    fn metrics_do_not_change_campaign_results() {
        let base = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso))
            .with_prune(StaticPrune::Penalize);
        let off = run_campaign(&base, 11);
        assert!(off.metrics.is_none(), "metrics off leaves no snapshot");
        let on = run_campaign(&base.clone().with_metrics(0), 11);
        assert_eq!(fingerprint(&off), fingerprint(&on));
        assert_eq!(off.pruned, on.pruned);
        let snapshot = on.metrics.expect("metrics on yields a snapshot");
        assert!(
            snapshot.timers.contains_key("phase.generate"),
            "phase timers recorded: {:?}",
            snapshot.timers.keys().collect::<Vec<_>>()
        );
    }

    /// Counters and histograms (the deterministic part of a snapshot) are
    /// identical across repeated runs with the same seed; wall-clock timers
    /// are exempt.
    #[test]
    fn metrics_snapshots_are_deterministic_under_a_fixed_seed() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso)).with_metrics(0);
        let first = run_campaign(&cfg, 13).metrics.unwrap();
        let second = run_campaign(&cfg, 13).metrics.unwrap();
        assert!(!first.counters.is_empty(), "simulator counters recorded");
        assert_eq!(first.deterministic_part(), second.deterministic_part());
    }

    /// Collective checking is a pure evaluation-order optimisation: for the
    /// same seed it reaches the verdict of per-execution checking — same
    /// `found`, same bug detail, same discovering run — and, when no bug is
    /// found (so every iteration of every run is evaluated in both modes),
    /// the full result fingerprint matches bit-for-bit.
    #[test]
    fn collective_checking_matches_per_exec_verdicts() {
        for (bug, seed) in [(None, 17u64), (Some(Bug::LqNoTso), 3)] {
            let base = quick_config(GeneratorKind::McVerSiRand, bug);
            let per = run_campaign(&base, seed);
            let coll = run_campaign(&base.clone().with_checking(CheckingMode::Collective), seed);
            assert_eq!(
                (per.found, &per.detail, per.found_at_run),
                (coll.found, &coll.detail, coll.found_at_run),
                "verdicts diverge for bug {bug:?}"
            );
            if !per.found {
                assert_eq!(fingerprint(&per), fingerprint(&coll));
            }
            assert!(per.dedup.is_none(), "per-exec reports no dedup stats");
            let dedup = coll.dedup.expect("collective reports dedup stats");
            assert!(dedup.executions > 0, "stats cover the campaign: {dedup:?}");
            assert_eq!(
                dedup.cache_hits + dedup.cache_misses,
                dedup.executions,
                "every complete execution is either a hit or a miss: {dedup:?}"
            );
            assert!(
                dedup.checker_calls + dedup.oracle_valid + dedup.cache_hits >= dedup.executions,
                "every execution is accounted for: {dedup:?}"
            );
        }
    }

    /// The headline acceptance criterion: on a repeated-litmus campaign,
    /// signature deduplication plus the cycle oracle cut `Checker::check`
    /// invocations by at least 5x (measured through the `mcm.checks`
    /// telemetry counter, which `try_check` increments exactly once per
    /// checked execution).
    #[test]
    fn collective_checking_cuts_checker_invocations_at_least_five_fold() {
        let mcversi = McVerSiConfig::small()
            .with_test_size(32)
            .with_iterations(30);
        let base = CampaignConfig::new(
            GeneratorKind::DiyLitmus,
            None,
            mcversi,
            12,
            Duration::from_secs(120),
        )
        .with_metrics(0);
        let per = run_campaign(&base, 5);
        let coll = run_campaign(&base.clone().with_checking(CheckingMode::Collective), 5);
        let checks = |r: &CampaignResult| {
            *r.metrics
                .as_ref()
                .expect("metrics enabled")
                .counters
                .get("mcm.checks")
                .unwrap_or(&0)
        };
        let (per_checks, coll_checks) = (checks(&per), checks(&coll));
        assert!(per_checks > 0, "per-exec mode checks every iteration");
        assert!(
            per_checks >= 5 * coll_checks.max(1),
            "expected a >=5x reduction in Checker::check invocations, \
             got per_exec={per_checks} collective={coll_checks}"
        );
        let dedup = coll.dedup.expect("collective reports dedup stats");
        assert_eq!(
            dedup.checker_calls, coll_checks,
            "the runner's own accounting agrees with telemetry"
        );
    }

    /// With a streaming cadence, cumulative `Metrics` events arrive inside
    /// the sample's event window, at exactly the configured run indices.
    #[test]
    fn metrics_events_stream_at_the_configured_cadence() {
        #[derive(Debug, Default)]
        struct Recorder(Vec<CampaignEvent>);
        impl CampaignSink for Recorder {
            fn on_event(&mut self, event: &CampaignEvent) {
                self.0.push(event.clone());
            }
        }

        let mut cfg = quick_config(GeneratorKind::McVerSiRand, None).with_metrics(2);
        cfg.max_test_runs = 6;
        let mut recorder = Recorder::default();
        let outcomes = run_samples_streamed(&cfg, 1, 21, &mut recorder);
        assert_eq!(outcomes.len(), 1);

        let metric_runs: Vec<usize> = recorder
            .0
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Metrics { run, .. } => Some(*run),
                _ => None,
            })
            .collect();
        assert_eq!(metric_runs, vec![2, 4, 6]);
        // Cumulative: later snapshots dominate earlier ones counter-wise.
        let snapshots: Vec<&MetricsSnapshot> = recorder
            .0
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Metrics { snapshot, .. } => Some(snapshot),
                _ => None,
            })
            .collect();
        for pair in snapshots.windows(2) {
            for (name, count) in &pair[0].counters {
                assert!(
                    pair[1].counters.get(name).is_some_and(|c| c >= count),
                    "counter {name} must be cumulative"
                );
            }
        }
        // The metrics events sit between SampleStart and SampleDone.
        let start = recorder
            .0
            .iter()
            .position(|e| matches!(e, CampaignEvent::SampleStart { .. }))
            .unwrap();
        let done = recorder
            .0
            .iter()
            .position(|e| matches!(e, CampaignEvent::SampleDone { .. }))
            .unwrap();
        for (i, event) in recorder.0.iter().enumerate() {
            if matches!(event, CampaignEvent::Metrics { .. }) {
                assert!(start < i && i < done, "metrics inside the sample window");
            }
        }
    }

    /// Panic isolation holds with metrics enabled, and the drained panics are
    /// countable through the telemetry event counter.
    #[test]
    fn panicking_samples_are_isolated_and_counted_with_metrics_enabled() {
        let mut cfg = quick_config(GeneratorKind::McVerSiRand, None).with_metrics(1);
        cfg.mcversi.testgen.num_threads = cfg.mcversi.system.num_cores + 1;
        telemetry::enable();
        telemetry::reset_local();
        let mut sink = CollectSink::new();
        let outcomes = run_samples_streamed(&cfg.clone().with_parallelism(2), 3, 5, &mut sink);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SampleOutcome::Panicked { .. })));
        assert!(sink.results().is_empty(), "no sample completed");
        // The drain loop runs on this thread, so its counter is visible here.
        let snapshot = telemetry::local_snapshot();
        assert_eq!(snapshot.counters["events.sample_panic"], 3);
    }

    #[test]
    fn panicked_sample_becomes_sentinel_result() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, None);
        let outcome = SampleOutcome::Panicked {
            seed: 9,
            message: "boom".to_string(),
        };
        let result = outcome.into_result(&cfg);
        assert!(!result.found);
        assert_eq!(result.seed, 9);
        assert_eq!(result.detail.as_deref(), Some("sample panicked: boom"));
        assert_eq!(result.test_runs, 0);
    }

    #[test]
    fn expired_shared_budget_stops_samples_immediately() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, None)
            .with_shared_wall_time(Duration::ZERO)
            .with_parallelism(2);
        let results = run_samples(&cfg, 3, 1);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.test_runs, 0, "expired shared budget must stop the batch");
            assert!(!r.found);
        }
    }

    #[test]
    fn effective_parallelism_is_bounded() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, None);
        assert_eq!(cfg.clone().with_parallelism(8).effective_parallelism(3), 3);
        assert_eq!(cfg.clone().with_parallelism(2).effective_parallelism(3), 2);
        assert!(cfg.effective_parallelism(64) >= 1);
    }
}
