//! Verification campaigns: generator × bug runs and coverage runs.
//!
//! A *campaign* corresponds to one cell of the paper's Table 4: a particular
//! test generator attacking a particular (injected) bug with a bounded budget.
//! The paper's budget is 24 hours of host wall-clock time per sample; this
//! reproduction expresses the budget both as wall-clock time and as a maximum
//! number of test-runs, so experiments can be scaled to the available compute
//! while keeping the comparison between generators fair (every generator gets
//! the same budget).  Multiple samples (different seeds) run in parallel.

use crate::config::McVerSiConfig;
use crate::generator::{GeneratorKind, TestSource};
use crate::runner::{RunVerdict, TestRunner};
use mcversi_sim::{Bug, BugConfig};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The test generator under evaluation.
    pub generator: GeneratorKind,
    /// The injected bug (or `None` for a coverage campaign on the correct
    /// design, as used for Table 6).
    pub bug: Option<Bug>,
    /// Framework configuration (system, test generation, fitness).
    pub mcversi: McVerSiConfig,
    /// Maximum number of test-runs per sample.
    pub max_test_runs: usize,
    /// Maximum wall-clock time per sample.
    pub max_wall_time: Duration,
}

impl CampaignConfig {
    /// Creates a campaign configuration with the given budget.
    pub fn new(
        generator: GeneratorKind,
        bug: Option<Bug>,
        mcversi: McVerSiConfig,
        max_test_runs: usize,
        max_wall_time: Duration,
    ) -> Self {
        CampaignConfig {
            generator,
            bug,
            mcversi,
            max_test_runs,
            max_wall_time,
        }
    }

    fn bug_config(&self) -> BugConfig {
        match self.bug {
            Some(bug) => BugConfig::single(bug),
            None => BugConfig::none(),
        }
    }

    /// Adjusts the system protocol to the one the bug requires (if any),
    /// returning the effective framework configuration.
    pub fn effective_mcversi(&self) -> McVerSiConfig {
        let mut cfg = self.mcversi.clone();
        if let Some(protocol) = self.bug.and_then(|b| b.required_protocol()) {
            cfg.system.protocol = protocol;
        }
        cfg
    }
}

/// The result of one campaign sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The generator that ran.
    pub generator: GeneratorKind,
    /// The targeted bug, if any.
    pub bug: Option<Bug>,
    /// Sample seed.
    pub seed: u64,
    /// Whether the bug was found within the budget.
    pub found: bool,
    /// Human-readable description of how the bug manifested.
    pub detail: Option<String>,
    /// Number of test-runs executed.
    pub test_runs: usize,
    /// Test-run index (1-based) at which the bug was found, if found.
    pub found_at_run: Option<usize>,
    /// Simulated cycles consumed.
    pub simulated_cycles: u64,
    /// Wall-clock time consumed.
    pub wall_time: Duration,
    /// Maximum total transition coverage reached (Table 6 metric).
    pub max_total_coverage: f64,
    /// Mean NDT of the GP population at the end (0 for stateless generators).
    pub final_mean_ndt: f64,
}

impl CampaignResult {
    /// Fraction of the test-run budget used before the bug was found (1.0 if
    /// not found).  This is the scaled analogue of the paper's
    /// "hours to find the bug" column.
    pub fn normalized_time_to_bug(&self, budget: usize) -> f64 {
        match self.found_at_run {
            Some(run) if budget > 0 => run as f64 / budget as f64,
            _ => 1.0,
        }
    }
}

/// Runs one campaign sample with the given seed.
pub fn run_campaign(config: &CampaignConfig, seed: u64) -> CampaignResult {
    let mcversi = config.effective_mcversi().with_seed(seed);
    let params = mcversi.testgen.clone();
    let mut runner = TestRunner::new(mcversi, config.bug_config());
    let mut source = TestSource::new(config.generator, params, seed.wrapping_add(0x9e37_79b9));
    let start = Instant::now();

    let mut found = false;
    let mut detail = None;
    let mut found_at_run = None;
    let mut test_runs = 0usize;

    while test_runs < config.max_test_runs && start.elapsed() < config.max_wall_time {
        let (id, test, name) = source.next_test();
        let result = runner.run_test(&test);
        test_runs += 1;
        source.feedback(id, &result);
        if result.verdict.is_bug() {
            found = true;
            found_at_run = Some(test_runs);
            detail = Some(match &result.verdict {
                RunVerdict::McmViolation(v) => match name {
                    Some(n) => format!("MCM violation ({}) in litmus test {n}", v.axiom),
                    None => format!("MCM violation of axiom '{}'", v.axiom),
                },
                RunVerdict::ProtocolFault(e) => format!("protocol fault: {e}"),
                RunVerdict::Hang => "iteration hang (cycle budget exceeded)".to_string(),
                RunVerdict::Passed => unreachable!(),
            });
            break;
        }
    }

    CampaignResult {
        generator: config.generator,
        bug: config.bug,
        seed,
        found,
        detail,
        test_runs,
        found_at_run,
        simulated_cycles: runner.total_cycles(),
        wall_time: start.elapsed(),
        max_total_coverage: runner.total_coverage(),
        final_mean_ndt: source.population_mean_ndt(),
    }
}

/// Runs `samples` independent samples of a campaign (different seeds) in
/// parallel and returns their results in seed order.
pub fn run_samples(config: &CampaignConfig, samples: usize, base_seed: u64) -> Vec<CampaignResult> {
    if samples == 0 {
        return Vec::new();
    }
    let mut results: Vec<Option<CampaignResult>> = (0..samples).map(|_| None).collect();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (i, slot) in results.iter_mut().enumerate() {
            let config = &*config;
            handles.push(scope.spawn(move |_| {
                *slot = Some(run_campaign(config, base_seed + i as u64));
            }));
        }
        for h in handles {
            h.join().expect("campaign sample thread panicked");
        }
    })
    .expect("campaign scope failed");
    results.into_iter().map(|r| r.expect("sample ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_sim::ProtocolKind;

    fn quick_config(generator: GeneratorKind, bug: Option<Bug>) -> CampaignConfig {
        let mcversi = McVerSiConfig::small().with_test_size(32).with_iterations(3);
        CampaignConfig::new(generator, bug, mcversi, 40, Duration::from_secs(60))
    }

    #[test]
    fn correct_design_campaign_finds_nothing() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, None);
        let result = run_campaign(&cfg, 1);
        assert!(!result.found);
        assert_eq!(result.test_runs, 40);
        assert!(result.max_total_coverage > 0.0);
        assert!(result.found_at_run.is_none());
        assert_eq!(result.normalized_time_to_bug(40), 1.0);
    }

    #[test]
    fn lq_no_tso_is_found_by_random_generation() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::LqNoTso));
        let result = run_campaign(&cfg, 3);
        assert!(result.found, "LQ+no-TSO should be easy to find: {result:?}");
        assert!(result.detail.is_some());
        assert!(result.normalized_time_to_bug(40) <= 1.0);
    }

    #[test]
    fn bug_protocol_requirement_overrides_system_protocol() {
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::TsoCcCompare));
        assert_eq!(cfg.effective_mcversi().system.protocol, ProtocolKind::TsoCc);
        let cfg = quick_config(GeneratorKind::McVerSiRand, Some(Bug::MesiLqEInv));
        assert_eq!(cfg.effective_mcversi().system.protocol, ProtocolKind::Mesi);
    }

    #[test]
    fn parallel_samples_use_distinct_seeds() {
        let cfg = quick_config(GeneratorKind::DiyLitmus, Some(Bug::LqNoTso));
        let results = run_samples(&cfg, 3, 10);
        assert_eq!(results.len(), 3);
        let seeds: Vec<u64> = results.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![10, 11, 12]);
    }
}
