//! The guest–host interface (paper Table 1).
//!
//! In the paper, a minimal *guest workload* runs inside the simulated system
//! and drives the generate–execute–verify–reset cycle; the listed functions
//! are implemented either inside the guest or — for speed — with host
//! assistance.  In this reproduction the "guest" is the set of simulated
//! cores executing a [`TestProgram`] and the "host" is the [`System`] object
//! itself, so every function is host-assisted (the configuration the paper
//! found mandatory for very short tests).  The trait keeps the interface
//! explicit so the correspondence with Table 1 and Algorithm 2 is visible,
//! and so alternative simulators could be slotted in behind it.

use crate::lowering::lower;
use mcversi_mcm::checker::{Checker, Verdict};
use mcversi_mcm::{Address, ModelKind};
use mcversi_sim::{BugConfig, IterationOutcome, System, TestProgram};
use mcversi_testgen::Test;

/// The functions the simulation host provides to the guest workload
/// (paper Table 1).
pub trait HostInterface {
    /// Coarse barrier: threads need not be precisely synchronised.
    fn barrier_wait_coarse(&mut self);

    /// Precise (host-assisted) barrier: on return all threads start the test
    /// in lock step.  The paper found host assistance mandatory here.
    fn barrier_wait_precise(&mut self);

    /// The host writes the code for the current test of every thread
    /// (on-the-fly code emission).
    fn make_test_thread(&mut self, test: &Test);

    /// Declares the test generator's usable address range.
    fn mark_test_mem_range(&mut self, start: Address, end: Address);

    /// Resets (writes initial values to) the locations used by the test and
    /// flushes cache lines and other structures affecting following
    /// executions.
    fn reset_test_mem(&mut self);

    /// Executes the staged test once (one iteration).  This stands in for the
    /// guest's `execute code` step between the barriers in Algorithm 2.
    fn execute_test(&mut self) -> IterationOutcome;

    /// Verifies the last execution against the target MCM and clears only the
    /// conflict orders of the candidate execution object (between iterations
    /// of one test-run).
    fn verify_reset_conflict(&mut self, outcome: &IterationOutcome) -> Verdict;

    /// Verifies the last execution, clears the entire candidate execution
    /// object and sets up for the next test (end of a test-run).
    fn verify_reset_all(&mut self, outcome: &IterationOutcome) -> Verdict;
}

/// The host implementation backed by the cycle-level simulator.
#[derive(Debug)]
pub struct SimHost {
    system: System,
    staged: Option<TestProgram>,
    test_mem_range: Option<(Address, Address)>,
    model: ModelKind,
}

impl SimHost {
    /// Creates a host around a freshly constructed system, verifying against
    /// x86-TSO (the paper's target model).
    pub fn new(cfg: mcversi_sim::SystemConfig, bugs: BugConfig, seed: u64) -> Self {
        Self::with_model(cfg, bugs, seed, ModelKind::Tso)
    }

    /// Creates a host verifying executions against the given target model.
    pub fn with_model(
        cfg: mcversi_sim::SystemConfig,
        bugs: BugConfig,
        seed: u64,
        model: ModelKind,
    ) -> Self {
        SimHost {
            system: System::new(cfg, bugs, seed),
            staged: None,
            test_mem_range: None,
            model,
        }
    }

    /// The target consistency model this host checks against.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The pipeline strength of the simulated cores behind this host.
    pub fn core_strength(&self) -> mcversi_sim::CoreStrength {
        self.system.config().core_strength
    }

    /// Access to the underlying system (coverage, statistics).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// The declared test memory range, if any.
    pub fn test_mem_range(&self) -> Option<(Address, Address)> {
        self.test_mem_range
    }

    /// A stable identity hash of the currently staged test program (0 when
    /// nothing is staged).  Execution signatures are scoped by this value so
    /// outcomes of different tests can never be confused.
    pub fn staged_fingerprint(&self) -> u64 {
        let Some(program) = &self.staged else {
            return 0;
        };
        // FNV-1a over the program's debug rendering: deterministic within a
        // build, collision-free in practice for the handful of programs one
        // campaign stages, and requires no `Hash` impl on `TestProgram`.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in format!("{program:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Checks a single recorded execution against the target model, treating
    /// malformed executions as vacuously valid (mirroring
    /// [`HostInterface::verify_reset_conflict`]'s behaviour).
    pub fn check_execution(&self, exec: &mcversi_mcm::CandidateExecution) -> Verdict {
        self.checker().try_check(exec).unwrap_or(Verdict::Valid)
    }

    fn checker(&self) -> Checker<'static> {
        Checker::new(self.model.instance())
    }
}

impl HostInterface for SimHost {
    fn barrier_wait_coarse(&mut self) {
        // All simulated threads are stepped by the same clock, so the coarse
        // barrier has nothing to do.
    }

    fn barrier_wait_precise(&mut self) {
        // Host-assisted precise barrier: `execute_test` starts all threads at
        // cycle 0 of the iteration, which is exactly the lock-step start the
        // paper's host barrier provides.
    }

    fn make_test_thread(&mut self, test: &Test) {
        self.staged = Some(lower(test));
    }

    fn mark_test_mem_range(&mut self, start: Address, end: Address) {
        self.test_mem_range = Some((start, end));
    }

    fn reset_test_mem(&mut self) {
        self.system.reset_test_state();
    }

    fn execute_test(&mut self) -> IterationOutcome {
        let program = self
            .staged
            .clone()
            .expect("make_test_thread must be called before execute_test");
        self.system.run_iteration(&program)
    }

    fn verify_reset_conflict(&mut self, outcome: &IterationOutcome) -> Verdict {
        // The per-iteration execution object is already a fresh object per
        // iteration in this implementation, so "clearing conflict orders"
        // amounts to simply dropping it after checking.
        self.checker()
            .try_check(&outcome.execution)
            .unwrap_or(Verdict::Valid)
    }

    fn verify_reset_all(&mut self, outcome: &IterationOutcome) -> Verdict {
        self.checker()
            .try_check(&outcome.execution)
            .unwrap_or(Verdict::Valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McVerSiConfig;
    use mcversi_testgen::{RandomTestGenerator, TestGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn host_executes_staged_tests_and_verifies_them() {
        let cfg = McVerSiConfig::small();
        let mut host = SimHost::new(cfg.system.clone(), BugConfig::none(), 3);
        let params = TestGenParams::small().with_threads(cfg.system.num_cores);
        let test = RandomTestGenerator::new(params.clone()).generate(&mut StdRng::seed_from_u64(1));
        host.mark_test_mem_range(
            params.offset_to_address(0),
            params.offset_to_address(params.test_memory_bytes - params.stride_bytes),
        );
        assert!(host.test_mem_range().is_some());
        host.barrier_wait_coarse();
        host.make_test_thread(&test);
        host.barrier_wait_precise();
        let outcome = host.execute_test();
        assert!(outcome.complete, "{outcome:?}");
        let verdict = host.verify_reset_conflict(&outcome);
        assert!(verdict.is_valid());
        host.reset_test_mem();
        let outcome2 = host.execute_test();
        assert!(host.verify_reset_all(&outcome2).is_valid());
        assert!(host.system().coverage().distinct_covered() > 0);
    }

    #[test]
    #[should_panic(expected = "make_test_thread")]
    fn executing_without_staging_panics() {
        let cfg = McVerSiConfig::small();
        let mut host = SimHost::new(cfg.system, BugConfig::none(), 3);
        host.execute_test();
    }
}
