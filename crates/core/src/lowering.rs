//! Lowering generated tests to executable programs.
//!
//! The paper's framework compiles tests on-the-fly to the target ISA (x86-64
//! in the evaluation) and the host writes the code into each guest thread's
//! buffer.  In this reproduction the "ISA" is the simulator's abstract
//! [`TestOp`] language; lowering assigns every dynamic write its globally
//! unique, non-zero value (the write-unique-ID scheme of §4.1) and preserves
//! the per-thread program order of the chromosome.
//!
//! Lowering is core-strength-agnostic: the same lowered program runs on the
//! strong and the relaxed pipeline (`mcversi_sim::CoreStrength`), and the
//! dependency-carrying operation kinds survive lowering so both the relaxed
//! core's stalls and the observer's dependency edges see them.  See
//! `ARCHITECTURE.md` for the full chromosome → checker pipeline walkthrough.

use mcversi_sim::{TestOp, TestProgram};
use mcversi_testgen::{OpKind, Test};

/// Lowers a test to an executable program.
///
/// Write values are assigned sequentially starting from 1, so they are unique
/// across the whole program and never collide with the initial value 0.
pub fn lower(test: &Test) -> TestProgram {
    let mut next_value = 1u64;
    let mut threads = Vec::with_capacity(test.num_threads());
    for ops in test.threads() {
        let mut program = Vec::with_capacity(ops.len());
        for op in ops {
            let lowered = match op.kind {
                OpKind::Read => TestOp::read(op.addr),
                OpKind::ReadAddrDp => TestOp::read_addr_dp(op.addr),
                OpKind::Write => {
                    let v = next_value;
                    next_value += 1;
                    TestOp::write(op.addr, v)
                }
                OpKind::WriteDataDp => {
                    let v = next_value;
                    next_value += 1;
                    TestOp::write_data_dp(op.addr, v)
                }
                OpKind::WriteCtrlDp => {
                    let v = next_value;
                    next_value += 1;
                    TestOp::write_ctrl_dp(op.addr, v)
                }
                OpKind::ReadModifyWrite => {
                    let v = next_value;
                    next_value += 1;
                    TestOp::rmw(op.addr, v)
                }
                OpKind::CacheFlush => TestOp::flush(op.addr),
                OpKind::Delay => TestOp::delay((op.addr.0 as u32).max(1)),
                OpKind::Fence | OpKind::FenceAcquire | OpKind::FenceRelease | OpKind::FenceLw => {
                    TestOp::fence_of(op.kind.fence_kind().expect("fence ops have fence kinds"))
                }
            };
            program.push(lowered);
        }
        threads.push(program);
    }
    TestProgram::new(threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcversi_mcm::Address;
    use mcversi_testgen::{Gene, Op, RandomTestGenerator, TestGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lowering_preserves_structure_and_assigns_unique_values() {
        let params = TestGenParams::small();
        let gen = RandomTestGenerator::new(params.clone());
        let test = gen.generate(&mut StdRng::seed_from_u64(3));
        let program = lower(&test);
        assert_eq!(program.num_threads(), test.num_threads());
        assert_eq!(program.total_ops(), test.len());
        assert!(program.written_values_unique());
        // Per-thread op counts match.
        for (pid, ops) in test.threads().iter().enumerate() {
            assert_eq!(program.thread(pid).len(), ops.len());
        }
    }

    #[test]
    fn op_kinds_map_one_to_one() {
        let x = Address(0x10_0000);
        let test = Test::new(
            vec![
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Write, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Read, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::ReadAddrDp, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::ReadModifyWrite, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::CacheFlush, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Delay, Address(7)),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::Fence, Address(0)),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::WriteDataDp, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::WriteCtrlDp, x),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::FenceAcquire, Address(0)),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::FenceRelease, Address(0)),
                },
                Gene {
                    pid: 0,
                    op: Op::new(OpKind::FenceLw, Address(0)),
                },
            ],
            1,
        );
        let program = lower(&test);
        let t0 = program.thread(0);
        assert_eq!(t0.len(), 12);
        assert!(matches!(
            t0[0].kind,
            mcversi_sim::TestOpKind::Write { value: 1 }
        ));
        assert!(matches!(t0[1].kind, mcversi_sim::TestOpKind::Read));
        assert!(matches!(t0[2].kind, mcversi_sim::TestOpKind::ReadAddrDp));
        assert!(matches!(
            t0[3].kind,
            mcversi_sim::TestOpKind::ReadModifyWrite { value: 2 }
        ));
        assert!(matches!(t0[4].kind, mcversi_sim::TestOpKind::CacheFlush));
        assert!(matches!(
            t0[5].kind,
            mcversi_sim::TestOpKind::Delay { cycles: 7 }
        ));
        use mcversi_mcm::FenceKind;
        assert!(matches!(
            t0[6].kind,
            mcversi_sim::TestOpKind::Fence {
                kind: FenceKind::Full
            }
        ));
        assert!(matches!(
            t0[7].kind,
            mcversi_sim::TestOpKind::WriteDataDp { value: 3 }
        ));
        assert!(matches!(
            t0[8].kind,
            mcversi_sim::TestOpKind::WriteCtrlDp { value: 4 }
        ));
        assert!(matches!(
            t0[9].kind,
            mcversi_sim::TestOpKind::Fence {
                kind: FenceKind::Acquire
            }
        ));
        assert!(matches!(
            t0[10].kind,
            mcversi_sim::TestOpKind::Fence {
                kind: FenceKind::Release
            }
        ));
        assert!(matches!(
            t0[11].kind,
            mcversi_sim::TestOpKind::Fence {
                kind: FenceKind::LightweightSync
            }
        ));
        assert!(program.written_values_unique());
    }

    #[test]
    fn delay_of_zero_is_clamped_to_one_cycle() {
        let test = Test::new(
            vec![Gene {
                pid: 0,
                op: Op::new(OpKind::Delay, Address(0)),
            }],
            1,
        );
        let program = lower(&test);
        assert!(matches!(
            program.thread(0)[0].kind,
            mcversi_sim::TestOpKind::Delay { cycles: 1 }
        ));
    }
}
