//! Store buffer (and store-queue forwarding) model.
//!
//! Under TSO a core's committed stores sit in a FIFO store buffer until they
//! are written to the cache; loads of the same core may read ("forward") the
//! newest buffered value for their address.  The `SQ+no-FIFO` bug drains the
//! buffer out of order, which is directly observable as write→write
//! reordering by other cores.

use mcversi_mcm::Address;
use rand::Rng;
use std::collections::VecDeque;

/// One committed store waiting to be written to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferEntry {
    /// Program-order index of the store instruction.
    pub poi: u32,
    /// Written address.
    pub addr: Address,
    /// Written (globally unique) value.
    pub value: u64,
}

/// A bounded FIFO store buffer.
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<StoreBufferEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a store buffer holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if no further store can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a committed store.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; callers must check [`is_full`](Self::is_full)
    /// before retiring a store.
    pub fn push(&mut self, entry: StoreBufferEntry) {
        assert!(!self.is_full(), "store buffer overflow");
        self.entries.push_back(entry);
    }

    /// The newest buffered value for `addr`, if any (store-to-load forwarding).
    pub fn forward_value(&self, addr: Address) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Removes and returns the next store to drain to the cache.
    ///
    /// The correct design drains in FIFO order; with `out_of_order` set (the
    /// `SQ+no-FIFO` bug) a random entry is chosen instead.
    pub fn begin_drain<R: Rng>(
        &mut self,
        out_of_order: bool,
        rng: &mut R,
    ) -> Option<StoreBufferEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let idx = if out_of_order && self.entries.len() > 1 {
            rng.gen_range(0..self.entries.len())
        } else {
            0
        };
        self.entries.remove(idx)
    }

    /// Drops all buffered stores (used when a test iteration is abandoned).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(poi: u32, addr: u64, value: u64) -> StoreBufferEntry {
        StoreBufferEntry {
            poi,
            addr: Address(addr),
            value,
        }
    }

    #[test]
    fn fifo_drain_preserves_program_order() {
        let mut sb = StoreBuffer::new(8);
        for i in 0..5 {
            sb.push(entry(i, 0x100 + i as u64 * 8, i as u64 + 1));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut drained = Vec::new();
        while let Some(e) = sb.begin_drain(false, &mut rng) {
            drained.push(e.poi);
        }
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(sb.is_empty());
    }

    #[test]
    fn out_of_order_drain_eventually_reorders() {
        // With many trials the buggy drain must produce at least one
        // non-FIFO order (statistically certain with this seed count).
        let mut rng = StdRng::seed_from_u64(2);
        let mut reordered = false;
        for _ in 0..50 {
            let mut sb = StoreBuffer::new(8);
            for i in 0..4 {
                sb.push(entry(i, 0x100 + i as u64 * 8, i as u64 + 1));
            }
            let mut drained = Vec::new();
            while let Some(e) = sb.begin_drain(true, &mut rng) {
                drained.push(e.poi);
            }
            assert_eq!(drained.len(), 4);
            if drained != vec![0, 1, 2, 3] {
                reordered = true;
            }
        }
        assert!(reordered, "SQ+no-FIFO drain never reordered");
    }

    #[test]
    fn forwarding_returns_newest_matching_value() {
        let mut sb = StoreBuffer::new(8);
        sb.push(entry(0, 0x100, 1));
        sb.push(entry(1, 0x200, 2));
        sb.push(entry(2, 0x100, 3));
        assert_eq!(sb.forward_value(Address(0x100)), Some(3));
        assert_eq!(sb.forward_value(Address(0x200)), Some(2));
        assert_eq!(sb.forward_value(Address(0x300)), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sb = StoreBuffer::new(2);
        sb.push(entry(0, 0x100, 1));
        assert!(!sb.is_full());
        sb.push(entry(1, 0x108, 2));
        assert!(sb.is_full());
        assert_eq!(sb.len(), 2);
        sb.clear();
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn pushing_into_full_buffer_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(entry(0, 0x100, 1));
        sb.push(entry(1, 0x108, 2));
    }
}
