//! Store buffer (and store-queue forwarding) model.
//!
//! Under TSO a core's committed stores sit in a FIFO store buffer until they
//! are written to the cache; loads of the same core may read ("forward") the
//! newest buffered value for their address.  The `SQ+no-FIFO` bug drains the
//! buffer out of order, which is directly observable as write→write
//! reordering by other cores.
//!
//! The relaxed core ([`CoreStrength::Relaxed`]) uses the same buffer but
//! drains it through [`StoreBuffer::begin_drain_relaxed`]: any entry may
//! drain next as long as no older entry targets the same address (coherence)
//! and no store-ordering fence separates it from an older entry.  Fences are
//! tracked as *epochs* ([`StoreBufferEntry::epoch`]): the core bumps its
//! epoch counter whenever a store-ordering fence retires, so entries of a
//! newer epoch may never overtake entries of an older one.
//!
//! [`CoreStrength::Relaxed`]: crate::config::CoreStrength::Relaxed

use mcversi_mcm::Address;
use rand::Rng;
use std::collections::VecDeque;

/// One committed store waiting to be written to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferEntry {
    /// Program-order index of the store instruction.
    pub poi: u32,
    /// Written address.
    pub addr: Address,
    /// Written (globally unique) value.
    pub value: u64,
    /// Store-ordering epoch: entries of a newer (larger) epoch are separated
    /// from older entries by a store-ordering fence and may not overtake them
    /// in the relaxed drain.  The strong core leaves this at 0 (FIFO drain
    /// ignores it).
    pub epoch: u32,
}

impl StoreBufferEntry {
    /// Creates an epoch-0 entry (the strong core's FIFO drain never consults
    /// the epoch).
    pub fn new(poi: u32, addr: Address, value: u64) -> Self {
        StoreBufferEntry {
            poi,
            addr,
            value,
            epoch: 0,
        }
    }
}

/// A bounded store buffer: FIFO for the strong core, epoch/address-constrained
/// out-of-order for the relaxed core.
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<StoreBufferEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a store buffer holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if no further store can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a committed store.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; callers must check [`is_full`](Self::is_full)
    /// before retiring a store.
    pub fn push(&mut self, entry: StoreBufferEntry) {
        assert!(!self.is_full(), "store buffer overflow");
        debug_assert!(
            self.entries.back().is_none_or(|e| e.epoch <= entry.epoch),
            "store buffer epochs must be nondecreasing in commit order"
        );
        self.entries.push_back(entry);
    }

    /// The newest buffered value for `addr`, if any (store-to-load forwarding).
    pub fn forward_value(&self, addr: Address) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Store-to-load forwarding bounded by program order: the newest buffered
    /// entry for `addr` among entries with `poi < before_poi`.  The whole
    /// entry is returned so callers can compare its program-order index
    /// against other forwarding sources.
    ///
    /// The relaxed core commits stores into the buffer past incomplete older
    /// loads, so — unlike under the strong core's in-order commit — the buffer
    /// may hold stores that are program-order *younger* than a load looking
    /// for a forwarding source; those must not be forwarded.
    pub fn forward_entry_before(&self, addr: Address, before_poi: u32) -> Option<StoreBufferEntry> {
        self.entries
            .iter()
            .filter(|e| e.addr == addr && e.poi < before_poi)
            .max_by_key(|e| e.poi)
            .copied()
    }

    /// Removes and returns the next store to drain to the cache.
    ///
    /// The correct design drains in FIFO order; with `out_of_order` set (the
    /// `SQ+no-FIFO` bug) a random entry is chosen instead.
    pub fn begin_drain<R: Rng>(
        &mut self,
        out_of_order: bool,
        rng: &mut R,
    ) -> Option<StoreBufferEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let idx = if out_of_order && self.entries.len() > 1 {
            rng.gen_range(0..self.entries.len())
        } else {
            0
        };
        self.entries.remove(idx)
    }

    /// Removes and returns the next store to drain under the relaxed core's
    /// ordering rules: a uniformly random entry among those that
    ///
    /// * share the buffer's oldest epoch (no store-ordering fence separates
    ///   them from any older entry), and
    /// * have no older entry to the same address (per-address program order —
    ///   coherence — is preserved).
    pub fn begin_drain_relaxed<R: Rng>(&mut self, rng: &mut R) -> Option<StoreBufferEntry> {
        let oldest_epoch = self.entries.front()?.epoch;
        let eligible: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.epoch == oldest_epoch
                    && !self
                        .entries
                        .iter()
                        .take(*i)
                        .any(|older| older.addr == e.addr)
            })
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!eligible.is_empty(), "the oldest entry is always eligible");
        let idx = eligible[rng.gen_range(0..eligible.len())];
        self.entries.remove(idx)
    }

    /// Drops all buffered stores (used when a test iteration is abandoned).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(poi: u32, addr: u64, value: u64) -> StoreBufferEntry {
        StoreBufferEntry::new(poi, Address(addr), value)
    }

    fn entry_at(poi: u32, addr: u64, value: u64, epoch: u32) -> StoreBufferEntry {
        StoreBufferEntry {
            epoch,
            ..entry(poi, addr, value)
        }
    }

    #[test]
    fn fifo_drain_preserves_program_order() {
        let mut sb = StoreBuffer::new(8);
        for i in 0..5 {
            sb.push(entry(i, 0x100 + i as u64 * 8, i as u64 + 1));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut drained = Vec::new();
        while let Some(e) = sb.begin_drain(false, &mut rng) {
            drained.push(e.poi);
        }
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(sb.is_empty());
    }

    #[test]
    fn out_of_order_drain_eventually_reorders() {
        // With many trials the buggy drain must produce at least one
        // non-FIFO order (statistically certain with this seed count).
        let mut rng = StdRng::seed_from_u64(2);
        let mut reordered = false;
        for _ in 0..50 {
            let mut sb = StoreBuffer::new(8);
            for i in 0..4 {
                sb.push(entry(i, 0x100 + i as u64 * 8, i as u64 + 1));
            }
            let mut drained = Vec::new();
            while let Some(e) = sb.begin_drain(true, &mut rng) {
                drained.push(e.poi);
            }
            assert_eq!(drained.len(), 4);
            if drained != vec![0, 1, 2, 3] {
                reordered = true;
            }
        }
        assert!(reordered, "SQ+no-FIFO drain never reordered");
    }

    #[test]
    fn relaxed_drain_reorders_within_an_epoch() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut reordered = false;
        for _ in 0..50 {
            let mut sb = StoreBuffer::new(8);
            for i in 0..4 {
                sb.push(entry(i, 0x100 + i as u64 * 64, i as u64 + 1));
            }
            let mut drained = Vec::new();
            while let Some(e) = sb.begin_drain_relaxed(&mut rng) {
                drained.push(e.poi);
            }
            assert_eq!(drained.len(), 4);
            if drained != vec![0, 1, 2, 3] {
                reordered = true;
            }
        }
        assert!(reordered, "relaxed drain never reordered unfenced stores");
    }

    #[test]
    fn relaxed_drain_respects_epochs_and_addresses() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut sb = StoreBuffer::new(8);
            // Epoch 0: two stores, one address repeated; epoch 1: one store.
            sb.push(entry_at(0, 0x100, 1, 0));
            sb.push(entry_at(1, 0x200, 2, 0));
            sb.push(entry_at(2, 0x100, 3, 0));
            sb.push(entry_at(3, 0x300, 4, 1));
            let mut drained = Vec::new();
            while let Some(e) = sb.begin_drain_relaxed(&mut rng) {
                drained.push(e.poi);
            }
            // Same-address stores (poi 0 and 2) stay ordered; the fenced
            // store (poi 3) drains last.
            let pos = |poi: u32| drained.iter().position(|&p| p == poi).expect("drained");
            assert!(pos(0) < pos(2), "same-address order violated: {drained:?}");
            assert_eq!(drained.len(), 4);
            assert_eq!(drained[3], 3, "newer epoch overtook a fence: {drained:?}");
        }
    }

    #[test]
    fn forwarding_returns_newest_matching_value() {
        let mut sb = StoreBuffer::new(8);
        sb.push(entry(0, 0x100, 1));
        sb.push(entry(1, 0x200, 2));
        sb.push(entry(2, 0x100, 3));
        assert_eq!(sb.forward_value(Address(0x100)), Some(3));
        assert_eq!(sb.forward_value(Address(0x200)), Some(2));
        assert_eq!(sb.forward_value(Address(0x300)), None);
    }

    #[test]
    fn poi_bounded_forwarding_ignores_younger_stores() {
        let mut sb = StoreBuffer::new(8);
        sb.push(entry(1, 0x100, 1));
        sb.push(entry(5, 0x100, 5));
        // A load at poi 3 sees only the poi-1 store; a load at poi 7 sees the
        // newest one; a load at poi 0 sees nothing.
        let value_before = |poi| {
            sb.forward_entry_before(Address(0x100), poi)
                .map(|e| e.value)
        };
        assert_eq!(value_before(3), Some(1));
        assert_eq!(value_before(7), Some(5));
        assert_eq!(value_before(0), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sb = StoreBuffer::new(2);
        sb.push(entry(0, 0x100, 1));
        assert!(!sb.is_full());
        sb.push(entry(1, 0x108, 2));
        assert!(sb.is_full());
        assert_eq!(sb.len(), 2);
        sb.clear();
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn pushing_into_full_buffer_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(entry(0, 0x100, 1));
        sb.push(entry(1, 0x108, 2));
    }
}
