//! A functionally accurate multicore memory-system simulator.
//!
//! This crate is the *substrate* of the McVerSi reproduction: it stands in for
//! gem5 (full-system, Ruby, GARNET) as the system-under-verification.  It
//! simulates, at cycle granularity:
//!
//! * out-of-order cores with a load queue, a store queue and a store buffer
//!   ([`core`], [`lsq`]) in two pipeline strengths
//!   ([`config::CoreStrength`]): a strong x86-ish pipeline (speculative loads
//!   with squash on forwarded invalidations, FIFO store buffer) and a relaxed
//!   ARM/Power-ish pipeline that genuinely reorders (out-of-order load
//!   performance, early store commit, fence-epoch-bounded out-of-order store
//!   drain);
//! * private L1 caches and a shared, banked (NUCA) L2 directory connected by a
//!   2D-mesh on-chip network ([`network`], [`cache`]);
//! * two cache coherence protocols, modelled functionally so that stale data
//!   affects architectural values: a two-level MESI directory protocol
//!   ([`protocol::mesi`]) and the lazy, timestamp-based TSO-CC protocol
//!   ([`protocol::tsocc`]);
//! * main memory ([`memory`]).
//!
//! On top of the functional model the simulator provides the three hooks
//! McVerSi needs (paper §3–§4):
//!
//! * an [`observer`] that records the conflict orders (`rf`, `co`) of each
//!   test iteration and produces an [`mcversi_mcm::CandidateExecution`];
//! * a [`coverage`] recorder counting coherence-protocol state transitions
//!   (the structural coverage used as GP fitness);
//! * a [`bugs`] registry that injects the 11 bugs studied in the paper's
//!   evaluation (§5.3) into specific protocol/pipeline transitions.
//!
//! The top-level entry point is [`system::System`], which executes a
//! [`program::TestProgram`] and returns an [`system::IterationOutcome`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bugs;
pub mod cache;
pub mod config;
pub mod core;
pub mod coverage;
pub mod lsq;
pub mod memory;
pub mod msg;
pub mod network;
pub mod observer;
pub mod program;
pub mod protocol;
pub mod system;
pub mod types;

pub use bugs::{Bug, BugConfig};
pub use config::{CoreStrength, ProtocolKind, SystemConfig};
pub use core::ObservedOp;
pub use coverage::{CoverageRecorder, Transition};
pub use program::{TestOp, TestOpKind, TestProgram, ThreadProgram};
pub use system::{IterationOutcome, ProtocolError, System};
pub use types::{Cycle, LineAddr, NodeId};

#[cfg(test)]
mod smoke {
    use crate::{BugConfig, ProtocolKind, System, SystemConfig, TestOp, TestProgram};
    use mcversi_mcm::Address;

    /// Crate-level smoke test: one simulated iteration makes cycles progress.
    #[test]
    fn one_iteration_ticks() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 1);
        let program = TestProgram::new(vec![vec![
            TestOp::write(Address(0x100), 1),
            TestOp::read(Address(0x100)),
        ]]);
        let outcome = sys.run_iteration(&program);
        assert!(sys.cycle() > 0, "simulation must consume cycles");
        assert!(
            !outcome.has_hardware_fault(),
            "correct design must not fault"
        );
    }
}
