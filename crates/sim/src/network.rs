//! The on-chip interconnect: a latency/ordering model of a 2D mesh.
//!
//! This stands in for GARNET.  Rather than simulating individual flits and
//! router pipelines, each message is assigned a delivery time of
//! `now + hops * link_latency + jitter`, where `hops` is the Manhattan
//! distance between the endpoints on the mesh and `jitter` is drawn from the
//! seeded simulation RNG (modelling contention).  Ordering guarantees match
//! what the coherence protocols assume of GARNET:
//!
//! * FIFO per (source, destination, virtual network) channel;
//! * no ordering across different channels — in particular an invalidation on
//!   the forward network may overtake a data response, which is exactly the
//!   race the `IS_I` transient state (and the `MESI,LQ+IS,Inv` bug) is about.

use crate::config::SystemConfig;
use crate::msg::{Msg, VirtualNetwork};
use crate::types::{Cycle, NodeId};
use mcversi_telemetry as telemetry;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// Messages injected on the request virtual network.
static NET_REQUEST: telemetry::Counter = telemetry::Counter::new("sim.net.msg.request");
/// Messages injected on the forward virtual network.
static NET_FORWARD: telemetry::Counter = telemetry::Counter::new("sim.net.msg.forward");
/// Messages injected on the response virtual network.
static NET_RESPONSE: telemetry::Counter = telemetry::Counter::new("sim.net.msg.response");

type ChannelKey = (NodeId, NodeId, VirtualNetwork);

/// The mesh interconnect.
#[derive(Debug, Default)]
pub struct Network {
    channels: BTreeMap<ChannelKey, VecDeque<(Cycle, Msg)>>,
    in_flight: usize,
    total_sent: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total number of messages ever sent (statistics).
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Returns `true` if no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Injects a message at time `now`.
    ///
    /// The delivery time is computed from the mesh hop distance plus random
    /// jitter, then clamped so it never precedes the delivery time of the
    /// previously injected message on the same channel (FIFO per channel).
    pub fn send<R: Rng>(&mut self, msg: Msg, now: Cycle, cfg: &SystemConfig, rng: &mut R) {
        let hops = cfg.mesh_hops(msg.src, msg.dst);
        let jitter = if cfg.latency.network_jitter == 0 {
            0
        } else {
            rng.gen_range(0..=cfg.latency.network_jitter)
        };
        let mut deliver_at = now + 1 + hops * cfg.latency.link_hop + jitter;
        let vnet = msg.payload.vnet();
        // Data (response) messages are multi-flit and never overtake earlier
        // single-flit control messages to the same destination, while control
        // messages may overtake data — this is the asymmetry that makes the
        // IS_I race reachable without allowing a stale invalidation to arrive
        // after the data its transaction produced.
        if vnet == VirtualNetwork::Response {
            if let Some(&(last_fwd, _)) = self
                .channels
                .get(&(msg.src, msg.dst, VirtualNetwork::Forward))
                .and_then(|q| q.back())
            {
                deliver_at = deliver_at.max(last_fwd);
            }
        }
        let key = (msg.src, msg.dst, vnet);
        let queue = self.channels.entry(key).or_default();
        if let Some(&(last, _)) = queue.back() {
            deliver_at = deliver_at.max(last);
        }
        queue.push_back((deliver_at, msg));
        self.in_flight += 1;
        self.total_sent += 1;
        match vnet {
            VirtualNetwork::Request => NET_REQUEST.incr(),
            VirtualNetwork::Forward => NET_FORWARD.incr(),
            VirtualNetwork::Response => NET_RESPONSE.incr(),
        }
    }

    /// Removes and returns every message whose delivery time has been reached,
    /// preserving per-channel FIFO order.
    pub fn deliver_due(&mut self, now: Cycle) -> Vec<Msg> {
        let mut out = Vec::new();
        for queue in self.channels.values_mut() {
            while let Some(&(ready, _)) = queue.front() {
                if ready <= now {
                    let (_, msg) = queue.pop_front().expect("front exists");
                    out.push(msg);
                    self.in_flight -= 1;
                } else {
                    break;
                }
            }
        }
        out
    }

    /// The earliest pending delivery time, if any (used to fast-forward the
    /// clock when all components are otherwise idle).
    pub fn next_delivery(&self) -> Option<Cycle> {
        self.channels
            .values()
            .filter_map(|q| q.front().map(|&(t, _)| t))
            .min()
    }

    /// Drops all in-flight messages (used by the host-assisted hard reset).
    pub fn clear(&mut self) {
        self.channels.clear();
        self.in_flight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgPayload;
    use crate::types::LineAddr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn gets(src: u32, dst: u32, line: u64) -> Msg {
        Msg::new(
            NodeId(src),
            NodeId(dst),
            MsgPayload::GetS {
                line: LineAddr(line),
            },
        )
    }

    #[test]
    fn messages_are_delivered_after_latency() {
        let cfg = cfg();
        let mut rng = rng();
        let mut net = Network::new();
        net.send(gets(0, 8, 0x40), 100, &cfg, &mut rng);
        assert_eq!(net.in_flight(), 1);
        assert!(net.deliver_due(100).is_empty(), "not instantaneous");
        // Worst case latency: 1 + hops*link + jitter.
        let worst = 100
            + 1
            + cfg.mesh_hops(NodeId(0), NodeId(8)) * cfg.latency.link_hop
            + cfg.latency.network_jitter;
        let delivered = net.deliver_due(worst);
        assert_eq!(delivered.len(), 1);
        assert!(net.is_empty());
    }

    #[test]
    fn fifo_per_channel() {
        let cfg = cfg();
        let mut rng = rng();
        let mut net = Network::new();
        // Many messages on the same channel: delivery order must match send
        // order even though jitter varies.
        for i in 0..50u64 {
            net.send(gets(0, 8, 0x40 * (i + 1)), i, &cfg, &mut rng);
        }
        let delivered = net.deliver_due(10_000);
        assert_eq!(delivered.len(), 50);
        for (i, msg) in delivered.iter().enumerate() {
            assert_eq!(msg.payload.line(), LineAddr(0x40 * (i as u64 + 1)));
        }
    }

    #[test]
    fn different_vnets_can_reorder() {
        let cfg = cfg();
        let mut net = Network::new();
        // Deterministically construct reordering by zeroing jitter and using
        // payloads on different vnets with different send times such that the
        // later-sent forward arrives earlier than the earlier-sent response
        // would only happen with jitter; instead verify independence: draining
        // one channel does not drain the other.
        let mut rng = rng();
        let data = MsgPayload::DataS {
            line: LineAddr(0x40),
            data: crate::types::LineData::zeroed(64),
            ts: None,
        };
        let inv = MsgPayload::Inv {
            line: LineAddr(0x40),
        };
        net.send(Msg::new(NodeId(8), NodeId(0), data), 0, &cfg, &mut rng);
        net.send(Msg::new(NodeId(8), NodeId(0), inv), 0, &cfg, &mut rng);
        let delivered = net.deliver_due(10_000);
        assert_eq!(delivered.len(), 2);
    }

    #[test]
    fn next_delivery_and_clear() {
        let cfg = cfg();
        let mut rng = rng();
        let mut net = Network::new();
        assert_eq!(net.next_delivery(), None);
        net.send(gets(0, 8, 0x40), 7, &cfg, &mut rng);
        let next = net.next_delivery().expect("one message pending");
        assert!(next > 7);
        net.clear();
        assert!(net.is_empty());
        assert_eq!(net.next_delivery(), None);
    }

    #[test]
    fn statistics_count_sends() {
        let cfg = cfg();
        let mut rng = rng();
        let mut net = Network::new();
        for i in 0..10 {
            net.send(gets(0, 8, 0x40 + i * 64), 0, &cfg, &mut rng);
        }
        net.deliver_due(10_000);
        assert_eq!(net.total_sent(), 10);
        assert!(net.is_empty());
    }
}
