//! The bug registry: the 11 bugs studied in the paper's evaluation (§5.3),
//! plus the dependency-ordering corpus for the relaxed simulator core.
//!
//! Each [`Bug`] is injected by suppressing or corrupting one specific piece of
//! logic in the pipeline or coherence protocol.  Bugs are *injected*, never
//! present by default: a [`BugConfig`] with no bugs enabled is the correct
//! design, and the test suite asserts that the correct design never produces
//! consistency violations.
//!
//! Beyond the paper's Table 4 rows ([`Bug::ALL`]), [`Bug::DEPENDENCY`] holds
//! bugs that violate *dependency ordering* — precisely the class TriCheck
//! locates in the gap between what the implementation reorders and what the
//! model permits.  They suppress one relaxed-pipeline stall each, so they are
//! architecturally invisible on the strong core (whose Peekaboo squash and
//! in-order retirement mask them) and only light up when a
//! [`CoreStrength::Relaxed`] core runs a campaign against a
//! dependency-ordered model (ARMish/POWERish/RMO).
//!
//! [`CoreStrength::Relaxed`]: crate::config::CoreStrength::Relaxed
//!
//! # Adding an injected bug
//!
//! (This mirrors the "adding a model" guide in `mcversi-mcm`'s `model/mod.rs`;
//! a bug is the microarchitectural dual of a model axiom.)
//!
//! 1. Add the variant here with a rustdoc sentence naming the *exact* piece of
//!    logic it suppresses or corrupts, and give it a Table-4-style
//!    [`paper_name`](Bug::paper_name) (`<structure>+<defect>`).
//! 2. Register it in the right corpus constant: [`Bug::ALL`] is pinned to the
//!    paper's 11 rows, so new bugs go into [`Bug::DEPENDENCY`] (or a new
//!    corpus) and automatically into [`Bug::ALL_EXTENDED`], which the
//!    `table4_bug_coverage` experiment sweeps.
//! 3. Declare its preconditions: [`required_protocol`](Bug::required_protocol)
//!    if only one coherence protocol contains the affected logic, and
//!    [`required_core`](Bug::required_core) if only one pipeline strength
//!    exercises it.  Campaigns use these to pick a system configuration in
//!    which the bug is *observable* — an injected bug that the configuration
//!    masks measures nothing.
//! 4. Hook the injection into the component, always as a *suppression or
//!    corruption of existing correct logic* guarded by
//!    `bugs.has(Bug::YourBug)` — never as new behaviour of its own — so the
//!    correct design stays the no-bug fixed point.
//! 5. Pin the expectation end to end: extend the detectability matrix in
//!    `mcversi-bench`'s `core_matrix.rs` (which core strengths and models
//!    catch it, which provably do not) and add a differential test driving a
//!    directed litmus program at it.
//!
//! The corpus-level invariant to preserve: every bug must be *caught* by at
//! least one (generator, model, core) cell and *provably hidden* in at least
//! one other, otherwise it adds no discriminating power to the evaluation.

use crate::config::CoreStrength;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the studied injected bugs.
///
/// The first seven affect the MESI protocol (or its interaction with the load
/// queue), the next two affect TSO-CC, the next two affect the core's
/// load/store queues independently of the protocol (the paper's Table 4 set),
/// and the final four are the dependency-ordering corpus for the relaxed
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bug {
    /// `MESI,LQ+IS,Inv`: the L1 sinks an invalidation received in the IS
    /// transient state but fails to forward the invalidation to the load queue
    /// when the data later arrives (IS_I), allowing read→read reordering.
    MesiLqIsInv,
    /// `MESI,LQ+SM,Inv`: invalidation received in SM is not forwarded to the
    /// load/store queue.
    MesiLqSmInv,
    /// `MESI,LQ+E,Inv`: invalidation (ownership-stripping forward) received in
    /// E is not forwarded to the load queue.
    MesiLqEInv,
    /// `MESI,LQ+M,Inv`: invalidation received in M is not forwarded to the
    /// load queue.
    MesiLqMInv,
    /// `MESI,LQ+S,Replacement`: replacement of a Shared line does not notify
    /// the load queue.
    MesiLqSReplacement,
    /// `MESI+PUTX-Race`: the L2 mishandles the race between an owner's
    /// writeback (PUTX) and an in-flight forwarded request, resulting in an
    /// invalid transition (caught by the protocol monitor, as in Ruby).
    MesiPutxRace,
    /// `MESI+Replace-Race`: on an L2 replacement of a block it believes clean
    /// (granted Exclusive, silently modified), the dirty writeback data is
    /// dropped, losing the modification.
    MesiReplaceRace,
    /// `TSO-CC+no-epoch-ids`: epoch identifiers are ignored when comparing
    /// timestamps, so timestamp resets lead to missed self-invalidations.
    TsoCcNoEpochIds,
    /// `TSO-CC+compare`: the self-invalidation comparison uses `>` instead of
    /// `>=`, missing self-invalidations for writes in the same timestamp group.
    TsoCcCompare,
    /// `LQ+no-TSO`: the load queue does not squash younger performed loads on
    /// a forwarded invalidation.
    LqNoTso,
    /// `SQ+no-FIFO`: the store buffer drains out of order.
    SqNoFifo,
    /// `LQ+no-addr-dep`: the relaxed LSQ issues an address-dependent load
    /// without waiting for its source load to perform.  The strong core's
    /// invalidation squash masks it; on the relaxed core it produces
    /// `MP+dmb+addr`-style dependency-ordering violations.
    LqNoAddrDep,
    /// `SQ+no-data-dep`: the relaxed store queue early-commits a
    /// data-dependent store before its source load performs, enabling
    /// `LB+data` causality cycles (caught by the relaxed models' no-thin-air
    /// axiom).  In-order retirement masks it on the strong core.
    SqNoDataDep,
    /// `SQ+no-ctrl-dep`: like [`Bug::SqNoDataDep`] for control-dependent
    /// stores — the guarding branch is speculated through and never rolled
    /// back.
    SqNoCtrlDep,
    /// `Fence+no-acquire`: the relaxed core lets younger loads issue past a
    /// pending acquire fence (the fence "completes" without flushing the load
    /// queue), breaking read→read ordering through the fence.  Only models
    /// that give acquire fences ordering semantics (the ARM-ish one) can see
    /// it.
    FenceNoAcquire,
}

impl Bug {
    /// All bugs, in the order of the paper's Table 4.
    pub const ALL: [Bug; 11] = [
        Bug::MesiLqIsInv,
        Bug::MesiLqSmInv,
        Bug::MesiLqEInv,
        Bug::MesiLqMInv,
        Bug::MesiLqSReplacement,
        Bug::MesiPutxRace,
        Bug::MesiReplaceRace,
        Bug::TsoCcNoEpochIds,
        Bug::TsoCcCompare,
        Bug::LqNoTso,
        Bug::SqNoFifo,
    ];

    /// The dependency-ordering corpus: bugs invisible to the strong x86-ish
    /// core, detectable only when a relaxed core runs against a
    /// dependency-ordered model.
    pub const DEPENDENCY: [Bug; 4] = [
        Bug::LqNoAddrDep,
        Bug::SqNoDataDep,
        Bug::SqNoCtrlDep,
        Bug::FenceNoAcquire,
    ];

    /// Every injected bug: the paper's Table 4 set followed by the
    /// dependency-ordering corpus.
    pub const ALL_EXTENDED: [Bug; 15] = [
        Bug::MesiLqIsInv,
        Bug::MesiLqSmInv,
        Bug::MesiLqEInv,
        Bug::MesiLqMInv,
        Bug::MesiLqSReplacement,
        Bug::MesiPutxRace,
        Bug::MesiReplaceRace,
        Bug::TsoCcNoEpochIds,
        Bug::TsoCcCompare,
        Bug::LqNoTso,
        Bug::SqNoFifo,
        Bug::LqNoAddrDep,
        Bug::SqNoDataDep,
        Bug::SqNoCtrlDep,
        Bug::FenceNoAcquire,
    ];

    /// The paper's name for the bug (Table 4 row label), or the Table-4-style
    /// name for the extended corpus.
    pub fn paper_name(self) -> &'static str {
        match self {
            Bug::MesiLqIsInv => "MESI,LQ+IS,Inv",
            Bug::MesiLqSmInv => "MESI,LQ+SM,Inv",
            Bug::MesiLqEInv => "MESI,LQ+E,Inv",
            Bug::MesiLqMInv => "MESI,LQ+M,Inv",
            Bug::MesiLqSReplacement => "MESI,LQ+S,Replacement",
            Bug::MesiPutxRace => "MESI+PUTX-Race",
            Bug::MesiReplaceRace => "MESI+Replace-Race",
            Bug::TsoCcNoEpochIds => "TSO-CC+no-epoch-ids",
            Bug::TsoCcCompare => "TSO-CC+compare",
            Bug::LqNoTso => "LQ+no-TSO",
            Bug::SqNoFifo => "SQ+no-FIFO",
            Bug::LqNoAddrDep => "LQ+no-addr-dep",
            Bug::SqNoDataDep => "SQ+no-data-dep",
            Bug::SqNoCtrlDep => "SQ+no-ctrl-dep",
            Bug::FenceNoAcquire => "Fence+no-acquire",
        }
    }

    /// Which protocol the system must run for the bug to be applicable.
    ///
    /// `None` means the bug is protocol-independent (pipeline bugs); the
    /// paper evaluates those on the MESI configuration.
    pub fn required_protocol(self) -> Option<crate::config::ProtocolKind> {
        use crate::config::ProtocolKind::*;
        match self {
            Bug::MesiLqIsInv
            | Bug::MesiLqSmInv
            | Bug::MesiLqEInv
            | Bug::MesiLqMInv
            | Bug::MesiLqSReplacement
            | Bug::MesiPutxRace
            | Bug::MesiReplaceRace => Some(Mesi),
            Bug::TsoCcNoEpochIds | Bug::TsoCcCompare => Some(TsoCc),
            Bug::LqNoTso
            | Bug::SqNoFifo
            | Bug::LqNoAddrDep
            | Bug::SqNoDataDep
            | Bug::SqNoCtrlDep
            | Bug::FenceNoAcquire => None,
        }
    }

    /// Which core pipeline strength the system must run for the bug to be
    /// *observable*.
    ///
    /// `None` means the bug manifests on any core.  The dependency-ordering
    /// corpus returns [`CoreStrength::Relaxed`]: each of those bugs suppresses
    /// a stall that only the relaxed pipeline relies on — on the strong core
    /// the invalidation squash and in-order retirement reestablish the
    /// ordering, so the injection has no architecturally visible effect.
    /// Conversely `LQ+no-TSO` suppresses the Peekaboo squash, which the
    /// relaxed pipeline does not have in the first place, so it is observable
    /// only on the strong core.
    pub fn required_core(self) -> Option<CoreStrength> {
        match self {
            Bug::LqNoAddrDep | Bug::SqNoDataDep | Bug::SqNoCtrlDep | Bug::FenceNoAcquire => {
                Some(CoreStrength::Relaxed)
            }
            Bug::LqNoTso => Some(CoreStrength::Strong),
            _ => None,
        }
    }

    /// Returns `true` for bugs that were real (pre-existing) gem5 bugs in the
    /// paper (marked `*` in §5.3), as opposed to artificially injected ones.
    pub fn real_in_gem5(self) -> bool {
        matches!(
            self,
            Bug::MesiLqIsInv | Bug::MesiLqSmInv | Bug::MesiPutxRace | Bug::LqNoTso
        )
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The set of bugs injected into a simulated system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugConfig {
    enabled: Vec<Bug>,
}

impl BugConfig {
    /// The correct design: no bugs injected.
    pub fn none() -> Self {
        BugConfig::default()
    }

    /// A configuration with exactly one bug injected.
    pub fn single(bug: Bug) -> Self {
        BugConfig { enabled: vec![bug] }
    }

    /// Creates a configuration from a list of bugs.
    pub fn from_bugs<I: IntoIterator<Item = Bug>>(bugs: I) -> Self {
        let mut enabled: Vec<Bug> = bugs.into_iter().collect();
        enabled.sort();
        enabled.dedup();
        BugConfig { enabled }
    }

    /// Returns `true` if `bug` is injected.
    pub fn has(&self, bug: Bug) -> bool {
        self.enabled.contains(&bug)
    }

    /// Returns `true` if no bug is injected.
    pub fn is_correct_design(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Iterates over the injected bugs.
    pub fn iter(&self) -> impl Iterator<Item = Bug> + '_ {
        self.enabled.iter().copied()
    }
}

impl fmt::Display for BugConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled.is_empty() {
            return write!(f, "correct design (no bugs)");
        }
        for (i, b) in self.enabled.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn all_bugs_have_distinct_paper_names() {
        let mut names: Vec<&str> = Bug::ALL_EXTENDED.iter().map(|b| b.paper_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn extended_corpus_is_table4_plus_dependency_bugs() {
        assert_eq!(Bug::ALL.len(), 11, "the paper's Table 4 set is pinned");
        assert_eq!(
            Bug::ALL_EXTENDED.to_vec(),
            Bug::ALL
                .iter()
                .chain(Bug::DEPENDENCY.iter())
                .copied()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn dependency_bugs_require_the_relaxed_core() {
        for bug in Bug::DEPENDENCY {
            assert_eq!(bug.required_core(), Some(CoreStrength::Relaxed), "{bug}");
            assert_eq!(bug.required_protocol(), None, "{bug}");
            assert!(!bug.real_in_gem5(), "{bug}");
        }
        for bug in Bug::ALL {
            // The squash LQ+no-TSO disables only exists in the strong
            // pipeline; every other Table 4 bug is core-agnostic.
            let expected = (bug == Bug::LqNoTso).then_some(CoreStrength::Strong);
            assert_eq!(bug.required_core(), expected, "{bug}");
        }
    }

    #[test]
    fn protocol_requirements() {
        assert_eq!(
            Bug::MesiLqIsInv.required_protocol(),
            Some(ProtocolKind::Mesi)
        );
        assert_eq!(
            Bug::TsoCcCompare.required_protocol(),
            Some(ProtocolKind::TsoCc)
        );
        assert_eq!(Bug::LqNoTso.required_protocol(), None);
        assert_eq!(Bug::SqNoFifo.required_protocol(), None);
    }

    #[test]
    fn real_gem5_bugs_are_the_starred_ones() {
        let real: Vec<Bug> = Bug::ALL
            .iter()
            .copied()
            .filter(|b| b.real_in_gem5())
            .collect();
        assert_eq!(
            real,
            vec![
                Bug::MesiLqIsInv,
                Bug::MesiLqSmInv,
                Bug::MesiPutxRace,
                Bug::LqNoTso
            ]
        );
    }

    #[test]
    fn bug_config_membership() {
        let cfg = BugConfig::single(Bug::LqNoTso);
        assert!(cfg.has(Bug::LqNoTso));
        assert!(!cfg.has(Bug::SqNoFifo));
        assert!(!cfg.is_correct_design());
        assert!(BugConfig::none().is_correct_design());
    }

    #[test]
    fn bug_config_dedups_and_sorts() {
        let cfg = BugConfig::from_bugs([Bug::SqNoFifo, Bug::LqNoTso, Bug::SqNoFifo]);
        assert_eq!(cfg.iter().count(), 2);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Bug::MesiPutxRace), "MESI+PUTX-Race");
        assert_eq!(format!("{}", BugConfig::none()), "correct design (no bugs)");
        assert!(format!("{}", BugConfig::from_bugs([Bug::LqNoTso, Bug::SqNoFifo])).contains(","));
    }
}
