//! The bug registry: the 11 bugs studied in the paper's evaluation (§5.3).
//!
//! Each [`Bug`] is injected by suppressing or corrupting one specific piece of
//! logic in the pipeline or coherence protocol.  Bugs are *injected*, never
//! present by default: a [`BugConfig`] with no bugs enabled is the correct
//! design, and the test suite asserts that the correct design never produces
//! consistency violations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 11 studied bugs.
///
/// The first seven affect the MESI protocol (or its interaction with the load
/// queue), the next two affect TSO-CC, and the last two affect the core's
/// load/store queues independently of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bug {
    /// `MESI,LQ+IS,Inv`: the L1 sinks an invalidation received in the IS
    /// transient state but fails to forward the invalidation to the load queue
    /// when the data later arrives (IS_I), allowing read→read reordering.
    MesiLqIsInv,
    /// `MESI,LQ+SM,Inv`: invalidation received in SM is not forwarded to the
    /// load/store queue.
    MesiLqSmInv,
    /// `MESI,LQ+E,Inv`: invalidation (ownership-stripping forward) received in
    /// E is not forwarded to the load queue.
    MesiLqEInv,
    /// `MESI,LQ+M,Inv`: invalidation received in M is not forwarded to the
    /// load queue.
    MesiLqMInv,
    /// `MESI,LQ+S,Replacement`: replacement of a Shared line does not notify
    /// the load queue.
    MesiLqSReplacement,
    /// `MESI+PUTX-Race`: the L2 mishandles the race between an owner's
    /// writeback (PUTX) and an in-flight forwarded request, resulting in an
    /// invalid transition (caught by the protocol monitor, as in Ruby).
    MesiPutxRace,
    /// `MESI+Replace-Race`: on an L2 replacement of a block it believes clean
    /// (granted Exclusive, silently modified), the dirty writeback data is
    /// dropped, losing the modification.
    MesiReplaceRace,
    /// `TSO-CC+no-epoch-ids`: epoch identifiers are ignored when comparing
    /// timestamps, so timestamp resets lead to missed self-invalidations.
    TsoCcNoEpochIds,
    /// `TSO-CC+compare`: the self-invalidation comparison uses `>` instead of
    /// `>=`, missing self-invalidations for writes in the same timestamp group.
    TsoCcCompare,
    /// `LQ+no-TSO`: the load queue does not squash younger performed loads on
    /// a forwarded invalidation.
    LqNoTso,
    /// `SQ+no-FIFO`: the store buffer drains out of order.
    SqNoFifo,
}

impl Bug {
    /// All bugs, in the order of the paper's Table 4.
    pub const ALL: [Bug; 11] = [
        Bug::MesiLqIsInv,
        Bug::MesiLqSmInv,
        Bug::MesiLqEInv,
        Bug::MesiLqMInv,
        Bug::MesiLqSReplacement,
        Bug::MesiPutxRace,
        Bug::MesiReplaceRace,
        Bug::TsoCcNoEpochIds,
        Bug::TsoCcCompare,
        Bug::LqNoTso,
        Bug::SqNoFifo,
    ];

    /// The paper's name for the bug (Table 4 row label).
    pub fn paper_name(self) -> &'static str {
        match self {
            Bug::MesiLqIsInv => "MESI,LQ+IS,Inv",
            Bug::MesiLqSmInv => "MESI,LQ+SM,Inv",
            Bug::MesiLqEInv => "MESI,LQ+E,Inv",
            Bug::MesiLqMInv => "MESI,LQ+M,Inv",
            Bug::MesiLqSReplacement => "MESI,LQ+S,Replacement",
            Bug::MesiPutxRace => "MESI+PUTX-Race",
            Bug::MesiReplaceRace => "MESI+Replace-Race",
            Bug::TsoCcNoEpochIds => "TSO-CC+no-epoch-ids",
            Bug::TsoCcCompare => "TSO-CC+compare",
            Bug::LqNoTso => "LQ+no-TSO",
            Bug::SqNoFifo => "SQ+no-FIFO",
        }
    }

    /// Which protocol the system must run for the bug to be applicable.
    ///
    /// `None` means the bug is protocol-independent (pipeline bugs); the
    /// paper evaluates those on the MESI configuration.
    pub fn required_protocol(self) -> Option<crate::config::ProtocolKind> {
        use crate::config::ProtocolKind::*;
        match self {
            Bug::MesiLqIsInv
            | Bug::MesiLqSmInv
            | Bug::MesiLqEInv
            | Bug::MesiLqMInv
            | Bug::MesiLqSReplacement
            | Bug::MesiPutxRace
            | Bug::MesiReplaceRace => Some(Mesi),
            Bug::TsoCcNoEpochIds | Bug::TsoCcCompare => Some(TsoCc),
            Bug::LqNoTso | Bug::SqNoFifo => None,
        }
    }

    /// Returns `true` for bugs that were real (pre-existing) gem5 bugs in the
    /// paper (marked `*` in §5.3), as opposed to artificially injected ones.
    pub fn real_in_gem5(self) -> bool {
        matches!(
            self,
            Bug::MesiLqIsInv | Bug::MesiLqSmInv | Bug::MesiPutxRace | Bug::LqNoTso
        )
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The set of bugs injected into a simulated system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugConfig {
    enabled: Vec<Bug>,
}

impl BugConfig {
    /// The correct design: no bugs injected.
    pub fn none() -> Self {
        BugConfig::default()
    }

    /// A configuration with exactly one bug injected.
    pub fn single(bug: Bug) -> Self {
        BugConfig { enabled: vec![bug] }
    }

    /// Creates a configuration from a list of bugs.
    pub fn from_bugs<I: IntoIterator<Item = Bug>>(bugs: I) -> Self {
        let mut enabled: Vec<Bug> = bugs.into_iter().collect();
        enabled.sort();
        enabled.dedup();
        BugConfig { enabled }
    }

    /// Returns `true` if `bug` is injected.
    pub fn has(&self, bug: Bug) -> bool {
        self.enabled.contains(&bug)
    }

    /// Returns `true` if no bug is injected.
    pub fn is_correct_design(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Iterates over the injected bugs.
    pub fn iter(&self) -> impl Iterator<Item = Bug> + '_ {
        self.enabled.iter().copied()
    }
}

impl fmt::Display for BugConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled.is_empty() {
            return write!(f, "correct design (no bugs)");
        }
        for (i, b) in self.enabled.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn all_bugs_have_distinct_paper_names() {
        let mut names: Vec<&str> = Bug::ALL.iter().map(|b| b.paper_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn protocol_requirements() {
        assert_eq!(
            Bug::MesiLqIsInv.required_protocol(),
            Some(ProtocolKind::Mesi)
        );
        assert_eq!(
            Bug::TsoCcCompare.required_protocol(),
            Some(ProtocolKind::TsoCc)
        );
        assert_eq!(Bug::LqNoTso.required_protocol(), None);
        assert_eq!(Bug::SqNoFifo.required_protocol(), None);
    }

    #[test]
    fn real_gem5_bugs_are_the_starred_ones() {
        let real: Vec<Bug> = Bug::ALL
            .iter()
            .copied()
            .filter(|b| b.real_in_gem5())
            .collect();
        assert_eq!(
            real,
            vec![
                Bug::MesiLqIsInv,
                Bug::MesiLqSmInv,
                Bug::MesiPutxRace,
                Bug::LqNoTso
            ]
        );
    }

    #[test]
    fn bug_config_membership() {
        let cfg = BugConfig::single(Bug::LqNoTso);
        assert!(cfg.has(Bug::LqNoTso));
        assert!(!cfg.has(Bug::SqNoFifo));
        assert!(!cfg.is_correct_design());
        assert!(BugConfig::none().is_correct_design());
    }

    #[test]
    fn bug_config_dedups_and_sorts() {
        let cfg = BugConfig::from_bugs([Bug::SqNoFifo, Bug::LqNoTso, Bug::SqNoFifo]);
        assert_eq!(cfg.iter().count(), 2);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Bug::MesiPutxRace), "MESI+PUTX-Race");
        assert_eq!(format!("{}", BugConfig::none()), "correct design (no bugs)");
        assert!(format!("{}", BugConfig::from_bugs([Bug::LqNoTso, Bug::SqNoFifo])).contains(","));
    }
}
