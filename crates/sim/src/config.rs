//! System configuration (paper Table 2) and protocol selection.

use crate::types::NodeId;
use serde::{Deserialize, Serialize};

/// Which cache coherence protocol the simulated system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Two-level MESI directory protocol (gem5 Ruby `MESI_Two_Level` analogue).
    Mesi,
    /// Lazy, timestamp-based consistency-directed protocol (TSO-CC, HPCA'14).
    TsoCc,
}

impl ProtocolKind {
    /// Short display name used in coverage reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Mesi => "MESI",
            ProtocolKind::TsoCc => "TSO-CC",
        }
    }
}

/// How aggressively the simulated cores reorder memory operations.
///
/// The strength selects between the two pipeline implementations in
/// [`crate::core`]:
///
/// * [`CoreStrength::Strong`] — the x86-ish pipeline: loads issue
///   speculatively but the Peekaboo invalidation squash restores load→load
///   ordering, the store buffer drains in FIFO order, and every fence flavour
///   is executed like a full fence.  Its executions satisfy x86-TSO.
/// * [`CoreStrength::Relaxed`] — an ARM/Power-ish pipeline: loads issue and
///   *perform* out of order past older loads and stores to different
///   addresses (with dependency-respecting stalls and fence-kind-aware
///   flushes), stores may commit into the store buffer past incomplete older
///   loads, and the store buffer drains out of program order unless fenced.
///   Its executions satisfy the dependency-ordered relaxed models
///   (ARMish/POWERish/RMO) but generally violate SC and TSO.
///
/// See `ARCHITECTURE.md` for the core-strength × model support matrix.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum CoreStrength {
    /// The x86-ish strong pipeline (the paper's configuration).
    #[default]
    Strong,
    /// The weakly-ordered pipeline that actually reorders.
    Relaxed,
}

impl CoreStrength {
    /// Both strengths, strongest first.
    pub const ALL: [CoreStrength; 2] = [CoreStrength::Strong, CoreStrength::Relaxed];

    /// Short display name used in experiment tables (`strong` / `relaxed`).
    pub fn name(self) -> &'static str {
        match self {
            CoreStrength::Strong => "strong",
            CoreStrength::Relaxed => "relaxed",
        }
    }

    /// Parses a strength name case-insensitively.
    pub fn parse(s: &str) -> Option<CoreStrength> {
        CoreStrength::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(s.trim()))
    }
}

impl std::fmt::Display for CoreStrength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Latency parameters, all in core cycles.
///
/// Latencies with a `min`/`max` range are drawn per access from the seeded
/// simulation RNG; the resulting jitter is one of the sources of
/// non-determinism across iterations (paper §5.1: L2 hit 30–80 cycles,
/// memory 120–230 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// Minimum L2 bank access latency.
    pub l2_min: u64,
    /// Maximum L2 bank access latency.
    pub l2_max: u64,
    /// Minimum main-memory access latency.
    pub mem_min: u64,
    /// Maximum main-memory access latency.
    pub mem_max: u64,
    /// Per-hop link latency on the mesh.
    pub link_hop: u64,
    /// Maximum random extra delay added to each network message (models
    /// contention in the routers without simulating flits individually).
    pub network_jitter: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 3,
            l2_min: 30,
            l2_max: 80,
            mem_min: 120,
            mem_max: 230,
            link_hop: 2,
            network_jitter: 6,
        }
    }
}

/// Full system configuration (paper Table 2 by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (each with a private L1).
    pub num_cores: usize,
    /// Load-queue entries per core.
    pub lq_entries: usize,
    /// Store-queue (plus store-buffer) entries per core.
    pub sq_entries: usize,
    /// Reorder-buffer entries per core (bounds in-flight operations).
    pub rob_entries: usize,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Number of shared L2 (NUCA) banks.
    pub l2_banks: usize,
    /// Size of each L2 bank in bytes.
    pub l2_bank_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Mesh rows (the paper uses a 2-row mesh).
    pub mesh_rows: usize,
    /// Latency parameters.
    pub latency: LatencyConfig,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Pipeline strength of the simulated cores (see [`CoreStrength`]).
    pub core_strength: CoreStrength,
    /// TSO-CC: number of writes sharing one timestamp (timestamp group size).
    pub tsocc_ts_group: u64,
    /// TSO-CC: maximum timestamp value before a reset (kept small so resets —
    /// and therefore the epoch-id machinery — are exercised within a test).
    pub tsocc_ts_max: u64,
    /// TSO-CC: number of accesses allowed to a Shared line before it must be
    /// re-fetched (staleness bound).
    pub tsocc_max_accesses: u32,
    /// Probability (per core per cycle, in 1/65536 units) of a one-cycle issue
    /// stall, decorrelating the cores' relative progress across iterations.
    pub issue_jitter: u16,
    /// Upper bound on cycles per iteration before the run is declared hung
    /// (deadlock detection).
    pub max_cycles_per_iteration: u64,
}

impl SystemConfig {
    /// The configuration used throughout the paper's evaluation (Table 2),
    /// adapted to this simulator: 8 out-of-order cores, 32 KB 4-way L1s,
    /// 8 × 128 KB 4-way shared L2 banks, 64 B lines, 2-row mesh.
    pub fn paper_default() -> Self {
        SystemConfig {
            num_cores: 8,
            lq_entries: 16,
            sq_entries: 16,
            rob_entries: 40,
            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l2_banks: 8,
            l2_bank_bytes: 128 * 1024,
            l2_ways: 4,
            mesh_rows: 2,
            latency: LatencyConfig::default(),
            protocol: ProtocolKind::Mesi,
            core_strength: CoreStrength::Strong,
            tsocc_ts_group: 4,
            tsocc_ts_max: 48,
            tsocc_max_accesses: 16,
            issue_jitter: 2048,
            max_cycles_per_iteration: 2_000_000,
        }
    }

    /// A small configuration for unit tests and quick examples: 4 cores, tiny
    /// caches (so replacements happen with very small address ranges), same
    /// protocol structure.
    pub fn small(protocol: ProtocolKind) -> Self {
        SystemConfig {
            num_cores: 4,
            lq_entries: 8,
            sq_entries: 8,
            rob_entries: 16,
            line_bytes: 64,
            l1_bytes: 2 * 1024,
            l1_ways: 2,
            l2_banks: 2,
            l2_bank_bytes: 4 * 1024,
            l2_ways: 2,
            mesh_rows: 2,
            latency: LatencyConfig::default(),
            protocol,
            core_strength: CoreStrength::Strong,
            tsocc_ts_group: 2,
            tsocc_ts_max: 16,
            tsocc_max_accesses: 8,
            issue_jitter: 2048,
            max_cycles_per_iteration: 2_000_000,
        }
    }

    /// Selects the number of cores, returning a modified copy.
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        self.num_cores = num_cores;
        self
    }

    /// Number of sets in each L1.
    pub fn l1_sets(&self) -> usize {
        (self.l1_bytes / self.line_bytes) as usize / self.l1_ways
    }

    /// Number of sets in each L2 bank.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bank_bytes / self.line_bytes) as usize / self.l2_ways
    }

    /// Total number of network nodes (L1s + L2 banks + memory controller).
    pub fn num_nodes(&self) -> usize {
        self.num_cores + self.l2_banks + 1
    }

    /// Network node of core `core`'s L1.
    pub fn node_of_l1(&self, core: usize) -> NodeId {
        debug_assert!(core < self.num_cores);
        NodeId(core as u32)
    }

    /// Network node of L2 bank `bank`.
    pub fn node_of_l2(&self, bank: usize) -> NodeId {
        debug_assert!(bank < self.l2_banks);
        NodeId((self.num_cores + bank) as u32)
    }

    /// Network node of the memory controller.
    pub fn node_of_memory(&self) -> NodeId {
        NodeId((self.num_cores + self.l2_banks) as u32)
    }

    /// Returns the L2 bank responsible for a line address (static NUCA
    /// interleaving by line index).
    pub fn bank_of_line(&self, line: crate::types::LineAddr) -> usize {
        ((line.0 / self.line_bytes) % self.l2_banks as u64) as usize
    }

    /// Returns `true` if `node` is an L1 node and gives its core index.
    pub fn l1_index(&self, node: NodeId) -> Option<usize> {
        let i = node.index();
        (i < self.num_cores).then_some(i)
    }

    /// Returns `true` if `node` is an L2 node and gives its bank index.
    pub fn l2_index(&self, node: NodeId) -> Option<usize> {
        let i = node.index();
        (i >= self.num_cores && i < self.num_cores + self.l2_banks).then(|| i - self.num_cores)
    }

    /// Mesh (x, y) coordinate of a node: nodes are laid out row-major across
    /// `mesh_rows` rows.
    pub fn mesh_coord(&self, node: NodeId) -> (usize, usize) {
        let cols = self.num_nodes().div_ceil(self.mesh_rows);
        let i = node.index();
        (i % cols, i / cols)
    }

    /// Manhattan hop distance between two nodes on the mesh.
    pub fn mesh_hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.mesh_coord(a);
        let (bx, by) = self.mesh_coord(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LineAddr;

    #[test]
    fn paper_default_matches_table2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_ways, 4);
        assert_eq!(c.l1_sets(), 128);
        assert_eq!(c.l2_banks, 8);
        assert_eq!(c.l2_bank_bytes, 128 * 1024);
        assert_eq!(c.l2_sets(), 512);
        assert_eq!(c.latency.l1_hit, 3);
        assert_eq!(c.latency.l2_min, 30);
        assert_eq!(c.latency.l2_max, 80);
        assert_eq!(c.latency.mem_min, 120);
        assert_eq!(c.latency.mem_max, 230);
        assert_eq!(c.mesh_rows, 2);
        assert_eq!(c.protocol, ProtocolKind::Mesi);
    }

    #[test]
    fn node_numbering_is_disjoint_and_complete() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.num_nodes(), 8 + 8 + 1);
        assert_eq!(c.node_of_l1(0), NodeId(0));
        assert_eq!(c.node_of_l1(7), NodeId(7));
        assert_eq!(c.node_of_l2(0), NodeId(8));
        assert_eq!(c.node_of_l2(7), NodeId(15));
        assert_eq!(c.node_of_memory(), NodeId(16));
        assert_eq!(c.l1_index(NodeId(3)), Some(3));
        assert_eq!(c.l1_index(NodeId(8)), None);
        assert_eq!(c.l2_index(NodeId(8)), Some(0));
        assert_eq!(c.l2_index(NodeId(16)), None);
    }

    #[test]
    fn bank_interleaving_covers_all_banks() {
        let c = SystemConfig::paper_default();
        let mut seen = vec![false; c.l2_banks];
        for i in 0..c.l2_banks as u64 {
            let bank = c.bank_of_line(LineAddr(i * c.line_bytes));
            seen[bank] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mesh_hops_symmetric_and_zero_on_self() {
        let c = SystemConfig::paper_default();
        for a in 0..c.num_nodes() as u32 {
            for b in 0..c.num_nodes() as u32 {
                assert_eq!(
                    c.mesh_hops(NodeId(a), NodeId(b)),
                    c.mesh_hops(NodeId(b), NodeId(a))
                );
            }
            assert_eq!(c.mesh_hops(NodeId(a), NodeId(a)), 0);
        }
    }

    #[test]
    fn small_config_has_few_sets() {
        let c = SystemConfig::small(ProtocolKind::Mesi);
        assert_eq!(c.l1_sets(), 16);
        assert!(c.num_cores >= 2);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::Mesi.name(), "MESI");
        assert_eq!(ProtocolKind::TsoCc.name(), "TSO-CC");
    }

    #[test]
    fn core_strength_registry_and_builder() {
        assert_eq!(CoreStrength::default(), CoreStrength::Strong);
        assert_eq!(CoreStrength::ALL.len(), 2);
        for strength in CoreStrength::ALL {
            assert_eq!(CoreStrength::parse(strength.name()), Some(strength));
            assert_eq!(
                CoreStrength::parse(&strength.name().to_uppercase()),
                Some(strength),
                "parsing is case-insensitive"
            );
            assert_eq!(format!("{strength}"), strength.name());
        }
        assert_eq!(CoreStrength::parse("bogus"), None);
        let mut cfg = SystemConfig::small(ProtocolKind::Mesi);
        assert_eq!(cfg.core_strength, CoreStrength::Strong);
        cfg.core_strength = CoreStrength::Relaxed;
        assert_eq!(cfg.core_strength, CoreStrength::Relaxed);
    }
}
