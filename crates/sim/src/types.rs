//! Basic simulator-wide types: cycles, node identifiers, line addresses.

use mcversi_mcm::Address;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulation cycle count (the global clock).
pub type Cycle = u64;

/// Identifier of a node on the on-chip network.
///
/// Node numbering convention (see [`crate::config::SystemConfig::node_of_l1`]
/// and friends): cores/L1s occupy `0..num_cores`, L2 banks occupy
/// `num_cores..num_cores+l2_banks`, and the memory controller is the last
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A cache-line-aligned address.
///
/// All coherence-protocol state is keyed by line address; word addresses
/// within the line are only used when reading or writing data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Computes the line address containing `addr` for the given line size.
    pub fn containing(addr: Address, line_bytes: u64) -> Self {
        LineAddr(addr.0 / line_bytes * line_bytes)
    }

    /// The raw (aligned) byte address of the start of the line.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Index of the 8-byte word within the line that `addr` refers to.
    pub fn word_index(self, addr: Address, line_bytes: u64) -> usize {
        debug_assert_eq!(self.0, addr.0 / line_bytes * line_bytes);
        ((addr.0 - self.0) / 8) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L:0x{:x}", self.0)
    }
}

/// The data payload of one cache line, stored as 8-byte words.
///
/// Every access performed by a test is an aligned 8-byte access, so word
/// granularity is sufficient and keeps value tracking exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineData {
    words: Vec<u64>,
}

impl LineData {
    /// A zero-initialised line of `line_bytes` bytes.
    pub fn zeroed(line_bytes: u64) -> Self {
        LineData {
            words: vec![0; (line_bytes / 8) as usize],
        }
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the line.
    pub fn word(&self, index: usize) -> u64 {
        self.words[index]
    }

    /// Writes `value` at `index` and returns the overwritten value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the line.
    pub fn set_word(&mut self, index: usize, value: u64) -> u64 {
        std::mem::replace(&mut self.words[index], value)
    }

    /// Number of 8-byte words in the line.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_containing() {
        assert_eq!(LineAddr::containing(Address(0x1234), 64), LineAddr(0x1200));
        assert_eq!(LineAddr::containing(Address(0x1200), 64), LineAddr(0x1200));
        assert_eq!(LineAddr::containing(Address(0x123f), 64), LineAddr(0x1200));
    }

    #[test]
    fn word_index_within_line() {
        let line = LineAddr(0x1200);
        assert_eq!(line.word_index(Address(0x1200), 64), 0);
        assert_eq!(line.word_index(Address(0x1208), 64), 1);
        assert_eq!(line.word_index(Address(0x1238), 64), 7);
    }

    #[test]
    fn line_data_read_write() {
        let mut d = LineData::zeroed(64);
        assert_eq!(d.num_words(), 8);
        assert_eq!(d.word(3), 0);
        let old = d.set_word(3, 42);
        assert_eq!(old, 0);
        assert_eq!(d.word(3), 42);
        let old = d.set_word(3, 7);
        assert_eq!(old, 42);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", LineAddr(0x40)), "L:0x40");
    }
}
