//! Structural (state-transition) coverage of the coherence protocol.
//!
//! The paper uses the covered logic of the coherence protocol — concretely,
//! (state, event) transition pairs of the L1 and L2 controllers — as the GP
//! fitness signal (§3.2).  Identical controllers are not distinguished: the
//! transition `L1: S + Inv` counts once no matter which L1 took it.
//!
//! The recorder keeps two views:
//!
//! * *cumulative* counts since the simulation (campaign) started, used by the
//!   adaptive-coverage fitness to identify frequent transitions;
//! * the set covered by the *current test-run only*, so each test's fitness is
//!   independent of previously run tests.

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which controller type a transition belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum ControllerKind {
    /// A private L1 cache controller.
    L1,
    /// A shared L2 bank / directory controller.
    L2,
}

impl fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerKind::L1 => write!(f, "L1"),
            ControllerKind::L2 => write!(f, "L2"),
        }
    }
}

/// One protocol state transition: controller type, source state and event.
///
/// States and events are identified by their static names, mirroring how a
/// table-driven protocol implementation (e.g. Ruby SLICC) enumerates its
/// transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Transition {
    /// The controller type taking the transition.
    pub controller: ControllerKind,
    /// The state the controller's line was in.
    pub state: &'static str,
    /// The event that triggered the transition.
    pub event: &'static str,
}

impl Transition {
    /// Convenience constructor for an L1 transition.
    pub fn l1(state: &'static str, event: &'static str) -> Self {
        Transition {
            controller: ControllerKind::L1,
            state,
            event,
        }
    }

    /// Convenience constructor for an L2 transition.
    pub fn l2(state: &'static str, event: &'static str) -> Self {
        Transition {
            controller: ControllerKind::L2,
            state,
            event,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}+{}", self.controller, self.state, self.event)
    }
}

/// Records transition coverage for a whole simulation and for the test-run in
/// progress.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CoverageRecorder {
    cumulative: BTreeMap<Transition, u64>,
    current_run: BTreeSet<Transition>,
}

impl CoverageRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        CoverageRecorder::default()
    }

    /// Records that `transition` was taken once.
    pub fn record(&mut self, transition: Transition) {
        *self.cumulative.entry(transition).or_insert(0) += 1;
        self.current_run.insert(transition);
    }

    /// Cumulative count of a transition since simulation start.
    pub fn count(&self, transition: Transition) -> u64 {
        self.cumulative.get(&transition).copied().unwrap_or(0)
    }

    /// Number of distinct transitions observed since simulation start.
    pub fn distinct_covered(&self) -> usize {
        self.cumulative.len()
    }

    /// Iterates over all transitions observed so far with their counts.
    pub fn iter_cumulative(&self) -> impl Iterator<Item = (Transition, u64)> + '_ {
        self.cumulative.iter().map(|(&t, &c)| (t, c))
    }

    /// The set of transitions covered by the current test-run.
    pub fn current_run_covered(&self) -> &BTreeSet<Transition> {
        &self.current_run
    }

    /// Ends the current test-run: returns the set of transitions it covered
    /// and clears the per-run set (cumulative counts are retained).
    pub fn finish_run(&mut self) -> BTreeSet<Transition> {
        std::mem::take(&mut self.current_run)
    }

    /// Fraction of `universe` transitions that have been covered cumulatively.
    ///
    /// Used for the "maximum total transition coverage" reported in Table 6.
    pub fn total_coverage(&self, universe: &[Transition]) -> f64 {
        if universe.is_empty() {
            return 0.0;
        }
        let covered = universe
            .iter()
            .filter(|t| self.cumulative.contains_key(t))
            .count();
        covered as f64 / universe.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut c = CoverageRecorder::new();
        let t = Transition::l1("S", "Inv");
        assert_eq!(c.count(t), 0);
        c.record(t);
        c.record(t);
        assert_eq!(c.count(t), 2);
        assert_eq!(c.distinct_covered(), 1);
    }

    #[test]
    fn finish_run_clears_per_run_set_only() {
        let mut c = CoverageRecorder::new();
        let t1 = Transition::l1("I", "Load");
        let t2 = Transition::l2("NP", "GetS");
        c.record(t1);
        c.record(t2);
        let run = c.finish_run();
        assert_eq!(run.len(), 2);
        assert!(c.current_run_covered().is_empty());
        assert_eq!(c.distinct_covered(), 2);
        // A new run starts fresh.
        c.record(t1);
        assert_eq!(c.current_run_covered().len(), 1);
        assert_eq!(c.count(t1), 2);
    }

    #[test]
    fn total_coverage_fraction() {
        let mut c = CoverageRecorder::new();
        let universe = vec![
            Transition::l1("I", "Load"),
            Transition::l1("S", "Inv"),
            Transition::l2("NP", "GetS"),
            Transition::l2("SS", "GetX"),
        ];
        assert_eq!(c.total_coverage(&universe), 0.0);
        c.record(universe[0]);
        c.record(universe[2]);
        assert!((c.total_coverage(&universe) - 0.5).abs() < 1e-9);
        // Transitions outside the universe do not inflate coverage.
        c.record(Transition::l1("M", "Load"));
        assert!((c.total_coverage(&universe) - 0.5).abs() < 1e-9);
        assert_eq!(c.total_coverage(&[]), 0.0);
    }

    #[test]
    fn transition_display() {
        assert_eq!(format!("{}", Transition::l1("IS", "Data")), "L1:IS+Data");
        assert_eq!(format!("{}", Transition::l2("MT", "PutX")), "L2:MT+PutX");
    }

    #[test]
    fn identical_controllers_not_distinguished() {
        // Recording the "same" transition from two different L1 instances is
        // indistinguishable by design: Transition has no controller index.
        let mut c = CoverageRecorder::new();
        c.record(Transition::l1("S", "Inv"));
        c.record(Transition::l1("S", "Inv"));
        assert_eq!(c.distinct_covered(), 1);
        assert_eq!(c.count(Transition::l1("S", "Inv")), 2);
    }
}
