//! The execution observer: turns architecturally performed operations into a
//! candidate execution object.
//!
//! Following the paper's §4.1, every dynamic write of a test is assigned a
//! globally unique value before execution, so the observer can reconstruct
//! both conflict orders purely from data values, without influencing the
//! functional execution:
//!
//! * **reads-from** (`rf`): the value a load observed maps to exactly one
//!   producing write (zero means the initial value);
//! * **coherence order** (`co`): the value a store *overwrote* maps to the
//!   write that is coherence-ordered immediately before it.
//!
//! Program order, the static event set and the syntactic dependency edges
//! (address/data/control; paper §5.2.1's dependency-carrying operations) are
//! derived from the test program itself before execution.
//!
//! Observation is identical for both core pipeline strengths
//! ([`CoreStrength`](crate::config::CoreStrength)): the dependency edges are
//! recorded from program *structure* whether or not the pipeline honoured
//! them, which is what makes a dependency-ordering bug (a relaxed core
//! ignoring a carried edge) visible — the checker sees the edge the hardware
//! dropped.

use crate::core::ObservedOp;
use crate::program::{TestOpKind, TestProgram};
use mcversi_mcm::execution::{CandidateExecution, ExecutionBuilder};
use mcversi_mcm::{DepKind, EventId, Iiid, ProcessorId, Value};
use std::collections::BTreeMap;

/// Records performed operations of one test iteration and builds the
/// candidate execution.
///
/// The static portion (event set, program order, dependency edges, the
/// value→write and (thread, poi)→read maps) depends only on the program, so
/// an observer is reusable across the iterations of a test-run: call
/// [`reset`](ExecObserver::reset) between iterations instead of
/// reconstructing it — the per-iteration cost is then just clearing (and
/// reusing the capacity of) the two observation buffers.  The simulator
/// caches the observer per staged program for exactly this reason (see
/// `System::run_iteration`).
#[derive(Debug)]
pub struct ExecObserver {
    builder: ExecutionBuilder,
    /// Program order of the static event set, derived once (initial-value
    /// writes created while finalising carry no program point, so the
    /// relation is identical for every iteration).
    po: mcversi_mcm::relation::Relation,
    /// Write value -> write event (unique-value scheme).
    writes_by_value: BTreeMap<u64, EventId>,
    /// (thread, poi) -> read event awaiting its observed value.
    reads: BTreeMap<(usize, u32), EventId>,
    /// Observed read values, indexed densely by event id (event ids are
    /// allocated contiguously by the builder).  `0` doubles as "initial
    /// value" and "not observed" — both resolve to the initial write.
    read_values: Vec<u64>,
    /// Writes and the values they overwrote.
    observed_writes: Vec<(EventId, u64)>,
    /// Number of operations that reported completion.
    observed_count: usize,
    expected_count: usize,
}

impl ExecObserver {
    /// Prepares the observer for one iteration of `program`, creating the
    /// static event set (paper: static orders are gathered before execution).
    pub fn new(program: &TestProgram) -> Self {
        let mut builder = ExecutionBuilder::new();
        let mut writes_by_value = BTreeMap::new();
        let mut reads = BTreeMap::new();
        let mut expected_count = 0usize;
        for (t, thread) in program.threads().iter().enumerate() {
            let pid = ProcessorId(t as u32);
            // The most recent load event of this thread, the source of any
            // dependency carried by a later op (mirrors the core model, which
            // stalls dependent ops on the youngest prior *load*).
            let mut last_load: Option<EventId> = None;
            for (poi, op) in thread.iter().enumerate() {
                let iiid = Iiid {
                    pid,
                    poi: poi as u32,
                };
                let dep = op.kind.dep_kind();
                match op.kind {
                    TestOpKind::Read | TestOpKind::ReadAddrDp => {
                        // The value is filled in when the load retires.
                        let id = builder.read_at(iiid, op.addr, Value(0));
                        Self::record_dep(&mut builder, dep, last_load, id);
                        reads.insert((t, poi as u32), id);
                        last_load = Some(id);
                        expected_count += 1;
                    }
                    TestOpKind::Write { value }
                    | TestOpKind::WriteDataDp { value }
                    | TestOpKind::WriteCtrlDp { value } => {
                        let id = builder.write_at(iiid, op.addr, Value(value));
                        Self::record_dep(&mut builder, dep, last_load, id);
                        writes_by_value.insert(value, id);
                        expected_count += 1;
                    }
                    TestOpKind::ReadModifyWrite { value } => {
                        let (r, w) = builder.rmw_at(iiid, op.addr, Value(0), Value(value));
                        reads.insert((t, poi as u32), r);
                        writes_by_value.insert(value, w);
                        expected_count += 1;
                    }
                    TestOpKind::Fence { kind } => {
                        builder.fence_at(iiid, kind);
                        expected_count += 1;
                    }
                    TestOpKind::CacheFlush | TestOpKind::Delay { .. } => {}
                }
            }
        }
        let read_values = vec![0u64; builder.len()];
        let po = builder.program_order();
        ExecObserver {
            builder,
            po,
            writes_by_value,
            reads,
            read_values,
            observed_writes: Vec::new(),
            observed_count: 0,
            expected_count,
        }
    }

    /// Records a dependency edge if the op carries one and a source load
    /// exists (a dependent op with no prior read degrades to a plain access,
    /// matching the core model's execution semantics).
    fn record_dep(
        builder: &mut ExecutionBuilder,
        dep: Option<DepKind>,
        last_load: Option<EventId>,
        target: EventId,
    ) {
        if let (Some(kind), Some(source)) = (dep, last_load) {
            builder.dependency(kind, source, target);
        }
    }

    /// Clears the dynamic observation state so the observer can record the
    /// next iteration of the *same* program.  The static event set and maps
    /// are untouched; the observation buffers keep their capacity.
    pub fn reset(&mut self) {
        self.read_values.fill(0);
        self.observed_writes.clear();
        self.observed_count = 0;
    }

    /// Number of memory-model-relevant operations expected to complete.
    pub fn expected_count(&self) -> usize {
        self.expected_count
    }

    /// Number of operations observed so far.
    pub fn observed_count(&self) -> usize {
        self.observed_count
    }

    /// Returns `true` once every expected operation has been observed.
    pub fn is_complete(&self) -> bool {
        self.observed_count >= self.expected_count
    }

    /// Records one performed operation of thread `thread`.
    pub fn record(&mut self, thread: usize, op: ObservedOp) {
        match op {
            ObservedOp::Load { poi, value, .. } => {
                if let Some(&ev) = self.reads.get(&(thread, poi)) {
                    self.read_values[ev.0 as usize] = value;
                    self.observed_count += 1;
                }
            }
            ObservedOp::Store {
                poi: _,
                value,
                overwritten,
                ..
            } => {
                if let Some(&ev) = self.writes_by_value.get(&value) {
                    self.observed_writes.push((ev, overwritten));
                    self.observed_count += 1;
                }
            }
            ObservedOp::Rmw {
                poi,
                write_value,
                read_value,
                ..
            } => {
                if let Some(&rev) = self.reads.get(&(thread, poi)) {
                    self.read_values[rev.0 as usize] = read_value;
                }
                if let Some(&wev) = self.writes_by_value.get(&write_value) {
                    self.observed_writes.push((wev, read_value));
                }
                self.observed_count += 1;
            }
            ObservedOp::Fence { .. } => {
                self.observed_count += 1;
            }
        }
    }

    /// Finalises the candidate execution for this iteration.
    ///
    /// Reads that never completed (e.g. because the iteration deadlocked) are
    /// given a reads-from edge to the initial write so the execution object
    /// stays well formed; callers should treat incomplete iterations
    /// separately (see [`is_complete`](Self::is_complete)).
    ///
    /// The observer itself is untouched (the static builder is cloned, the
    /// iteration's conflict orders are patched into the clone), so after a
    /// [`reset`](Self::reset) it can observe the next iteration.
    pub fn finish(&self) -> CandidateExecution {
        // Patch observed read values into the events and create rf edges on a
        // clone of the static builder (the clone is the one allocation the
        // returned execution needs anyway).
        let mut builder = self.builder.clone();
        for &read_ev in self.reads.values() {
            let value = self.read_values[read_ev.0 as usize];
            builder.set_event_value(read_ev, Value(value));
            if value == 0 {
                builder.reads_from_initial(read_ev);
            } else if let Some(&w) = self.writes_by_value.get(&value) {
                builder.reads_from(w, read_ev);
            } else {
                // A value that no write of this test produced: treat it as an
                // unknown (initial) value; the checker will flag the mismatch
                // through coherence if it matters.
                builder.reads_from_initial(read_ev);
            }
        }
        // Coherence order from overwritten values.
        for &(write_ev, overwritten) in &self.observed_writes {
            if overwritten == 0 {
                builder.coherence_after_initial(write_ev);
            } else if let Some(&prev) = self.writes_by_value.get(&overwritten) {
                if prev != write_ev {
                    builder.coherence(prev, write_ev);
                }
                builder.coherence_after_initial(write_ev);
            } else {
                builder.coherence_after_initial(write_ev);
            }
        }
        builder.build_with_po(self.po.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TestOp;
    use mcversi_mcm::checker::Checker;
    use mcversi_mcm::model::tso::Tso;
    use mcversi_mcm::Address;

    fn mp_program() -> TestProgram {
        TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x100), 1),
                TestOp::write(Address(0x200), 2),
            ],
            vec![TestOp::read(Address(0x200)), TestOp::read(Address(0x100))],
        ])
    }

    #[test]
    fn static_events_created_for_all_memory_ops() {
        let obs = ExecObserver::new(&mp_program());
        assert_eq!(obs.expected_count(), 4);
        assert_eq!(obs.observed_count(), 0);
        assert!(!obs.is_complete());
    }

    #[test]
    fn valid_message_passing_execution_passes_tso() {
        let mut obs = ExecObserver::new(&mp_program());
        obs.record(
            0,
            ObservedOp::Store {
                poi: 0,
                addr: Address(0x100),
                value: 1,
                overwritten: 0,
            },
        );
        obs.record(
            0,
            ObservedOp::Store {
                poi: 1,
                addr: Address(0x200),
                value: 2,
                overwritten: 0,
            },
        );
        obs.record(
            1,
            ObservedOp::Load {
                poi: 0,
                addr: Address(0x200),
                value: 2,
            },
        );
        obs.record(
            1,
            ObservedOp::Load {
                poi: 1,
                addr: Address(0x100),
                value: 1,
            },
        );
        assert!(obs.is_complete());
        let exec = obs.finish();
        assert!(exec.validate().is_ok());
        assert!(Checker::new(&Tso).check(&exec).is_valid());
    }

    #[test]
    fn stale_read_after_flag_is_a_tso_violation() {
        let mut obs = ExecObserver::new(&mp_program());
        obs.record(
            0,
            ObservedOp::Store {
                poi: 0,
                addr: Address(0x100),
                value: 1,
                overwritten: 0,
            },
        );
        obs.record(
            0,
            ObservedOp::Store {
                poi: 1,
                addr: Address(0x200),
                value: 2,
                overwritten: 0,
            },
        );
        // Reader sees the flag but then the stale x.
        obs.record(
            1,
            ObservedOp::Load {
                poi: 0,
                addr: Address(0x200),
                value: 2,
            },
        );
        obs.record(
            1,
            ObservedOp::Load {
                poi: 1,
                addr: Address(0x100),
                value: 0,
            },
        );
        let exec = obs.finish();
        assert!(exec.validate().is_ok());
        assert!(Checker::new(&Tso).check(&exec).is_violation());
    }

    #[test]
    fn rmw_produces_paired_events_and_atomicity_holds() {
        let program = TestProgram::new(vec![vec![TestOp::rmw(Address(0x100), 5)]]);
        let mut obs = ExecObserver::new(&program);
        obs.record(
            0,
            ObservedOp::Rmw {
                poi: 0,
                addr: Address(0x100),
                write_value: 5,
                read_value: 0,
            },
        );
        assert!(obs.is_complete());
        let exec = obs.finish();
        assert!(exec.validate().is_ok());
        assert!(Checker::new(&Tso).check(&exec).is_valid());
        assert_eq!(exec.events().iter().filter(|e| e.kind.is_rmw()).count(), 2);
    }

    #[test]
    fn lost_update_detected_via_coherence() {
        // Two writes to the same address; the second overwrites the *initial*
        // value (the first write was lost); a later read of the first value is
        // then coherence-inconsistent on the writer's own thread.
        let program = TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x100), 1),
                TestOp::read(Address(0x100)),
            ],
            vec![TestOp::write(Address(0x100), 2)],
        ]);
        let mut obs = ExecObserver::new(&program);
        obs.record(
            0,
            ObservedOp::Store {
                poi: 0,
                addr: Address(0x100),
                value: 1,
                overwritten: 0,
            },
        );
        obs.record(
            1,
            ObservedOp::Store {
                poi: 0,
                addr: Address(0x100),
                value: 2,
                overwritten: 1,
            },
        );
        // The writer later reads the initial value: its own write was lost.
        obs.record(
            0,
            ObservedOp::Load {
                poi: 1,
                addr: Address(0x100),
                value: 0,
            },
        );
        let exec = obs.finish();
        assert!(exec.validate().is_ok());
        assert!(Checker::new(&Tso).check(&exec).is_violation());
    }

    #[test]
    fn incomplete_iterations_are_reported() {
        let mut obs = ExecObserver::new(&mp_program());
        obs.record(
            0,
            ObservedOp::Store {
                poi: 0,
                addr: Address(0x100),
                value: 1,
                overwritten: 0,
            },
        );
        assert!(!obs.is_complete());
        assert_eq!(obs.observed_count(), 1);
    }

    #[test]
    fn dependencies_and_fence_flavours_reach_the_execution() {
        use mcversi_mcm::{DepKind, EventKind, FenceKind};
        // T0: R x; Rdep y; Wdata z; lwsync; Wctrl x.
        let program = TestProgram::new(vec![vec![
            TestOp::read(Address(0x100)),
            TestOp::read_addr_dp(Address(0x200)),
            TestOp::write_data_dp(Address(0x300), 7),
            TestOp::fence_of(FenceKind::LightweightSync),
            TestOp::write_ctrl_dp(Address(0x100), 8),
        ]]);
        let mut obs = ExecObserver::new(&program);
        assert_eq!(obs.expected_count(), 5);
        obs.record(
            0,
            ObservedOp::Load {
                poi: 0,
                addr: Address(0x100),
                value: 0,
            },
        );
        obs.record(
            0,
            ObservedOp::Load {
                poi: 1,
                addr: Address(0x200),
                value: 0,
            },
        );
        obs.record(
            0,
            ObservedOp::Store {
                poi: 2,
                addr: Address(0x300),
                value: 7,
                overwritten: 0,
            },
        );
        obs.record(0, ObservedOp::Fence { poi: 3 });
        obs.record(
            0,
            ObservedOp::Store {
                poi: 4,
                addr: Address(0x100),
                value: 8,
                overwritten: 0,
            },
        );
        assert!(obs.is_complete());
        let exec = obs.finish();
        assert!(exec.validate().is_ok(), "{:?}", exec.validate());
        let events = exec.events();
        let ev = |poi: u32| {
            events
                .iter()
                .find(|e| e.iiid.map(|i| i.poi) == Some(poi))
                .expect("event exists")
                .id
        };
        // Rdep y depends (addr) on R x; Wdata z on Rdep y; Wctrl x also on
        // Rdep y (the most recent load, despite the fence in between).
        assert!(exec.deps().of(DepKind::Addr).contains(ev(0), ev(1)));
        assert!(exec.deps().of(DepKind::Data).contains(ev(1), ev(2)));
        assert!(exec.deps().of(DepKind::Ctrl).contains(ev(1), ev(4)));
        assert_eq!(exec.deps().len(), 3);
        // The fence keeps its flavour.
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Fence(FenceKind::LightweightSync)));
    }

    #[test]
    fn leading_dependent_op_degrades_to_plain_access() {
        // A dependent read with no prior load records no dependency.
        let program = TestProgram::new(vec![vec![TestOp::read_addr_dp(Address(0x100))]]);
        let mut obs = ExecObserver::new(&program);
        obs.record(
            0,
            ObservedOp::Load {
                poi: 0,
                addr: Address(0x100),
                value: 0,
            },
        );
        let exec = obs.finish();
        assert!(exec.validate().is_ok());
        assert!(exec.deps().is_empty());
    }

    /// A reused (reset) observer reproduces exactly the execution a freshly
    /// constructed one builds — the reuse is a pure allocation optimisation.
    #[test]
    fn reset_observer_rebuilds_identical_executions() {
        let program = mp_program();
        let record_iteration = |obs: &mut ExecObserver, stale: bool| {
            obs.record(
                0,
                ObservedOp::Store {
                    poi: 0,
                    addr: Address(0x100),
                    value: 1,
                    overwritten: 0,
                },
            );
            obs.record(
                0,
                ObservedOp::Store {
                    poi: 1,
                    addr: Address(0x200),
                    value: 2,
                    overwritten: 0,
                },
            );
            obs.record(
                1,
                ObservedOp::Load {
                    poi: 0,
                    addr: Address(0x200),
                    value: 2,
                },
            );
            obs.record(
                1,
                ObservedOp::Load {
                    poi: 1,
                    addr: Address(0x100),
                    value: if stale { 0 } else { 1 },
                },
            );
        };

        let mut reused = ExecObserver::new(&program);
        for &stale in &[false, true, false] {
            reused.reset();
            assert_eq!(reused.observed_count(), 0);
            record_iteration(&mut reused, stale);
            assert!(reused.is_complete());
            let from_reused = reused.finish();

            let mut fresh = ExecObserver::new(&program);
            record_iteration(&mut fresh, stale);
            let from_fresh = fresh.finish();

            assert_eq!(from_reused.events(), from_fresh.events());
            assert_eq!(from_reused.po(), from_fresh.po());
            assert_eq!(from_reused.rf(), from_fresh.rf());
            assert_eq!(from_reused.co(), from_fresh.co());
            assert_eq!(from_reused.deps(), from_fresh.deps());
            assert_eq!(
                Checker::new(&Tso).check(&from_reused).is_violation(),
                stale,
                "stale={stale}"
            );
        }
    }

    #[test]
    fn fences_count_towards_completion() {
        let program = TestProgram::new(vec![vec![TestOp::fence()]]);
        let mut obs = ExecObserver::new(&program);
        assert_eq!(obs.expected_count(), 1);
        obs.record(0, ObservedOp::Fence { poi: 0 });
        assert!(obs.is_complete());
        let exec = obs.finish();
        assert!(Checker::new(&Tso).check(&exec).is_valid());
    }
}
