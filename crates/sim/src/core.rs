//! The out-of-order core models (load queue, store queue, store buffer).
//!
//! Each simulated core executes one thread of the test program.  Two pipeline
//! strengths share one engine, selected by
//! [`SystemConfig::core_strength`](crate::config::SystemConfig::core_strength):
//!
//! The **strong** (x86-ish) pipeline:
//!
//! * loads issue speculatively and out of order (hit-under-miss), bounded by
//!   the load-queue size;
//! * a load whose line loses read permission (an *invalidation notice* from
//!   the L1) while older loads are still unperformed is squashed together with
//!   all younger loads and retried — the standard "Peekaboo" handling the
//!   paper describes; the [`Bug::LqNoTso`] bug disables this squash;
//! * stores retire into a FIFO store buffer which drains to the L1 one store
//!   at a time, with store→load forwarding; [`Bug::SqNoFifo`] drains the
//!   buffer out of order;
//! * atomic read-modify-writes and fences drain the store buffer and execute
//!   at the head of the window (x86 locked-instruction semantics); every
//!   fence flavour is conservatively treated like a full fence.
//!
//! The **relaxed** (ARM/Power-ish) pipeline keeps the structural pieces but
//! actually reorders, bounded only by what the dependency-ordered relaxed
//! models ([`ModelKind::Armish`]/[`ModelKind::Powerish`]/[`ModelKind::Rmo`])
//! require:
//!
//! * loads issue *and perform* out of order past older loads and stores to
//!   different addresses — there is no invalidation squash; same-address
//!   ordering (coherence) is preserved by an issue stall instead;
//! * dependency-carrying operations stall until their source load performs
//!   ([`Bug::LqNoAddrDep`], [`Bug::SqNoDataDep`] and [`Bug::SqNoCtrlDep`]
//!   remove exactly one of these stalls each);
//! * fences are executed by *kind*: only flavours that order loads
//!   (full/acquire/load-load/lwsync) stall younger loads
//!   ([`Bug::FenceNoAcquire`] lets loads issue past a pending acquire
//!   fence), and only flavours that order stores (full/release/lwsync/
//!   store-store) act as store-buffer barriers;
//! * completed stores may commit into the store buffer past incomplete older
//!   loads to different addresses (making load→store reordering observable),
//!   and the buffer drains out of program order within a fence epoch
//!   ([`StoreBuffer::begin_drain_relaxed`]).
//!
//! [`Bug::LqNoTso`]: crate::bugs::Bug::LqNoTso
//! [`Bug::SqNoFifo`]: crate::bugs::Bug::SqNoFifo
//! [`Bug::LqNoAddrDep`]: crate::bugs::Bug::LqNoAddrDep
//! [`Bug::SqNoDataDep`]: crate::bugs::Bug::SqNoDataDep
//! [`Bug::SqNoCtrlDep`]: crate::bugs::Bug::SqNoCtrlDep
//! [`Bug::FenceNoAcquire`]: crate::bugs::Bug::FenceNoAcquire
//! [`ModelKind::Armish`]: mcversi_mcm::ModelKind::Armish
//! [`ModelKind::Powerish`]: mcversi_mcm::ModelKind::Powerish
//! [`ModelKind::Rmo`]: mcversi_mcm::ModelKind::Rmo

use crate::bugs::{Bug, BugConfig};
use crate::config::{CoreStrength, SystemConfig};
use crate::lsq::{StoreBuffer, StoreBufferEntry};
use crate::program::{TestOp, TestOpKind, ThreadProgram};
use crate::protocol::{CoreReqKind, CoreRequest, CoreRespKind, CoreResponse};
use crate::types::{Cycle, LineAddr};
use mcversi_mcm::{Address, FenceKind};
use mcversi_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// Load-queue squashes (the invalidation "Peekaboo" repair).
static SQUASHES: telemetry::Counter = telemetry::Counter::new("sim.core.squashes");
/// Load issue stalls: blocked behind an incomplete fence or atomic.
static STALL_FENCE: telemetry::Counter = telemetry::Counter::new("sim.core.stall.fence");
/// Load issue stalls: same-address (coherence / po-loc) ordering.
static STALL_COHERENCE: telemetry::Counter = telemetry::Counter::new("sim.core.stall.coherence");
/// Load issue stalls: dependency on an unperformed source load.
static STALL_DEP: telemetry::Counter = telemetry::Counter::new("sim.core.stall.dep");
/// Loads satisfied by store→load forwarding from the store buffer.
static SB_FORWARDS: telemetry::Counter = telemetry::Counter::new("sim.core.sb.forward");
/// Stores drained from the store buffer to the L1.
static SB_DRAINS: telemetry::Counter = telemetry::Counter::new("sim.core.sb.drain");
/// Completed stores committed early past incomplete older ops (relaxed core).
static SB_EARLY_COMMITS: telemetry::Counter = telemetry::Counter::new("sim.core.sb.early_commit");
/// Requests issued by cores to their L1s (loads, RMWs, fences, flushes).
static ISSUED_REQUESTS: telemetry::Counter = telemetry::Counter::new("sim.core.requests");

/// Returns `true` if a fence of `kind` orders program-order-later *loads*
/// (so the relaxed core must not let younger loads issue past it while it is
/// incomplete).
fn fence_orders_later_loads(kind: FenceKind) -> bool {
    matches!(
        kind,
        FenceKind::Full | FenceKind::Acquire | FenceKind::LoadLoad | FenceKind::LightweightSync
    )
}

/// Returns `true` if a fence of `kind` orders *stores* across it (so the
/// relaxed core must bump the store-buffer epoch when it retires).
fn fence_orders_stores(kind: FenceKind) -> bool {
    matches!(
        kind,
        FenceKind::Full | FenceKind::Release | FenceKind::StoreStore | FenceKind::LightweightSync
    )
}

/// An architecturally performed operation, reported to the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedOp {
    /// A retired load and the value it read.
    Load {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address read.
        addr: Address,
        /// Value read.
        value: u64,
    },
    /// A store that has been performed in the memory system.
    Store {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address written.
        addr: Address,
        /// Value written.
        value: u64,
        /// The value the store overwrote (for coherence-order construction).
        overwritten: u64,
    },
    /// An atomic read-modify-write that has been performed.
    Rmw {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address accessed.
        addr: Address,
        /// Value written.
        write_value: u64,
        /// Value read (and overwritten).
        read_value: u64,
    },
    /// A retired fence.
    Fence {
        /// Program-order index of the instruction.
        poi: u32,
    },
}

/// Everything a core produces in one cycle.
#[derive(Debug, Default)]
pub struct CoreTickOutput {
    /// Requests for the core's L1.
    pub requests: Vec<CoreRequest>,
    /// Architecturally performed operations for the observer.
    pub observed: Vec<ObservedOp>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    Waiting,
    Issued { tag: u64 },
    Done,
}

#[derive(Debug, Clone, Copy)]
struct InflightOp {
    idx: usize,
    op: TestOp,
    state: OpState,
    /// Value read (loads / RMW read half).
    read_value: Option<u64>,
    /// Earliest cycle at which the op may complete (delays).
    ready_at: Cycle,
}

impl InflightOp {
    fn is_load(&self) -> bool {
        matches!(self.op.kind, TestOpKind::Read | TestOpKind::ReadAddrDp)
    }

    fn is_read_like(&self) -> bool {
        self.is_load() || matches!(self.op.kind, TestOpKind::ReadModifyWrite { .. })
    }
}

/// The per-core execution engine.
#[derive(Debug)]
pub struct CoreModel {
    core_id: usize,
    strength: CoreStrength,
    program: ThreadProgram,
    next_fetch: usize,
    window: VecDeque<InflightOp>,
    store_buffer: StoreBuffer,
    outstanding_store: Option<(u64, StoreBufferEntry)>,
    next_tag: u64,
    line_bytes: u64,
    lq_entries: usize,
    sq_entries: usize,
    rob_entries: usize,
    issue_jitter: u16,
    squashes: u64,
    /// Current store-ordering epoch (relaxed core): bumped whenever a
    /// store-ordering fence retires; committed stores carry it into the
    /// store buffer.
    store_epoch: u32,
    finished_reported: bool,
}

impl CoreModel {
    /// Creates a core executing `program`.
    pub fn new(core_id: usize, program: ThreadProgram, cfg: &SystemConfig) -> Self {
        CoreModel {
            core_id,
            strength: cfg.core_strength,
            program,
            next_fetch: 0,
            window: VecDeque::new(),
            store_buffer: StoreBuffer::new(cfg.sq_entries.max(1)),
            outstanding_store: None,
            next_tag: 1,
            line_bytes: cfg.line_bytes,
            lq_entries: cfg.lq_entries.max(1),
            sq_entries: cfg.sq_entries.max(1),
            rob_entries: cfg.rob_entries.max(1),
            issue_jitter: cfg.issue_jitter,
            squashes: 0,
            store_epoch: 0,
            finished_reported: false,
        }
    }

    /// The core's index.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// The pipeline strength this core runs with.
    pub fn strength(&self) -> CoreStrength {
        self.strength
    }

    fn is_relaxed(&self) -> bool {
        self.strength == CoreStrength::Relaxed
    }

    /// Returns `true` once every operation has retired and all stores have
    /// been written to the memory system.
    pub fn is_finished(&self) -> bool {
        self.next_fetch >= self.program.len()
            && self.window.is_empty()
            && self.store_buffer.is_empty()
            && self.outstanding_store.is_none()
    }

    /// Number of load-queue squashes performed (statistics / tests).
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    fn alloc_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn line_of(&self, addr: Address) -> LineAddr {
        LineAddr::containing(addr, self.line_bytes)
    }

    fn loads_in_window(&self) -> usize {
        self.window.iter().filter(|o| o.is_load()).count()
    }

    fn stores_in_window(&self) -> usize {
        self.window
            .iter()
            .filter(|o| {
                matches!(
                    o.op.kind,
                    TestOpKind::Write { .. }
                        | TestOpKind::WriteDataDp { .. }
                        | TestOpKind::WriteCtrlDp { .. }
                )
            })
            .count()
    }

    // ---- 1. Invalidation notices (Peekaboo squash) ----

    fn process_notices(&mut self, notices: &[LineAddr], bugs: &BugConfig) {
        // The relaxed core keeps no load→load ordering across addresses, so
        // it has nothing to repair on an invalidation; coherence (same-address
        // ordering) is preserved by issue stalls instead of squashes.
        if notices.is_empty() || bugs.has(Bug::LqNoTso) || self.is_relaxed() {
            return;
        }
        for &line in notices {
            // Find the first load to this line that has already performed, or
            // is in flight (its response may carry pre-invalidation data, e.g.
            // the IS_I "use the data once" case), and that has an unperformed
            // read-like op older than it.  That load and every younger load
            // are squashed and retried — the paper's "if there exist any
            // unperformed older reads and an invalidation is received, all
            // newer reads are retried".
            let mut squash_from: Option<usize> = None;
            let mut seen_unperformed_read = false;
            for (pos, op) in self.window.iter().enumerate() {
                if op.is_load()
                    && op.state != OpState::Waiting
                    && self.line_of(op.op.addr) == line
                    && seen_unperformed_read
                {
                    squash_from = Some(pos);
                    break;
                }
                if op.is_read_like() && op.state != OpState::Done {
                    seen_unperformed_read = true;
                }
            }
            if let Some(from) = squash_from {
                self.squashes += 1;
                SQUASHES.incr();
                for op in self.window.iter_mut().skip(from) {
                    if op.is_load() && op.state != OpState::Waiting {
                        op.state = OpState::Waiting;
                        op.read_value = None;
                    }
                }
            }
        }
    }

    // ---- 2. Responses from the L1 ----

    fn process_responses(&mut self, responses: &[CoreResponse], out: &mut CoreTickOutput) {
        for resp in responses {
            // Outstanding store-buffer drain?
            if let Some((tag, entry)) = self.outstanding_store {
                if tag == resp.tag {
                    match resp.kind {
                        CoreRespKind::StoreDone { overwritten } => {
                            out.observed.push(ObservedOp::Store {
                                poi: entry.poi,
                                addr: entry.addr,
                                value: entry.value,
                                overwritten,
                            });
                            self.outstanding_store = None;
                        }
                        other => {
                            unreachable!("store drain answered with {other:?}");
                        }
                    }
                    continue;
                }
            }
            // Window operation.
            for op in self.window.iter_mut() {
                if op.state == (OpState::Issued { tag: resp.tag }) {
                    match resp.kind {
                        CoreRespKind::LoadDone { value } => {
                            op.read_value = Some(value);
                            op.state = OpState::Done;
                        }
                        CoreRespKind::RmwDone { read_value } => {
                            op.read_value = Some(read_value);
                            op.state = OpState::Done;
                        }
                        CoreRespKind::StoreDone { .. } => {
                            // Stores issued directly from the window are not
                            // part of this model (they drain post-retirement),
                            // so this cannot happen.
                            unreachable!("window store response");
                        }
                        CoreRespKind::FlushDone | CoreRespKind::FenceDone => {
                            op.state = OpState::Done;
                        }
                    }
                    break;
                }
            }
            // Responses for squashed loads simply find no matching Issued op
            // and are dropped.
        }
    }

    // ---- 3. Fetch ----

    fn fetch(&mut self, cycle: Cycle) {
        while self.next_fetch < self.program.len() && self.window.len() < self.rob_entries {
            let op = self.program[self.next_fetch];
            match op.kind {
                TestOpKind::Read | TestOpKind::ReadAddrDp
                    if self.loads_in_window() >= self.lq_entries =>
                {
                    break;
                }
                TestOpKind::Write { .. }
                | TestOpKind::WriteDataDp { .. }
                | TestOpKind::WriteCtrlDp { .. }
                    if self.stores_in_window() + self.store_buffer.len() >= self.sq_entries =>
                {
                    break;
                }
                _ => {}
            }
            let ready_at = match op.kind {
                TestOpKind::Delay { cycles } => cycle + cycles as u64,
                _ => cycle,
            };
            self.window.push_back(InflightOp {
                idx: self.next_fetch,
                op,
                state: OpState::Waiting,
                read_value: None,
                ready_at,
            });
            self.next_fetch += 1;
        }
    }

    /// The newest program-order-earlier store value for `addr`, searching the
    /// window first (youngest first), then the store buffer and the in-flight
    /// drain (newest program-order match wins).
    ///
    /// Every committed-store lookup is bounded by the load's program-order
    /// index: the relaxed core commits stores into the buffer past incomplete
    /// older loads, so the buffer may hold stores *younger* than the load,
    /// which must not be forwarded.  (Under the strong core's in-order commit
    /// the bound is vacuous.)
    fn forwarded_value(&self, addr: Address, before_idx: usize) -> Option<u64> {
        for op in self.window.iter().rev() {
            if op.idx >= before_idx {
                continue;
            }
            if op.op.addr == addr {
                if let Some(value) = op.op.kind.written_value() {
                    return Some(value);
                }
            }
        }
        let poi = before_idx as u32;
        let mut best: Option<(u32, u64)> = self
            .store_buffer
            .forward_entry_before(addr, poi)
            .map(|e| (e.poi, e.value));
        if let Some((_, entry)) = &self.outstanding_store {
            if entry.addr == addr
                && entry.poi < poi
                && best.is_none_or(|(best_poi, _)| entry.poi > best_poi)
            {
                best = Some((entry.poi, entry.value));
            }
        }
        best.map(|(_, value)| value)
    }

    // ---- 4. Issue ----

    /// Returns `true` if a waiting load at window position `pos` must stall
    /// (may not issue this cycle), given the snapshot of the window.
    fn load_blocked(
        &self,
        window: &[(usize, InflightOp)],
        pos: usize,
        op: &InflightOp,
        bugs: &BugConfig,
    ) -> bool {
        let older = window.iter().filter(|(p, _)| *p < pos);
        if !self.is_relaxed() {
            // Strong core: loads never issue past an incomplete fence or
            // atomic: MFENCE (and locked RMWs) order later loads after them,
            // and issuing speculatively past them could not be repaired by
            // the invalidation-squash mechanism (fences are not reads, so the
            // Peekaboo rule would not fire).  Weaker fence flavours are
            // conservatively treated the same way.
            let mut older = older;
            if older.any(|(_, o)| {
                matches!(
                    o.op.kind,
                    TestOpKind::Fence { .. } | TestOpKind::ReadModifyWrite { .. }
                ) && o.state != OpState::Done
            }) {
                STALL_FENCE.incr();
                return true;
            }
            // An address-dependent read waits for the previous load.
            if matches!(op.op.kind, TestOpKind::ReadAddrDp)
                && !bugs.has(Bug::LqNoAddrDep)
                && window
                    .iter()
                    .any(|(p, o)| *p < pos && o.is_load() && o.state != OpState::Done)
            {
                STALL_DEP.incr();
                return true;
            }
            return false;
        }
        // Relaxed core: loads issue and perform past older loads and stores
        // to different addresses; only genuinely ordering constructs stall
        // them.
        for (_, o) in older {
            if o.state == OpState::Done {
                continue;
            }
            let blocking: Option<&telemetry::Counter> = match o.op.kind {
                // Only fence flavours that order later loads stall them; the
                // Fence+no-acquire bug drops exactly the acquire stall.
                TestOpKind::Fence { kind } => (fence_orders_later_loads(kind)
                    && !(kind == FenceKind::Acquire && bugs.has(Bug::FenceNoAcquire)))
                .then_some(&STALL_FENCE),
                // Locked RMWs keep their full-fence semantics.
                TestOpKind::ReadModifyWrite { .. } => Some(&STALL_FENCE),
                // Same-address ordering (coherence / po-loc) is preserved by
                // stalling, since the relaxed core has no squash to repair it.
                TestOpKind::Read | TestOpKind::ReadAddrDp => {
                    (o.op.addr == op.op.addr).then_some(&STALL_COHERENCE)
                }
                _ => None,
            };
            if let Some(cause) = blocking {
                cause.incr();
                return true;
            }
        }
        // Dependency-carrying loads stall on their source load; the
        // LQ+no-addr-dep bug drops the stall (the dependency edge is still
        // recorded by the observer, which is what makes the bug detectable).
        if matches!(op.op.kind, TestOpKind::ReadAddrDp)
            && !bugs.has(Bug::LqNoAddrDep)
            && window
                .iter()
                .any(|(p, o)| *p < pos && o.is_load() && o.state != OpState::Done)
        {
            STALL_DEP.incr();
            return true;
        }
        false
    }

    /// Returns `true` once every program-order-older read-like operation has
    /// performed (the completion condition of the relaxed core's locally
    /// executed fences).
    fn older_reads_done(window: &[(usize, InflightOp)], pos: usize) -> bool {
        window
            .iter()
            .all(|(p, o)| *p >= pos || !o.is_read_like() || o.state == OpState::Done)
    }

    fn issue(
        &mut self,
        cycle: Cycle,
        bugs: &BugConfig,
        out: &mut CoreTickOutput,
        rng: &mut StdRng,
    ) {
        if self.issue_jitter > 0 && rng.gen_range(0u32..65536) < self.issue_jitter as u32 {
            return;
        }
        let mut issued = 0usize;
        let issue_width = 4usize;
        let sb_empty = self.store_buffer.is_empty() && self.outstanding_store.is_none();
        // Collected requests are appended after the loop to appease borrowing.
        let mut new_requests: Vec<(usize, CoreReqKind, Address)> = Vec::new();

        // Pass 1: decide which window slots issue this cycle.
        let window_snapshot: Vec<(usize, InflightOp)> = self
            .window
            .iter()
            .enumerate()
            .map(|(pos, op)| (pos, *op))
            .collect();
        for (pos, op) in &window_snapshot {
            if issued >= issue_width {
                break;
            }
            if op.state != OpState::Waiting {
                continue;
            }
            match op.op.kind {
                TestOpKind::Read | TestOpKind::ReadAddrDp => {
                    if self.load_blocked(&window_snapshot, *pos, op, bugs) {
                        continue;
                    }
                    if let Some(value) = self.forwarded_value(op.op.addr, op.idx) {
                        SB_FORWARDS.incr();
                        let slot = &mut self.window[*pos];
                        slot.read_value = Some(value);
                        slot.state = OpState::Done;
                        issued += 1;
                    } else {
                        new_requests.push((*pos, CoreReqKind::Load, op.op.addr));
                        issued += 1;
                    }
                }
                TestOpKind::Write { .. } => {
                    // Stores complete in the window immediately; they perform
                    // later, from the store buffer.
                    self.window[*pos].state = OpState::Done;
                }
                TestOpKind::WriteDataDp { .. } | TestOpKind::WriteCtrlDp { .. } => {
                    // A dependent store cannot compute its data (or resolve
                    // its guarding branch) until the load it depends on has
                    // performed; it completes in the window only then.  The
                    // SQ+no-data-dep / SQ+no-ctrl-dep bugs drop the wait for
                    // their dependency kind, which only the relaxed core's
                    // early store commit can turn into an observable
                    // reordering (the strong core retires in order).
                    let dep_ignored = match op.op.kind {
                        TestOpKind::WriteDataDp { .. } => bugs.has(Bug::SqNoDataDep),
                        TestOpKind::WriteCtrlDp { .. } => bugs.has(Bug::SqNoCtrlDep),
                        _ => unreachable!(),
                    };
                    let prior_load_pending = window_snapshot
                        .iter()
                        .any(|(p, o)| *p < *pos && o.is_load() && o.state != OpState::Done);
                    if dep_ignored || !prior_load_pending {
                        self.window[*pos].state = OpState::Done;
                    }
                }
                TestOpKind::ReadModifyWrite { value } => {
                    if *pos == 0 && sb_empty {
                        new_requests.push((
                            *pos,
                            CoreReqKind::Rmw { write_value: value },
                            op.op.addr,
                        ));
                        issued += 1;
                    }
                }
                TestOpKind::Fence { kind } => {
                    if self.is_relaxed() && kind != FenceKind::Full {
                        // The relaxed core executes the weaker fence flavours
                        // locally, by kind.  Store-store and release fences
                        // complete immediately: in-order retirement already
                        // delays them past everything older, and their
                        // store-side ordering is the store-buffer epoch bumped
                        // at retirement.  The flavours that order later loads
                        // (acquire, load-load, lwsync) complete only once
                        // every older read has performed, so the load stall
                        // on them is meaningful.
                        let done = match kind {
                            FenceKind::StoreStore | FenceKind::Release => true,
                            _ => Self::older_reads_done(&window_snapshot, *pos),
                        };
                        if done {
                            self.window[*pos].state = OpState::Done;
                        }
                    } else if *pos == 0 && sb_empty {
                        // Full fences (and every flavour on the strong core)
                        // execute at the head of the window with the store
                        // buffer drained.
                        new_requests.push((*pos, CoreReqKind::Fence, op.op.addr));
                        issued += 1;
                    }
                }
                TestOpKind::CacheFlush => {
                    new_requests.push((*pos, CoreReqKind::Flush, op.op.addr));
                    issued += 1;
                }
                TestOpKind::Delay { .. } => {
                    if cycle >= op.ready_at {
                        self.window[*pos].state = OpState::Done;
                    }
                }
            }
        }
        ISSUED_REQUESTS.add(new_requests.len() as u64);
        for (pos, kind, addr) in new_requests {
            let tag = self.alloc_tag();
            self.window[pos].state = OpState::Issued { tag };
            out.requests.push(CoreRequest { tag, addr, kind });
        }
    }

    // ---- 5. Retire ----

    fn retire(&mut self, out: &mut CoreTickOutput) {
        while let Some(front) = self.window.front() {
            if front.state != OpState::Done {
                break;
            }
            match front.op.kind {
                TestOpKind::Write { value }
                | TestOpKind::WriteDataDp { value }
                | TestOpKind::WriteCtrlDp { value } => {
                    if self.store_buffer.is_full() {
                        break;
                    }
                    self.store_buffer.push(StoreBufferEntry {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        value,
                        epoch: self.store_epoch,
                    });
                }
                TestOpKind::Read | TestOpKind::ReadAddrDp => {
                    let Some(value) = front.read_value else {
                        unreachable!("retired load has a value");
                    };
                    out.observed.push(ObservedOp::Load {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        value,
                    });
                }
                TestOpKind::ReadModifyWrite { value } => {
                    let Some(read_value) = front.read_value else {
                        unreachable!("retired RMW has a read value");
                    };
                    out.observed.push(ObservedOp::Rmw {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        write_value: value,
                        read_value,
                    });
                }
                TestOpKind::Fence { kind } => {
                    if self.is_relaxed() && fence_orders_stores(kind) {
                        // Later stores commit into a fresh store-buffer epoch,
                        // so the relaxed drain cannot reorder them with stores
                        // from before the fence.
                        self.store_epoch += 1;
                    }
                    out.observed.push(ObservedOp::Fence {
                        poi: front.idx as u32,
                    });
                }
                TestOpKind::CacheFlush | TestOpKind::Delay { .. } => {}
            }
            self.window.pop_front();
        }
        if self.is_relaxed() {
            self.commit_stores_early();
        }
    }

    /// Relaxed-core load→store reordering: completed stores commit into the
    /// store buffer past incomplete older operations, as long as every
    /// skipped operation is a plain load (or flush) to a *different* address.
    ///
    /// The scan walks the window front-to-back and stops at the first fence,
    /// atomic or delay still in flight, so fence-separated stores can never
    /// leapfrog their barrier, and same-address stores always commit in
    /// program order (a skipped or stuck access blocks every younger access
    /// to its address).
    fn commit_stores_early(&mut self) {
        let mut blocked_addrs: Vec<Address> = Vec::new();
        let mut pos = 0;
        while pos < self.window.len() {
            let op = self.window[pos];
            let is_store = matches!(
                op.op.kind,
                TestOpKind::Write { .. }
                    | TestOpKind::WriteDataDp { .. }
                    | TestOpKind::WriteCtrlDp { .. }
            );
            if is_store && op.state == OpState::Done {
                if self.store_buffer.is_full() {
                    return;
                }
                if blocked_addrs.contains(&op.op.addr) {
                    // A younger same-address store must not overtake; keep
                    // scanning, but nothing to this address may commit.
                    pos += 1;
                    continue;
                }
                let Some(value) = op.op.kind.written_value() else {
                    unreachable!("stores carry a value");
                };
                SB_EARLY_COMMITS.incr();
                self.store_buffer.push(StoreBufferEntry {
                    poi: op.idx as u32,
                    addr: op.op.addr,
                    value,
                    epoch: self.store_epoch,
                });
                let _ = self.window.remove(pos);
                continue; // the next op shifted into `pos`
            }
            match op.op.kind {
                // Incomplete loads and flushes are skippable; their address
                // blocks younger stores (po-loc must survive the reorder).
                TestOpKind::Read | TestOpKind::ReadAddrDp | TestOpKind::CacheFlush => {
                    if op.state != OpState::Done {
                        blocked_addrs.push(op.op.addr);
                    }
                }
                // A not-yet-completed (dependency-stalled or stuck) store
                // pins its address but does not stop the scan.
                TestOpKind::Write { .. }
                | TestOpKind::WriteDataDp { .. }
                | TestOpKind::WriteCtrlDp { .. } => {
                    blocked_addrs.push(op.op.addr);
                }
                // Delays are timing perturbation, not ordering: skippable.
                TestOpKind::Delay { .. } => {}
                // Fences and atomics are hard barriers for the early commit:
                // a store committing past an unretired store-ordering fence
                // would land in the pre-fence epoch.
                TestOpKind::Fence { .. } | TestOpKind::ReadModifyWrite { .. } => return,
            }
            pos += 1;
        }
    }

    // ---- 6. Store buffer drain ----

    fn drain_store_buffer(&mut self, bugs: &BugConfig, out: &mut CoreTickOutput, rng: &mut StdRng) {
        if self.outstanding_store.is_some() {
            return;
        }
        let out_of_order = bugs.has(Bug::SqNoFifo);
        let next = if self.is_relaxed() && !out_of_order {
            // Out of program order within a fence epoch, same-address entries
            // in order; the SQ+no-FIFO bug (above) ignores even those fences.
            self.store_buffer.begin_drain_relaxed(rng)
        } else {
            self.store_buffer.begin_drain(out_of_order, rng)
        };
        if let Some(entry) = next {
            SB_DRAINS.incr();
            let tag = self.alloc_tag();
            self.outstanding_store = Some((tag, entry));
            out.requests.push(CoreRequest {
                tag,
                addr: entry.addr,
                kind: CoreReqKind::Store { value: entry.value },
            });
        }
    }

    /// Advances the core by one cycle.
    pub fn tick(
        &mut self,
        cycle: Cycle,
        bugs: &BugConfig,
        responses: &[CoreResponse],
        notices: &[LineAddr],
        rng: &mut StdRng,
    ) -> CoreTickOutput {
        let mut out = CoreTickOutput::default();
        if self.is_finished() {
            self.finished_reported = true;
            return out;
        }
        // Notices are processed before responses so that a self-invalidation
        // delivered together with a load's data still squashes younger
        // speculative loads (the older load is still unperformed at that
        // point).
        self.process_notices(notices, bugs);
        self.process_responses(responses, &mut out);
        self.fetch(cycle);
        self.issue(cycle, bugs, &mut out, rng);
        self.retire(&mut out);
        self.drain_store_buffer(bugs, &mut out, rng);
        out
    }

    /// Instruction count of the thread program (statistics).
    pub fn program_len(&self) -> usize {
        self.program.len()
    }
}

/// Builds the per-core models for a whole test program.
pub fn cores_for_program(
    program: &crate::program::TestProgram,
    cfg: &SystemConfig,
) -> Vec<CoreModel> {
    let mut map: BTreeMap<usize, ThreadProgram> = BTreeMap::new();
    for (t, ops) in program.threads().iter().enumerate() {
        map.insert(t, ops.clone());
    }
    (0..cfg.num_cores)
        .map(|c| CoreModel::new(c, map.get(&c).cloned().unwrap_or_default(), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;
    use rand::SeedableRng;

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::small(ProtocolKind::Mesi);
        c.issue_jitter = 0;
        c
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn empty_program_is_immediately_finished() {
        let core = CoreModel::new(0, vec![], &cfg());
        assert!(core.is_finished());
    }

    #[test]
    fn loads_issue_out_of_order_and_retire_in_order() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x200))];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 2, "both loads issue in the same cycle");
        let tag0 = out.requests[0].tag;
        let tag1 = out.requests[1].tag;
        // Answer the *younger* load first.
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: tag1,
                kind: CoreRespKind::LoadDone { value: 7 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.is_empty(), "younger load cannot retire first");
        // Now the older one.
        let out = core.tick(
            3,
            &bugs,
            &[CoreResponse {
                tag: tag0,
                kind: CoreRespKind::LoadDone { value: 3 },
            }],
            &[],
            &mut rng,
        );
        assert_eq!(
            out.observed,
            vec![
                ObservedOp::Load {
                    poi: 0,
                    addr: Address(0x100),
                    value: 3
                },
                ObservedOp::Load {
                    poi: 1,
                    addr: Address(0x200),
                    value: 7
                },
            ],
            "loads retire in program order with their observed values"
        );
        assert!(core.is_finished());
    }

    #[test]
    fn store_forwarding_satisfies_younger_load_without_cache_access() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 42),
            TestOp::read(Address(0x100)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        // The only cache request is the store-buffer drain of the write; the
        // load was forwarded.
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(
            out.requests[0].kind,
            CoreReqKind::Store { value: 42 }
        ));
        assert!(out
            .observed
            .iter()
            .any(|o| matches!(o, ObservedOp::Load { value: 42, .. })));
        // Finish the drain.
        let tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.iter().any(|o| matches!(
            o,
            ObservedOp::Store {
                value: 42,
                overwritten: 0,
                ..
            }
        )));
        assert!(core.is_finished());
    }

    #[test]
    fn stores_drain_in_fifo_order_without_the_bug() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::write(Address(0x200), 2),
            TestOp::write(Address(0x300), 3),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut drained = Vec::new();
        // A trivial cache stub: every store request is acknowledged on the
        // following cycle.
        let mut pending_acks: Vec<CoreResponse> = Vec::new();
        for cycle in 1..200 {
            let responses = std::mem::take(&mut pending_acks);
            let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
            for req in &out.requests {
                if let CoreReqKind::Store { value } = req.kind {
                    drained.push(value);
                    pending_acks.push(CoreResponse {
                        tag: req.tag,
                        kind: CoreRespKind::StoreDone { overwritten: 0 },
                    });
                }
            }
            if core.is_finished() {
                break;
            }
        }
        assert_eq!(drained, vec![1, 2, 3], "FIFO drain order");
        assert!(core.is_finished());
    }

    #[test]
    fn rmw_waits_for_store_buffer_drain() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::rmw(Address(0x200), 2),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        // Only the store drain may be outstanding; the RMW must wait.
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(out.requests[0].kind, CoreReqKind::Store { .. }));
        let store_tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: store_tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        // Now (or next cycle) the RMW issues.
        let rmw_req = out
            .requests
            .iter()
            .chain(core.tick(3, &bugs, &[], &[], &mut rng).requests.iter())
            .find(|r| matches!(r.kind, CoreReqKind::Rmw { .. }))
            .copied()
            .expect("RMW issues after the store buffer drained");
        let out = core.tick(
            4,
            &bugs,
            &[CoreResponse {
                tag: rmw_req.tag,
                kind: CoreRespKind::RmwDone { read_value: 9 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.iter().any(|o| matches!(
            o,
            ObservedOp::Rmw {
                read_value: 9,
                write_value: 2,
                ..
            }
        )));
        assert!(core.is_finished());
    }

    #[test]
    fn invalidation_notice_squashes_younger_performed_load() {
        let cfg = cfg();
        let rng = rng();
        // Older load to X (will stay unperformed), younger load to Y
        // (performed early); an invalidation for Y must squash the younger
        // load so it re-executes.
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x200))];
        for (bugs, expect_requeue) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::LqNoTso), false),
        ] {
            let mut core = CoreModel::new(0, program.clone(), &cfg);
            let mut rng2 = StdRng::seed_from_u64(13);
            let out = core.tick(1, &bugs, &[], &[], &mut rng2);
            assert_eq!(out.requests.len(), 2);
            let young_tag = out.requests[1].tag;
            // The younger load performs.
            core.tick(
                2,
                &bugs,
                &[CoreResponse {
                    tag: young_tag,
                    kind: CoreRespKind::LoadDone { value: 5 },
                }],
                &[],
                &mut rng2,
            );
            // An invalidation for the younger load's line arrives.
            let out = core.tick(3, &bugs, &[], &[LineAddr(0x200)], &mut rng2);
            let reissued = out
                .requests
                .iter()
                .any(|r| r.addr == Address(0x200) && matches!(r.kind, CoreReqKind::Load));
            assert_eq!(
                reissued, expect_requeue,
                "squash-and-retry must track the LQ+no-TSO bug"
            );
            assert_eq!(core.squashes() > 0, expect_requeue);
            let _ = rng;
        }
    }

    #[test]
    fn dependent_store_waits_for_its_load() {
        let cfg = cfg();
        let mut rng = rng();
        // R x; Wdata y: the store may not drain before the load performs.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::write_data_dp(Address(0x200), 9),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 1, "only the load may issue");
        assert!(matches!(out.requests[0].kind, CoreReqKind::Load));
        let load_tag = out.requests[0].tag;
        // Nothing drains while the load is outstanding.
        let out = core.tick(2, &bugs, &[], &[], &mut rng);
        assert!(out.requests.is_empty(), "dependent store must wait");
        // Once the load completes, the store retires into the buffer and
        // drains.
        let out = core.tick(
            3,
            &bugs,
            &[CoreResponse {
                tag: load_tag,
                kind: CoreRespKind::LoadDone { value: 1 },
            }],
            &[],
            &mut rng,
        );
        let drained = out
            .requests
            .iter()
            .chain(core.tick(4, &bugs, &[], &[], &mut rng).requests.iter())
            .any(|r| matches!(r.kind, CoreReqKind::Store { value: 9 }));
        assert!(drained, "dependent store drains after its load performs");
    }

    #[test]
    fn weak_fences_execute_like_full_fences() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::fence_of(mcversi_mcm::FenceKind::LightweightSync),
            TestOp::read(Address(0x200)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut pending: Vec<CoreResponse> = Vec::new();
        let mut fence_retired = false;
        for cycle in 1..100 {
            let responses = std::mem::take(&mut pending);
            let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
            for req in &out.requests {
                let kind = match req.kind {
                    CoreReqKind::Store { .. } => CoreRespKind::StoreDone { overwritten: 0 },
                    CoreReqKind::Fence => CoreRespKind::FenceDone,
                    CoreReqKind::Load => CoreRespKind::LoadDone { value: 0 },
                    _ => continue,
                };
                pending.push(CoreResponse { tag: req.tag, kind });
            }
            fence_retired |= out
                .observed
                .iter()
                .any(|o| matches!(o, ObservedOp::Fence { poi: 1 }));
            if core.is_finished() {
                break;
            }
        }
        assert!(fence_retired, "lwsync-flavoured fence retires");
        assert!(core.is_finished());
    }

    #[test]
    fn delay_and_flush_ops_complete() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::delay(3), TestOp::flush(Address(0x100))];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut flush_tag = None;
        for cycle in 1..20 {
            let out = core.tick(cycle, &bugs, &[], &[], &mut rng);
            if let Some(req) = out
                .requests
                .iter()
                .find(|r| matches!(r.kind, CoreReqKind::Flush))
            {
                flush_tag = Some(req.tag);
                break;
            }
        }
        let tag = flush_tag.expect("flush issued");
        for cycle in 20..40 {
            let responses = [CoreResponse {
                tag,
                kind: CoreRespKind::FlushDone,
            }];
            core.tick(cycle, &bugs, &responses, &[], &mut rng);
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
    }

    #[test]
    fn fence_waits_for_store_buffer_and_reports_retirement() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::write(Address(0x100), 1), TestOp::fence()];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(out.requests[0].kind, CoreReqKind::Store { .. }));
        let store_tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: store_tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        let fence_req = out
            .requests
            .iter()
            .chain(core.tick(3, &bugs, &[], &[], &mut rng).requests.iter())
            .find(|r| matches!(r.kind, CoreReqKind::Fence))
            .copied()
            .expect("fence issues after the drain");
        let out = core.tick(
            4,
            &bugs,
            &[CoreResponse {
                tag: fence_req.tag,
                kind: CoreRespKind::FenceDone,
            }],
            &[],
            &mut rng,
        );
        assert!(out
            .observed
            .iter()
            .any(|o| matches!(o, ObservedOp::Fence { poi: 1 })));
        assert!(core.is_finished());
    }

    // ---- Relaxed pipeline ----

    fn cfg_relaxed() -> SystemConfig {
        let mut c = SystemConfig::small(ProtocolKind::Mesi);
        c.core_strength = CoreStrength::Relaxed;
        c.issue_jitter = 0;
        c
    }

    #[test]
    fn relaxed_core_does_not_squash_on_invalidation() {
        let cfg = cfg_relaxed();
        let mut rng = rng();
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x200))];
        let mut core = CoreModel::new(0, program, &cfg);
        assert_eq!(core.strength(), CoreStrength::Relaxed);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 2, "both loads issue out of order");
        let young_tag = out.requests[1].tag;
        core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: young_tag,
                kind: CoreRespKind::LoadDone { value: 5 },
            }],
            &[],
            &mut rng,
        );
        // An invalidation for the younger load's line arrives while the older
        // load is unperformed: the relaxed core keeps the performed value.
        let out = core.tick(3, &bugs, &[], &[LineAddr(0x200)], &mut rng);
        assert!(out.requests.is_empty(), "no squash-and-retry");
        assert_eq!(core.squashes(), 0);
    }

    #[test]
    fn relaxed_core_stalls_same_address_younger_load() {
        let cfg = cfg_relaxed();
        let mut rng = rng();
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x100))];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(
            out.requests.len(),
            1,
            "the same-address younger load must wait (coherence)"
        );
    }

    #[test]
    fn relaxed_store_commits_past_incomplete_load() {
        let cfg = cfg_relaxed();
        let mut rng = rng();
        // R x; W y: the store drains while the load is still outstanding —
        // the load→store reordering the strong core can never exhibit.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::write(Address(0x200), 9),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        let kinds: Vec<_> = out.requests.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&CoreReqKind::Load));
        let drained = out
            .requests
            .iter()
            .chain(core.tick(2, &bugs, &[], &[], &mut rng).requests.iter())
            .any(|r| matches!(r.kind, CoreReqKind::Store { value: 9 }));
        assert!(drained, "store must drain before the older load performs");
    }

    #[test]
    fn relaxed_store_does_not_pass_same_address_load_or_fence() {
        let cfg = cfg_relaxed();
        let bugs = BugConfig::none();
        // Same address: R x; W x must not drain early.
        let mut rng2 = rng();
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::write(Address(0x100), 9),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let out = core.tick(1, &bugs, &[], &[], &mut rng2);
        assert!(
            !out.requests
                .iter()
                .any(|r| matches!(r.kind, CoreReqKind::Store { .. })),
            "same-address store must not overtake the load"
        );
        // Fenced: R x; lwsync; W y must not drain before the load performs.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::fence_of(mcversi_mcm::FenceKind::LightweightSync),
            TestOp::write(Address(0x200), 9),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let out = core.tick(1, &bugs, &[], &[], &mut rng2);
        assert!(
            !out.requests
                .iter()
                .any(|r| matches!(r.kind, CoreReqKind::Store { .. })),
            "a store must not leapfrog a pending lwsync"
        );
    }

    #[test]
    fn relaxed_store_buffer_drains_out_of_order_unless_fenced() {
        let cfg = cfg_relaxed();
        let bugs = BugConfig::none();
        let drain_order = |program: Vec<TestOp>, seed: u64| -> Vec<u64> {
            let mut core = CoreModel::new(0, program, &cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut drained = Vec::new();
            let mut pending: Vec<CoreResponse> = Vec::new();
            for cycle in 1..300 {
                let responses = std::mem::take(&mut pending);
                let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
                for req in &out.requests {
                    match req.kind {
                        CoreReqKind::Store { value } => {
                            drained.push(value);
                            pending.push(CoreResponse {
                                tag: req.tag,
                                kind: CoreRespKind::StoreDone { overwritten: 0 },
                            });
                        }
                        CoreReqKind::Fence => pending.push(CoreResponse {
                            tag: req.tag,
                            kind: CoreRespKind::FenceDone,
                        }),
                        _ => {}
                    }
                }
                if core.is_finished() {
                    break;
                }
            }
            drained
        };
        let unfenced = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::write(Address(0x200), 2),
            TestOp::write(Address(0x300), 3),
            TestOp::write(Address(0x400), 4),
        ];
        let mut reordered = false;
        for seed in 0..40 {
            if drain_order(unfenced.clone(), seed) != vec![1, 2, 3, 4] {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "unfenced relaxed drain never reordered");
        // Store-store fences between every pair pin the order.
        let fenced = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::fence_of(mcversi_mcm::FenceKind::StoreStore),
            TestOp::write(Address(0x200), 2),
            TestOp::fence_of(mcversi_mcm::FenceKind::StoreStore),
            TestOp::write(Address(0x300), 3),
        ];
        for seed in 0..40 {
            assert_eq!(
                drain_order(fenced.clone(), seed),
                vec![1, 2, 3],
                "sfence-separated stores must drain in order"
            );
        }
    }

    #[test]
    fn relaxed_acquire_fence_stalls_younger_loads_unless_bugged() {
        let cfg = cfg_relaxed();
        // R y; acq; R x — the younger load may not issue until the older load
        // performs; the Fence+no-acquire bug lets it.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::fence_of(mcversi_mcm::FenceKind::Acquire),
            TestOp::read(Address(0x200)),
        ];
        for (bugs, expect_early) in [
            (BugConfig::none(), false),
            (BugConfig::single(Bug::FenceNoAcquire), true),
        ] {
            let mut core = CoreModel::new(0, program.clone(), &cfg);
            let mut rng = StdRng::seed_from_u64(21);
            let out = core.tick(1, &bugs, &[], &[], &mut rng);
            let early = out
                .requests
                .iter()
                .any(|r| r.addr == Address(0x200) && matches!(r.kind, CoreReqKind::Load));
            assert_eq!(early, expect_early, "acquire stall must track the bug");
        }
    }

    #[test]
    fn relaxed_release_fence_does_not_stall_younger_loads() {
        let cfg = cfg_relaxed();
        let mut rng = rng();
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::fence_of(mcversi_mcm::FenceKind::Release),
            TestOp::read(Address(0x200)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(
            out.requests.len(),
            2,
            "a release fence orders only later writes; both loads issue"
        );
    }

    #[test]
    fn relaxed_addr_dep_stall_tracks_the_lq_no_addr_dep_bug() {
        let cfg = cfg_relaxed();
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::read_addr_dp(Address(0x200)),
        ];
        for (bugs, expect_early) in [
            (BugConfig::none(), false),
            (BugConfig::single(Bug::LqNoAddrDep), true),
        ] {
            let mut core = CoreModel::new(0, program.clone(), &cfg);
            let mut rng = StdRng::seed_from_u64(23);
            let out = core.tick(1, &bugs, &[], &[], &mut rng);
            let early = out
                .requests
                .iter()
                .any(|r| r.addr == Address(0x200) && matches!(r.kind, CoreReqKind::Load));
            assert_eq!(early, expect_early, "addr-dep stall must track the bug");
        }
    }

    #[test]
    fn relaxed_dependent_store_commit_tracks_the_dep_bugs() {
        let cfg = cfg_relaxed();
        for (make_store, bug) in [
            (
                TestOp::write_data_dp as fn(Address, u64) -> TestOp,
                Bug::SqNoDataDep,
            ),
            (TestOp::write_ctrl_dp, Bug::SqNoCtrlDep),
        ] {
            let program = vec![TestOp::read(Address(0x100)), make_store(Address(0x200), 9)];
            for (bugs, expect_early) in [(BugConfig::none(), false), (BugConfig::single(bug), true)]
            {
                let mut core = CoreModel::new(0, program.clone(), &cfg);
                let mut rng = StdRng::seed_from_u64(29);
                let out = core.tick(1, &bugs, &[], &[], &mut rng);
                let drained = out
                    .requests
                    .iter()
                    .chain(core.tick(2, &bugs, &[], &[], &mut rng).requests.iter())
                    .any(|r| matches!(r.kind, CoreReqKind::Store { value: 9 }));
                assert_eq!(
                    drained, expect_early,
                    "{bug}: dependent-store commit must track the bug"
                );
            }
        }
    }

    #[test]
    fn relaxed_forwarding_never_reads_younger_committed_stores() {
        let cfg = cfg_relaxed();
        let mut rng = rng();
        // R x (slow); W x=7 would be *younger*: it cannot early-commit (same
        // address), and even a different-address early commit must not be
        // forwarded to an older load.  Shape: R y; W x; R x — the trailing
        // load forwards 7, the leading load must not.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::write(Address(0x200), 7),
            TestOp::read(Address(0x200)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        // The younger load forwards from the (possibly committed) store...
        let mut observed = Vec::new();
        let mut pending: Vec<CoreResponse> = Vec::new();
        observed.extend(out.observed.iter().copied());
        for req in &out.requests {
            let kind = match req.kind {
                CoreReqKind::Load => CoreRespKind::LoadDone { value: 0 },
                CoreReqKind::Store { .. } => CoreRespKind::StoreDone { overwritten: 0 },
                _ => continue,
            };
            pending.push(CoreResponse { tag: req.tag, kind });
        }
        for cycle in 2..50 {
            let responses = std::mem::take(&mut pending);
            let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
            for req in &out.requests {
                let kind = match req.kind {
                    CoreReqKind::Load => CoreRespKind::LoadDone { value: 0 },
                    CoreReqKind::Store { .. } => CoreRespKind::StoreDone { overwritten: 0 },
                    _ => continue,
                };
                pending.push(CoreResponse { tag: req.tag, kind });
            }
            observed.extend(out.observed.iter().copied());
            if core.is_finished() {
                break;
            }
        }
        assert!(observed.iter().any(|o| matches!(
            o,
            ObservedOp::Load {
                poi: 2,
                value: 7,
                ..
            }
        )));
        assert!(observed.iter().any(|o| matches!(
            o,
            ObservedOp::Load {
                poi: 0,
                value: 0,
                ..
            }
        )));
    }

    #[test]
    fn cores_for_program_pads_idle_cores() {
        let cfg = cfg();
        let program = crate::program::TestProgram::new(vec![
            vec![TestOp::read(Address(0x100))],
            vec![TestOp::write(Address(0x100), 1)],
        ]);
        let cores = cores_for_program(&program, &cfg);
        assert_eq!(cores.len(), cfg.num_cores);
        assert_eq!(cores[0].program_len(), 1);
        assert_eq!(cores[1].program_len(), 1);
        assert!(cores[2].is_finished(), "cores without a thread are idle");
    }
}
