//! The out-of-order core model (load queue, store queue, store buffer).
//!
//! Each simulated core executes one thread of the test program.  The model is
//! deliberately focused on the memory-ordering-relevant behaviour of an
//! out-of-order x86 core:
//!
//! * loads issue speculatively and out of order (hit-under-miss), bounded by
//!   the load-queue size;
//! * a load whose line loses read permission (an *invalidation notice* from
//!   the L1) while older loads are still unperformed is squashed together with
//!   all younger loads and retried — the standard "Peekaboo" handling the
//!   paper describes; the [`Bug::LqNoTso`] bug disables this squash;
//! * stores retire into a FIFO store buffer which drains to the L1 one store
//!   at a time, with store→load forwarding; [`Bug::SqNoFifo`] drains the
//!   buffer out of order;
//! * atomic read-modify-writes and fences drain the store buffer and execute
//!   at the head of the window (x86 locked-instruction semantics).
//!
//! [`Bug::LqNoTso`]: crate::bugs::Bug::LqNoTso
//! [`Bug::SqNoFifo`]: crate::bugs::Bug::SqNoFifo

use crate::bugs::{Bug, BugConfig};
use crate::config::SystemConfig;
use crate::lsq::{StoreBuffer, StoreBufferEntry};
use crate::program::{TestOp, TestOpKind, ThreadProgram};
use crate::protocol::{CoreReqKind, CoreRequest, CoreRespKind, CoreResponse};
use crate::types::{Cycle, LineAddr};
use mcversi_mcm::Address;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// An architecturally performed operation, reported to the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedOp {
    /// A retired load and the value it read.
    Load {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address read.
        addr: Address,
        /// Value read.
        value: u64,
    },
    /// A store that has been performed in the memory system.
    Store {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address written.
        addr: Address,
        /// Value written.
        value: u64,
        /// The value the store overwrote (for coherence-order construction).
        overwritten: u64,
    },
    /// An atomic read-modify-write that has been performed.
    Rmw {
        /// Program-order index of the instruction.
        poi: u32,
        /// Address accessed.
        addr: Address,
        /// Value written.
        write_value: u64,
        /// Value read (and overwritten).
        read_value: u64,
    },
    /// A retired fence.
    Fence {
        /// Program-order index of the instruction.
        poi: u32,
    },
}

/// Everything a core produces in one cycle.
#[derive(Debug, Default)]
pub struct CoreTickOutput {
    /// Requests for the core's L1.
    pub requests: Vec<CoreRequest>,
    /// Architecturally performed operations for the observer.
    pub observed: Vec<ObservedOp>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    Waiting,
    Issued { tag: u64 },
    Done,
}

#[derive(Debug, Clone, Copy)]
struct InflightOp {
    idx: usize,
    op: TestOp,
    state: OpState,
    /// Value read (loads / RMW read half).
    read_value: Option<u64>,
    /// Earliest cycle at which the op may complete (delays).
    ready_at: Cycle,
}

impl InflightOp {
    fn is_load(&self) -> bool {
        matches!(self.op.kind, TestOpKind::Read | TestOpKind::ReadAddrDp)
    }

    fn is_read_like(&self) -> bool {
        self.is_load() || matches!(self.op.kind, TestOpKind::ReadModifyWrite { .. })
    }
}

/// The per-core execution engine.
#[derive(Debug)]
pub struct CoreModel {
    core_id: usize,
    program: ThreadProgram,
    next_fetch: usize,
    window: VecDeque<InflightOp>,
    store_buffer: StoreBuffer,
    outstanding_store: Option<(u64, StoreBufferEntry)>,
    next_tag: u64,
    line_bytes: u64,
    lq_entries: usize,
    sq_entries: usize,
    rob_entries: usize,
    issue_jitter: u16,
    squashes: u64,
    finished_reported: bool,
}

impl CoreModel {
    /// Creates a core executing `program`.
    pub fn new(core_id: usize, program: ThreadProgram, cfg: &SystemConfig) -> Self {
        CoreModel {
            core_id,
            program,
            next_fetch: 0,
            window: VecDeque::new(),
            store_buffer: StoreBuffer::new(cfg.sq_entries.max(1)),
            outstanding_store: None,
            next_tag: 1,
            line_bytes: cfg.line_bytes,
            lq_entries: cfg.lq_entries.max(1),
            sq_entries: cfg.sq_entries.max(1),
            rob_entries: cfg.rob_entries.max(1),
            issue_jitter: cfg.issue_jitter,
            squashes: 0,
            finished_reported: false,
        }
    }

    /// The core's index.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Returns `true` once every operation has retired and all stores have
    /// been written to the memory system.
    pub fn is_finished(&self) -> bool {
        self.next_fetch >= self.program.len()
            && self.window.is_empty()
            && self.store_buffer.is_empty()
            && self.outstanding_store.is_none()
    }

    /// Number of load-queue squashes performed (statistics / tests).
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    fn alloc_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn line_of(&self, addr: Address) -> LineAddr {
        LineAddr::containing(addr, self.line_bytes)
    }

    fn loads_in_window(&self) -> usize {
        self.window.iter().filter(|o| o.is_load()).count()
    }

    fn stores_in_window(&self) -> usize {
        self.window
            .iter()
            .filter(|o| {
                matches!(
                    o.op.kind,
                    TestOpKind::Write { .. }
                        | TestOpKind::WriteDataDp { .. }
                        | TestOpKind::WriteCtrlDp { .. }
                )
            })
            .count()
    }

    // ---- 1. Invalidation notices (Peekaboo squash) ----

    fn process_notices(&mut self, notices: &[LineAddr], bugs: &BugConfig) {
        if notices.is_empty() || bugs.has(Bug::LqNoTso) {
            return;
        }
        for &line in notices {
            // Find the first load to this line that has already performed, or
            // is in flight (its response may carry pre-invalidation data, e.g.
            // the IS_I "use the data once" case), and that has an unperformed
            // read-like op older than it.  That load and every younger load
            // are squashed and retried — the paper's "if there exist any
            // unperformed older reads and an invalidation is received, all
            // newer reads are retried".
            let mut squash_from: Option<usize> = None;
            let mut seen_unperformed_read = false;
            for (pos, op) in self.window.iter().enumerate() {
                if op.is_load()
                    && op.state != OpState::Waiting
                    && self.line_of(op.op.addr) == line
                    && seen_unperformed_read
                {
                    squash_from = Some(pos);
                    break;
                }
                if op.is_read_like() && op.state != OpState::Done {
                    seen_unperformed_read = true;
                }
            }
            if let Some(from) = squash_from {
                self.squashes += 1;
                for op in self.window.iter_mut().skip(from) {
                    if op.is_load() && op.state != OpState::Waiting {
                        op.state = OpState::Waiting;
                        op.read_value = None;
                    }
                }
            }
        }
    }

    // ---- 2. Responses from the L1 ----

    fn process_responses(&mut self, responses: &[CoreResponse], out: &mut CoreTickOutput) {
        for resp in responses {
            // Outstanding store-buffer drain?
            if let Some((tag, entry)) = self.outstanding_store {
                if tag == resp.tag {
                    match resp.kind {
                        CoreRespKind::StoreDone { overwritten } => {
                            out.observed.push(ObservedOp::Store {
                                poi: entry.poi,
                                addr: entry.addr,
                                value: entry.value,
                                overwritten,
                            });
                            self.outstanding_store = None;
                        }
                        other => {
                            unreachable!("store drain answered with {other:?}");
                        }
                    }
                    continue;
                }
            }
            // Window operation.
            for op in self.window.iter_mut() {
                if op.state == (OpState::Issued { tag: resp.tag }) {
                    match resp.kind {
                        CoreRespKind::LoadDone { value } => {
                            op.read_value = Some(value);
                            op.state = OpState::Done;
                        }
                        CoreRespKind::RmwDone { read_value } => {
                            op.read_value = Some(read_value);
                            op.state = OpState::Done;
                        }
                        CoreRespKind::StoreDone { .. } => {
                            // Stores issued directly from the window are not
                            // part of this model (they drain post-retirement),
                            // so this cannot happen.
                            unreachable!("window store response");
                        }
                        CoreRespKind::FlushDone | CoreRespKind::FenceDone => {
                            op.state = OpState::Done;
                        }
                    }
                    break;
                }
            }
            // Responses for squashed loads simply find no matching Issued op
            // and are dropped.
        }
    }

    // ---- 3. Fetch ----

    fn fetch(&mut self, cycle: Cycle) {
        while self.next_fetch < self.program.len() && self.window.len() < self.rob_entries {
            let op = self.program[self.next_fetch];
            match op.kind {
                TestOpKind::Read | TestOpKind::ReadAddrDp
                    if self.loads_in_window() >= self.lq_entries =>
                {
                    break;
                }
                TestOpKind::Write { .. }
                | TestOpKind::WriteDataDp { .. }
                | TestOpKind::WriteCtrlDp { .. }
                    if self.stores_in_window() + self.store_buffer.len() >= self.sq_entries =>
                {
                    break;
                }
                _ => {}
            }
            let ready_at = match op.kind {
                TestOpKind::Delay { cycles } => cycle + cycles as u64,
                _ => cycle,
            };
            self.window.push_back(InflightOp {
                idx: self.next_fetch,
                op,
                state: OpState::Waiting,
                read_value: None,
                ready_at,
            });
            self.next_fetch += 1;
        }
    }

    /// The newest program-order-earlier store value for `addr`, searching the
    /// window first (youngest first), then the in-flight drain, then the store
    /// buffer.
    fn forwarded_value(&self, addr: Address, before_idx: usize) -> Option<u64> {
        for op in self.window.iter().rev() {
            if op.idx >= before_idx {
                continue;
            }
            if op.op.addr == addr {
                if let Some(value) = op.op.kind.written_value() {
                    return Some(value);
                }
            }
        }
        if let Some((_, entry)) = &self.outstanding_store {
            // The outstanding store is older than anything in the buffer only
            // under FIFO drain; checking the buffer first keeps "newest wins".
            if let Some(v) = self.store_buffer.forward_value(addr) {
                return Some(v);
            }
            if entry.addr == addr {
                return Some(entry.value);
            }
            return None;
        }
        self.store_buffer.forward_value(addr)
    }

    // ---- 4. Issue ----

    fn issue(&mut self, cycle: Cycle, out: &mut CoreTickOutput, rng: &mut StdRng) {
        if self.issue_jitter > 0 && rng.gen_range(0u32..65536) < self.issue_jitter as u32 {
            return;
        }
        let mut issued = 0usize;
        let issue_width = 4usize;
        let sb_empty = self.store_buffer.is_empty() && self.outstanding_store.is_none();
        // Collected requests are appended after the loop to appease borrowing.
        let mut new_requests: Vec<(usize, CoreReqKind, Address)> = Vec::new();

        // Pass 1: decide which window slots issue this cycle.
        let window_snapshot: Vec<(usize, InflightOp)> = self
            .window
            .iter()
            .enumerate()
            .map(|(pos, op)| (pos, *op))
            .collect();
        for (pos, op) in &window_snapshot {
            if issued >= issue_width {
                break;
            }
            if op.state != OpState::Waiting {
                continue;
            }
            match op.op.kind {
                TestOpKind::Read | TestOpKind::ReadAddrDp => {
                    // Loads never issue past an incomplete fence or atomic:
                    // MFENCE (and locked RMWs) order later loads after them,
                    // and issuing speculatively past them could not be repaired
                    // by the invalidation-squash mechanism (fences are not
                    // reads, so the Peekaboo rule would not fire).  Weaker
                    // fence flavours are conservatively treated the same way.
                    let prior_fence_pending = window_snapshot.iter().any(|(p, o)| {
                        p < pos
                            && matches!(
                                o.op.kind,
                                TestOpKind::Fence { .. } | TestOpKind::ReadModifyWrite { .. }
                            )
                            && o.state != OpState::Done
                    });
                    if prior_fence_pending {
                        continue;
                    }
                    // An address-dependent read waits for the previous load.
                    if matches!(op.op.kind, TestOpKind::ReadAddrDp) {
                        let prior_load_pending = window_snapshot
                            .iter()
                            .any(|(p, o)| p < pos && o.is_load() && o.state != OpState::Done);
                        if prior_load_pending {
                            continue;
                        }
                    }
                    if let Some(value) = self.forwarded_value(op.op.addr, op.idx) {
                        let slot = &mut self.window[*pos];
                        slot.read_value = Some(value);
                        slot.state = OpState::Done;
                        issued += 1;
                    } else {
                        new_requests.push((*pos, CoreReqKind::Load, op.op.addr));
                        issued += 1;
                    }
                }
                TestOpKind::Write { .. } => {
                    // Stores complete in the window immediately; they perform
                    // later, from the store buffer.
                    self.window[*pos].state = OpState::Done;
                }
                TestOpKind::WriteDataDp { .. } | TestOpKind::WriteCtrlDp { .. } => {
                    // A dependent store cannot compute its data (or resolve
                    // its guarding branch) until the load it depends on has
                    // performed; it completes in the window only then.
                    let prior_load_pending = window_snapshot
                        .iter()
                        .any(|(p, o)| p < pos && o.is_load() && o.state != OpState::Done);
                    if !prior_load_pending {
                        self.window[*pos].state = OpState::Done;
                    }
                }
                TestOpKind::ReadModifyWrite { value } => {
                    if *pos == 0 && sb_empty {
                        new_requests.push((
                            *pos,
                            CoreReqKind::Rmw { write_value: value },
                            op.op.addr,
                        ));
                        issued += 1;
                    }
                }
                TestOpKind::Fence { .. } => {
                    if *pos == 0 && sb_empty {
                        new_requests.push((*pos, CoreReqKind::Fence, op.op.addr));
                        issued += 1;
                    }
                }
                TestOpKind::CacheFlush => {
                    new_requests.push((*pos, CoreReqKind::Flush, op.op.addr));
                    issued += 1;
                }
                TestOpKind::Delay { .. } => {
                    if cycle >= op.ready_at {
                        self.window[*pos].state = OpState::Done;
                    }
                }
            }
        }
        for (pos, kind, addr) in new_requests {
            let tag = self.alloc_tag();
            self.window[pos].state = OpState::Issued { tag };
            out.requests.push(CoreRequest { tag, addr, kind });
        }
    }

    // ---- 5. Retire ----

    fn retire(&mut self, out: &mut CoreTickOutput) {
        while let Some(front) = self.window.front() {
            if front.state != OpState::Done {
                break;
            }
            match front.op.kind {
                TestOpKind::Write { value }
                | TestOpKind::WriteDataDp { value }
                | TestOpKind::WriteCtrlDp { value } => {
                    if self.store_buffer.is_full() {
                        break;
                    }
                    self.store_buffer.push(StoreBufferEntry {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        value,
                    });
                }
                TestOpKind::Read | TestOpKind::ReadAddrDp => {
                    out.observed.push(ObservedOp::Load {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        value: front.read_value.expect("retired load has a value"),
                    });
                }
                TestOpKind::ReadModifyWrite { value } => {
                    out.observed.push(ObservedOp::Rmw {
                        poi: front.idx as u32,
                        addr: front.op.addr,
                        write_value: value,
                        read_value: front.read_value.expect("retired RMW has a read value"),
                    });
                }
                TestOpKind::Fence { .. } => {
                    out.observed.push(ObservedOp::Fence {
                        poi: front.idx as u32,
                    });
                }
                TestOpKind::CacheFlush | TestOpKind::Delay { .. } => {}
            }
            self.window.pop_front();
        }
    }

    // ---- 6. Store buffer drain ----

    fn drain_store_buffer(&mut self, bugs: &BugConfig, out: &mut CoreTickOutput, rng: &mut StdRng) {
        if self.outstanding_store.is_some() {
            return;
        }
        let out_of_order = bugs.has(Bug::SqNoFifo);
        if let Some(entry) = self.store_buffer.begin_drain(out_of_order, rng) {
            let tag = self.alloc_tag();
            self.outstanding_store = Some((tag, entry));
            out.requests.push(CoreRequest {
                tag,
                addr: entry.addr,
                kind: CoreReqKind::Store { value: entry.value },
            });
        }
    }

    /// Advances the core by one cycle.
    pub fn tick(
        &mut self,
        cycle: Cycle,
        bugs: &BugConfig,
        responses: &[CoreResponse],
        notices: &[LineAddr],
        rng: &mut StdRng,
    ) -> CoreTickOutput {
        let mut out = CoreTickOutput::default();
        if self.is_finished() {
            self.finished_reported = true;
            return out;
        }
        // Notices are processed before responses so that a self-invalidation
        // delivered together with a load's data still squashes younger
        // speculative loads (the older load is still unperformed at that
        // point).
        self.process_notices(notices, bugs);
        self.process_responses(responses, &mut out);
        self.fetch(cycle);
        self.issue(cycle, &mut out, rng);
        self.retire(&mut out);
        self.drain_store_buffer(bugs, &mut out, rng);
        out
    }

    /// Instruction count of the thread program (statistics).
    pub fn program_len(&self) -> usize {
        self.program.len()
    }
}

/// Builds the per-core models for a whole test program.
pub fn cores_for_program(
    program: &crate::program::TestProgram,
    cfg: &SystemConfig,
) -> Vec<CoreModel> {
    let mut map: BTreeMap<usize, ThreadProgram> = BTreeMap::new();
    for (t, ops) in program.threads().iter().enumerate() {
        map.insert(t, ops.clone());
    }
    (0..cfg.num_cores)
        .map(|c| CoreModel::new(c, map.get(&c).cloned().unwrap_or_default(), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;
    use rand::SeedableRng;

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::small(ProtocolKind::Mesi);
        c.issue_jitter = 0;
        c
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn empty_program_is_immediately_finished() {
        let core = CoreModel::new(0, vec![], &cfg());
        assert!(core.is_finished());
    }

    #[test]
    fn loads_issue_out_of_order_and_retire_in_order() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x200))];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 2, "both loads issue in the same cycle");
        let tag0 = out.requests[0].tag;
        let tag1 = out.requests[1].tag;
        // Answer the *younger* load first.
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: tag1,
                kind: CoreRespKind::LoadDone { value: 7 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.is_empty(), "younger load cannot retire first");
        // Now the older one.
        let out = core.tick(
            3,
            &bugs,
            &[CoreResponse {
                tag: tag0,
                kind: CoreRespKind::LoadDone { value: 3 },
            }],
            &[],
            &mut rng,
        );
        assert_eq!(
            out.observed,
            vec![
                ObservedOp::Load {
                    poi: 0,
                    addr: Address(0x100),
                    value: 3
                },
                ObservedOp::Load {
                    poi: 1,
                    addr: Address(0x200),
                    value: 7
                },
            ],
            "loads retire in program order with their observed values"
        );
        assert!(core.is_finished());
    }

    #[test]
    fn store_forwarding_satisfies_younger_load_without_cache_access() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 42),
            TestOp::read(Address(0x100)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        // The only cache request is the store-buffer drain of the write; the
        // load was forwarded.
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(
            out.requests[0].kind,
            CoreReqKind::Store { value: 42 }
        ));
        assert!(out
            .observed
            .iter()
            .any(|o| matches!(o, ObservedOp::Load { value: 42, .. })));
        // Finish the drain.
        let tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.iter().any(|o| matches!(
            o,
            ObservedOp::Store {
                value: 42,
                overwritten: 0,
                ..
            }
        )));
        assert!(core.is_finished());
    }

    #[test]
    fn stores_drain_in_fifo_order_without_the_bug() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::write(Address(0x200), 2),
            TestOp::write(Address(0x300), 3),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut drained = Vec::new();
        // A trivial cache stub: every store request is acknowledged on the
        // following cycle.
        let mut pending_acks: Vec<CoreResponse> = Vec::new();
        for cycle in 1..200 {
            let responses = std::mem::take(&mut pending_acks);
            let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
            for req in &out.requests {
                if let CoreReqKind::Store { value } = req.kind {
                    drained.push(value);
                    pending_acks.push(CoreResponse {
                        tag: req.tag,
                        kind: CoreRespKind::StoreDone { overwritten: 0 },
                    });
                }
            }
            if core.is_finished() {
                break;
            }
        }
        assert_eq!(drained, vec![1, 2, 3], "FIFO drain order");
        assert!(core.is_finished());
    }

    #[test]
    fn rmw_waits_for_store_buffer_drain() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::rmw(Address(0x200), 2),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        // Only the store drain may be outstanding; the RMW must wait.
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(out.requests[0].kind, CoreReqKind::Store { .. }));
        let store_tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: store_tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        // Now (or next cycle) the RMW issues.
        let rmw_req = out
            .requests
            .iter()
            .chain(core.tick(3, &bugs, &[], &[], &mut rng).requests.iter())
            .find(|r| matches!(r.kind, CoreReqKind::Rmw { .. }))
            .copied()
            .expect("RMW issues after the store buffer drained");
        let out = core.tick(
            4,
            &bugs,
            &[CoreResponse {
                tag: rmw_req.tag,
                kind: CoreRespKind::RmwDone { read_value: 9 },
            }],
            &[],
            &mut rng,
        );
        assert!(out.observed.iter().any(|o| matches!(
            o,
            ObservedOp::Rmw {
                read_value: 9,
                write_value: 2,
                ..
            }
        )));
        assert!(core.is_finished());
    }

    #[test]
    fn invalidation_notice_squashes_younger_performed_load() {
        let cfg = cfg();
        let rng = rng();
        // Older load to X (will stay unperformed), younger load to Y
        // (performed early); an invalidation for Y must squash the younger
        // load so it re-executes.
        let program = vec![TestOp::read(Address(0x100)), TestOp::read(Address(0x200))];
        for (bugs, expect_requeue) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::LqNoTso), false),
        ] {
            let mut core = CoreModel::new(0, program.clone(), &cfg);
            let mut rng2 = StdRng::seed_from_u64(13);
            let out = core.tick(1, &bugs, &[], &[], &mut rng2);
            assert_eq!(out.requests.len(), 2);
            let young_tag = out.requests[1].tag;
            // The younger load performs.
            core.tick(
                2,
                &bugs,
                &[CoreResponse {
                    tag: young_tag,
                    kind: CoreRespKind::LoadDone { value: 5 },
                }],
                &[],
                &mut rng2,
            );
            // An invalidation for the younger load's line arrives.
            let out = core.tick(3, &bugs, &[], &[LineAddr(0x200)], &mut rng2);
            let reissued = out
                .requests
                .iter()
                .any(|r| r.addr == Address(0x200) && matches!(r.kind, CoreReqKind::Load));
            assert_eq!(
                reissued, expect_requeue,
                "squash-and-retry must track the LQ+no-TSO bug"
            );
            assert_eq!(core.squashes() > 0, expect_requeue);
            let _ = rng;
        }
    }

    #[test]
    fn dependent_store_waits_for_its_load() {
        let cfg = cfg();
        let mut rng = rng();
        // R x; Wdata y: the store may not drain before the load performs.
        let program = vec![
            TestOp::read(Address(0x100)),
            TestOp::write_data_dp(Address(0x200), 9),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 1, "only the load may issue");
        assert!(matches!(out.requests[0].kind, CoreReqKind::Load));
        let load_tag = out.requests[0].tag;
        // Nothing drains while the load is outstanding.
        let out = core.tick(2, &bugs, &[], &[], &mut rng);
        assert!(out.requests.is_empty(), "dependent store must wait");
        // Once the load completes, the store retires into the buffer and
        // drains.
        let out = core.tick(
            3,
            &bugs,
            &[CoreResponse {
                tag: load_tag,
                kind: CoreRespKind::LoadDone { value: 1 },
            }],
            &[],
            &mut rng,
        );
        let drained = out
            .requests
            .iter()
            .chain(core.tick(4, &bugs, &[], &[], &mut rng).requests.iter())
            .any(|r| matches!(r.kind, CoreReqKind::Store { value: 9 }));
        assert!(drained, "dependent store drains after its load performs");
    }

    #[test]
    fn weak_fences_execute_like_full_fences() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![
            TestOp::write(Address(0x100), 1),
            TestOp::fence_of(mcversi_mcm::FenceKind::LightweightSync),
            TestOp::read(Address(0x200)),
        ];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut pending: Vec<CoreResponse> = Vec::new();
        let mut fence_retired = false;
        for cycle in 1..100 {
            let responses = std::mem::take(&mut pending);
            let out = core.tick(cycle, &bugs, &responses, &[], &mut rng);
            for req in &out.requests {
                let kind = match req.kind {
                    CoreReqKind::Store { .. } => CoreRespKind::StoreDone { overwritten: 0 },
                    CoreReqKind::Fence => CoreRespKind::FenceDone,
                    CoreReqKind::Load => CoreRespKind::LoadDone { value: 0 },
                    _ => continue,
                };
                pending.push(CoreResponse { tag: req.tag, kind });
            }
            fence_retired |= out
                .observed
                .iter()
                .any(|o| matches!(o, ObservedOp::Fence { poi: 1 }));
            if core.is_finished() {
                break;
            }
        }
        assert!(fence_retired, "lwsync-flavoured fence retires");
        assert!(core.is_finished());
    }

    #[test]
    fn delay_and_flush_ops_complete() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::delay(3), TestOp::flush(Address(0x100))];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let mut flush_tag = None;
        for cycle in 1..20 {
            let out = core.tick(cycle, &bugs, &[], &[], &mut rng);
            if let Some(req) = out
                .requests
                .iter()
                .find(|r| matches!(r.kind, CoreReqKind::Flush))
            {
                flush_tag = Some(req.tag);
                break;
            }
        }
        let tag = flush_tag.expect("flush issued");
        for cycle in 20..40 {
            let responses = [CoreResponse {
                tag,
                kind: CoreRespKind::FlushDone,
            }];
            core.tick(cycle, &bugs, &responses, &[], &mut rng);
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
    }

    #[test]
    fn fence_waits_for_store_buffer_and_reports_retirement() {
        let cfg = cfg();
        let mut rng = rng();
        let program = vec![TestOp::write(Address(0x100), 1), TestOp::fence()];
        let mut core = CoreModel::new(0, program, &cfg);
        let bugs = BugConfig::none();
        let out = core.tick(1, &bugs, &[], &[], &mut rng);
        assert_eq!(out.requests.len(), 1);
        assert!(matches!(out.requests[0].kind, CoreReqKind::Store { .. }));
        let store_tag = out.requests[0].tag;
        let out = core.tick(
            2,
            &bugs,
            &[CoreResponse {
                tag: store_tag,
                kind: CoreRespKind::StoreDone { overwritten: 0 },
            }],
            &[],
            &mut rng,
        );
        let fence_req = out
            .requests
            .iter()
            .chain(core.tick(3, &bugs, &[], &[], &mut rng).requests.iter())
            .find(|r| matches!(r.kind, CoreReqKind::Fence))
            .copied()
            .expect("fence issues after the drain");
        let out = core.tick(
            4,
            &bugs,
            &[CoreResponse {
                tag: fence_req.tag,
                kind: CoreRespKind::FenceDone,
            }],
            &[],
            &mut rng,
        );
        assert!(out
            .observed
            .iter()
            .any(|o| matches!(o, ObservedOp::Fence { poi: 1 })));
        assert!(core.is_finished());
    }

    #[test]
    fn cores_for_program_pads_idle_cores() {
        let cfg = cfg();
        let program = crate::program::TestProgram::new(vec![
            vec![TestOp::read(Address(0x100))],
            vec![TestOp::write(Address(0x100), 1)],
        ]);
        let cores = cores_for_program(&program, &cfg);
        assert_eq!(cores.len(), cfg.num_cores);
        assert_eq!(cores[0].program_len(), 1);
        assert_eq!(cores[1].program_len(), 1);
        assert!(cores[2].is_finished(), "cores without a thread are idle");
    }
}
