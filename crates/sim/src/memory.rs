//! The main-memory controller.
//!
//! A single memory controller node serves line reads and writebacks from the
//! L2 banks with a latency drawn from the configured range (paper Table 2:
//! 120–230 cycles).  Memory contents are stored sparsely; unwritten lines read
//! as zero, matching the paper's convention that all test memory starts zeroed.

use crate::config::SystemConfig;
use crate::msg::{Msg, MsgPayload};
use crate::types::{Cycle, LineAddr, LineData, NodeId};
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// The memory controller component.
#[derive(Debug)]
pub struct MemoryController {
    node: NodeId,
    line_bytes: u64,
    data: BTreeMap<LineAddr, LineData>,
    inbox: VecDeque<Msg>,
    pending: Vec<(Cycle, Msg)>,
    reads_served: u64,
    writes_served: u64,
}

impl MemoryController {
    /// Creates a memory controller for the given configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemoryController {
            node: cfg.node_of_memory(),
            line_bytes: cfg.line_bytes,
            data: BTreeMap::new(),
            inbox: VecDeque::new(),
            pending: Vec::new(),
            reads_served: 0,
            writes_served: 0,
        }
    }

    /// Queues an incoming message (from an L2 bank).
    pub fn push_msg(&mut self, msg: Msg) {
        self.inbox.push_back(msg);
    }

    /// Reads a line directly (host access; no latency, no statistics).
    pub fn peek_line(&self, line: LineAddr) -> LineData {
        self.data
            .get(&line)
            .cloned()
            .unwrap_or_else(|| LineData::zeroed(self.line_bytes))
    }

    /// Writes a line directly (host access, used by the reset interface).
    pub fn poke_line(&mut self, line: LineAddr, data: LineData) {
        self.data.insert(line, data);
    }

    /// Writes a single 8-byte word directly (host access).
    pub fn poke_word(&mut self, line: LineAddr, word_index: usize, value: u64) {
        let entry = self
            .data
            .entry(line)
            .or_insert_with(|| LineData::zeroed(self.line_bytes));
        entry.set_word(word_index, value);
    }

    /// Clears all memory contents back to zero (host reset).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Full host-assisted reset: clears contents *and* any queued or pending
    /// requests.  Used between test executions so that a memory fetch still in
    /// flight when the previous iteration finished cannot deliver a stale
    /// response into the next iteration's (freshly reset) L2 state.
    pub fn reset(&mut self) {
        self.data.clear();
        self.inbox.clear();
        self.pending.clear();
    }

    /// Number of read requests served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Number of writebacks served so far.
    pub fn writes_served(&self) -> u64 {
        self.writes_served
    }

    /// Returns `true` if no requests are queued or pending.
    pub fn is_idle(&self) -> bool {
        self.inbox.is_empty() && self.pending.is_empty()
    }

    /// Advances the controller by one cycle, returning response messages.
    pub fn tick<R: Rng>(&mut self, cycle: Cycle, cfg: &SystemConfig, rng: &mut R) -> Vec<Msg> {
        // Accept new requests.
        while let Some(msg) = self.inbox.pop_front() {
            match msg.payload {
                MsgPayload::MemRead { line } => {
                    self.reads_served += 1;
                    let latency = rng.gen_range(cfg.latency.mem_min..=cfg.latency.mem_max);
                    let data = self.peek_line(line);
                    let response = Msg::new(self.node, msg.src, MsgPayload::MemData { line, data });
                    self.pending.push((cycle + latency, response));
                }
                MsgPayload::MemWrite { line, data } => {
                    self.writes_served += 1;
                    // Writes complete in place; no acknowledgement is required
                    // by either protocol (the L2 only needs the data durable).
                    self.data.insert(line, data);
                }
                other => {
                    // Memory only understands MemRead/MemWrite; anything else
                    // is a wiring bug in the simulator itself.
                    unreachable!("memory controller received {:?}", other.event_name());
                }
            }
        }
        // Emit responses that are due.
        let mut out = Vec::new();
        let mut remaining = Vec::with_capacity(self.pending.len());
        for (ready, msg) in self.pending.drain(..) {
            if ready <= cycle {
                out.push(msg);
            } else {
                remaining.push((ready, msg));
            }
        }
        self.pending = remaining;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MemoryController, SystemConfig, StdRng) {
        let cfg = SystemConfig::paper_default();
        (MemoryController::new(&cfg), cfg, StdRng::seed_from_u64(1))
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let (mem, _, _) = setup();
        let line = mem.peek_line(LineAddr(0x1000));
        assert!(
            (0..line.num_words()).all(|i| line.word(i) == 0),
            "fresh memory must be zero"
        );
    }

    #[test]
    fn read_request_served_after_latency() {
        let (mut mem, cfg, mut rng) = setup();
        mem.poke_word(LineAddr(0x1000), 2, 99);
        let l2 = cfg.node_of_l2(0);
        mem.push_msg(Msg::new(
            l2,
            cfg.node_of_memory(),
            MsgPayload::MemRead {
                line: LineAddr(0x1000),
            },
        ));
        // Not served before the minimum latency.
        let out = mem.tick(0, &cfg, &mut rng);
        assert!(out.is_empty());
        assert!(!mem.is_idle());
        // Served by the maximum latency.
        let out = mem.tick(cfg.latency.mem_max, &cfg, &mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, l2);
        match &out[0].payload {
            MsgPayload::MemData { line, data } => {
                assert_eq!(*line, LineAddr(0x1000));
                assert_eq!(data.word(2), 99);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(mem.is_idle());
        assert_eq!(mem.reads_served(), 1);
    }

    #[test]
    fn writeback_updates_contents() {
        let (mut mem, cfg, mut rng) = setup();
        let mut data = LineData::zeroed(64);
        data.set_word(0, 7);
        mem.push_msg(Msg::new(
            cfg.node_of_l2(1),
            cfg.node_of_memory(),
            MsgPayload::MemWrite {
                line: LineAddr(0x2000),
                data,
            },
        ));
        mem.tick(0, &cfg, &mut rng);
        assert_eq!(mem.peek_line(LineAddr(0x2000)).word(0), 7);
        assert_eq!(mem.writes_served(), 1);
    }

    #[test]
    fn clear_resets_contents() {
        let (mut mem, _, _) = setup();
        mem.poke_word(LineAddr(0x40), 0, 5);
        mem.clear();
        assert_eq!(mem.peek_line(LineAddr(0x40)).word(0), 0);
    }
}
