//! Coherence protocol controllers and the core↔L1 interface.
//!
//! Two protocols are provided:
//!
//! * [`mesi`] — a two-level MESI directory protocol in the style of gem5
//!   Ruby's `MESI_Two_Level` (private L1s, shared banked L2 acting as an
//!   inclusive directory, blocking per-line transactions, transient states
//!   `IS`, `IS_I`, `IM`, `SM`, `MI`);
//! * [`tsocc`] — the lazy, timestamp-based TSO-CC protocol (no sharer
//!   tracking; Shared lines self-invalidate on timestamp acquisition, access
//!   budgets bound staleness).
//!
//! Both are implemented behind the [`L1Controller`] and [`L2Controller`]
//! traits, so the [`crate::system::System`] is protocol-agnostic.

pub mod mesi;
pub mod tsocc;

use crate::bugs::BugConfig;
use crate::config::SystemConfig;
use crate::coverage::CoverageRecorder;
use crate::msg::Msg;
use crate::system::ProtocolError;
use crate::types::{Cycle, LineAddr};
use mcversi_mcm::Address;
use rand::rngs::StdRng;
use std::fmt;

/// A memory request issued by a core to its L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Core-local tag used to match the response.
    pub tag: u64,
    /// The accessed (8-byte aligned) address.
    pub addr: Address,
    /// What to do.
    pub kind: CoreReqKind,
}

/// The kind of a core request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreReqKind {
    /// Read an 8-byte word.
    Load,
    /// Write an 8-byte word.
    Store {
        /// Value to write.
        value: u64,
    },
    /// Atomically read and write an 8-byte word.
    Rmw {
        /// Value to write.
        write_value: u64,
    },
    /// Flush the containing line from this L1.
    Flush,
    /// A full memory fence reached the head of the core's pipeline.  MESI
    /// treats this as a no-op (ordering is the core's job); TSO-CC
    /// self-invalidates all Shared lines, which is part of how it enforces
    /// TSO across fences and atomics.
    Fence,
}

/// A response from the L1 back to its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResponse {
    /// The tag of the request this responds to.
    pub tag: u64,
    /// The result.
    pub kind: CoreRespKind,
}

/// The kind of a core response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRespKind {
    /// The load's value.
    LoadDone {
        /// Value read.
        value: u64,
    },
    /// The store has been performed in the cache.
    StoreDone {
        /// The value the store overwrote (used to construct coherence order).
        overwritten: u64,
    },
    /// The RMW has been performed atomically.
    RmwDone {
        /// The value read (and overwritten) by the RMW.
        read_value: u64,
    },
    /// The flush has completed.
    FlushDone,
    /// The fence has been processed by the cache.
    FenceDone,
}

/// Everything an L1 produces in one cycle.
#[derive(Debug, Default)]
pub struct L1Output {
    /// Messages to inject into the network.
    pub to_network: Vec<Msg>,
    /// Responses to the core.
    pub responses: Vec<CoreResponse>,
    /// Invalidation notices forwarded to the core's load queue: the core lost
    /// read permission on these lines (invalidation, ownership transfer,
    /// recall, replacement or flush).
    pub lq_notices: Vec<LineAddr>,
}

/// Mutable context shared by all controllers during one tick.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// System configuration.
    pub cfg: &'a SystemConfig,
    /// Injected bugs.
    pub bugs: &'a BugConfig,
    /// Transition coverage recorder.
    pub coverage: &'a mut CoverageRecorder,
    /// Seeded simulation RNG (latency jitter).
    pub rng: &'a mut StdRng,
    /// Sink for protocol errors (invalid transitions).
    pub errors: &'a mut Vec<ProtocolError>,
}

/// A private L1 cache controller.
pub trait L1Controller: fmt::Debug {
    /// Queues a request from the core.
    fn push_core_request(&mut self, req: CoreRequest);

    /// Queues an incoming protocol message.
    fn push_msg(&mut self, msg: Msg);

    /// Advances the controller by one cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> L1Output;

    /// Returns `true` when no transactions, queued requests or queued messages
    /// are outstanding.
    fn is_idle(&self) -> bool;

    /// Drops all cached lines and transaction state without writebacks
    /// (host-assisted reset between tests).
    fn hard_reset(&mut self);
}

/// A shared L2 bank / directory controller.
pub trait L2Controller: fmt::Debug {
    /// Queues an incoming protocol message.
    fn push_msg(&mut self, msg: Msg);

    /// Advances the controller by one cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> Vec<Msg>;

    /// Returns `true` when no transactions or queued messages are outstanding.
    fn is_idle(&self) -> bool;

    /// Drops all cached lines and transaction state without writebacks
    /// (host-assisted reset between tests).
    fn hard_reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_response_shapes() {
        let req = CoreRequest {
            tag: 7,
            addr: Address(0x100),
            kind: CoreReqKind::Store { value: 3 },
        };
        assert_eq!(req.tag, 7);
        let resp = CoreResponse {
            tag: 7,
            kind: CoreRespKind::StoreDone { overwritten: 0 },
        };
        assert_eq!(resp.tag, req.tag);
        let out = L1Output::default();
        assert!(out.to_network.is_empty());
        assert!(out.responses.is_empty());
        assert!(out.lq_notices.is_empty());
    }
}
