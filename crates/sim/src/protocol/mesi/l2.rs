//! The MESI shared L2 bank (inclusive blocking directory).
//!
//! Stable states per resident line: `SS` (present, zero or more L1 sharers)
//! and `MT` (owned exclusively by one L1).  Lines not resident are `NP` (data
//! lives in memory).  The directory is *blocking*: while a transaction on a
//! line is in flight (fetch from memory, invalidation collection, forward to
//! owner, eviction), further requests for that line stall in the request
//! queue; responses are never stalled.
//!
//! Two of the paper's bugs live here:
//!
//! * [`Bug::MesiPutxRace`] — a writeback (PutX) arriving from a core that is
//!   no longer the owner (the classic late-PUTX race) is reported as an
//!   invalid transition instead of being answered with `WbStale`.
//! * [`Bug::MesiReplaceRace`] — on an L2 replacement of a line the directory
//!   believes is clean (granted Exclusive, silently modified by the owner),
//!   dirty recall data is dropped instead of written back to memory.
//!
//! [`Bug::MesiPutxRace`]: crate::bugs::Bug::MesiPutxRace
//! [`Bug::MesiReplaceRace`]: crate::bugs::Bug::MesiReplaceRace

use crate::bugs::Bug;
use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::coverage::Transition;
use crate::msg::{Msg, MsgPayload};
use crate::protocol::{L2Controller, TickCtx};
use crate::system::ProtocolError;
use crate::types::{Cycle, LineAddr, LineData, NodeId};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Stable directory states of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2State {
    /// Present, possibly shared by L1s; the L2 copy is up to date.
    Shared,
    /// Owned exclusively by one L1; the L2 copy may be stale.
    Owned,
}

impl L2State {
    fn name(self) -> &'static str {
        match self {
            L2State::Shared => "SS",
            L2State::Owned => "MT",
        }
    }
}

#[derive(Debug, Clone)]
struct L2Line {
    state: L2State,
    data: LineData,
    /// Dirty relative to main memory.
    dirty: bool,
    sharers: BTreeSet<usize>,
    owner: Option<usize>,
    /// Whether the directory expects the owner to have modified the line
    /// (ownership granted through GetX rather than an exclusive GetS grant).
    dirty_expected: bool,
}

/// In-flight directory transaction states.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trans {
    /// Fetching from memory to satisfy a GetS.
    FetchForS { requestor: usize },
    /// Fetching from memory to satisfy a GetX.
    FetchForX { requestor: usize },
    /// Collecting invalidation acks to satisfy a GetX.
    InvForX { requestor: usize, acks_left: usize },
    /// Waiting for the owner's data to satisfy a GetS.
    FwdForS { requestor: usize },
    /// Waiting for the owner's data to satisfy a GetX.
    FwdForX { requestor: usize },
    /// Evicting a Shared line: collecting invalidation acks.
    EvictInv { acks_left: usize },
    /// Evicting an owned line: waiting for the owner's recall data.
    EvictRecall,
}

impl Trans {
    fn name(&self) -> &'static str {
        match self {
            Trans::FetchForS { .. } => "I_S_Mem",
            Trans::FetchForX { .. } => "I_X_Mem",
            Trans::InvForX { .. } => "SS_X_Inv",
            Trans::FwdForS { .. } => "MT_S_Fwd",
            Trans::FwdForX { .. } => "MT_X_Fwd",
            Trans::EvictInv { .. } => "SS_Evict",
            Trans::EvictRecall => "MT_Evict",
        }
    }
}

/// The MESI L2 bank controller.
#[derive(Debug)]
pub struct MesiL2 {
    bank: usize,
    node: NodeId,
    cache: CacheArray<L2Line>,
    trans: BTreeMap<LineAddr, Trans>,
    /// Per-set count of outstanding memory fetches (`FetchForS`/`FetchForX`
    /// entries in `trans`), so [`Self::set_has_pending_fetch`] is O(1) instead
    /// of a scan over every in-flight transaction.  Maintained exclusively by
    /// [`Self::trans_insert`] / [`Self::trans_remove`].
    pending_fetches: Vec<u32>,
    requests: VecDeque<Msg>,
    responses: VecDeque<Msg>,
    pending_out: Vec<(Cycle, Msg)>,
}

impl MesiL2 {
    /// Creates the controller for L2 bank `bank`.
    pub fn new(bank: usize, cfg: &SystemConfig) -> Self {
        MesiL2 {
            bank,
            node: cfg.node_of_l2(bank),
            cache: CacheArray::new(cfg.l2_sets(), cfg.l2_ways, cfg.line_bytes),
            trans: BTreeMap::new(),
            pending_fetches: vec![0; cfg.l2_sets()],
            requests: VecDeque::new(),
            responses: VecDeque::new(),
            pending_out: Vec::new(),
        }
    }

    /// Number of resident lines (used by tests).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    fn core_of(&self, node: NodeId, cfg: &SystemConfig) -> Option<usize> {
        cfg.l1_index(node)
    }

    fn send_response(&mut self, ctx: &mut TickCtx<'_>, dst: NodeId, payload: MsgPayload) {
        let latency = ctx
            .rng
            .gen_range(ctx.cfg.latency.l2_min..=ctx.cfg.latency.l2_max);
        self.pending_out
            .push((ctx.cycle + latency, Msg::new(self.node, dst, payload)));
    }

    fn send_forward(&mut self, ctx: &mut TickCtx<'_>, dst: NodeId, payload: MsgPayload) {
        // Control messages take only the tag-lookup portion of the bank
        // latency.
        let latency = ctx.cfg.latency.l2_min / 2;
        self.pending_out
            .push((ctx.cycle + latency, Msg::new(self.node, dst, payload)));
    }

    fn send_mem(&mut self, ctx: &mut TickCtx<'_>, payload: MsgPayload) {
        let latency = ctx.cfg.latency.l2_min / 2;
        self.pending_out.push((
            ctx.cycle + latency,
            Msg::new(self.node, ctx.cfg.node_of_memory(), payload),
        ));
    }

    fn is_fetch(trans: &Trans) -> bool {
        matches!(trans, Trans::FetchForS { .. } | Trans::FetchForX { .. })
    }

    /// Starts (or replaces) an in-flight transaction, keeping the per-set
    /// pending-fetch counters in sync.  A replacement may retire a fetch (the
    /// old entry counts down before the new one counts up).
    fn trans_insert(&mut self, line: LineAddr, trans: Trans) {
        let set = self.cache.set_index(line);
        if Self::is_fetch(&trans) {
            self.pending_fetches[set] += 1;
        }
        if let Some(old) = self.trans.insert(line, trans) {
            if Self::is_fetch(&old) {
                self.pending_fetches[set] = self.pending_fetches[set].saturating_sub(1);
            }
        }
    }

    /// Retires an in-flight transaction, keeping the per-set pending-fetch
    /// counters in sync.
    fn trans_remove(&mut self, line: LineAddr) -> Option<Trans> {
        let old = self.trans.remove(&line)?;
        if Self::is_fetch(&old) {
            let set = self.cache.set_index(line);
            self.pending_fetches[set] = self.pending_fetches[set].saturating_sub(1);
        }
        Some(old)
    }

    /// Returns `true` if a memory fetch is already outstanding for a line in
    /// the same cache set.  Such a fetch has reserved the set's free way, so
    /// further allocations into the set must wait (otherwise the data arriving
    /// from memory would find the set full again).
    fn set_has_pending_fetch(&self, line: LineAddr) -> bool {
        self.pending_fetches[self.cache.set_index(line)] > 0
    }

    /// Attempts to start an eviction to make room for `line`.  Returns `true`
    /// if a way is free (the caller may allocate), `false` if it must retry
    /// later (an eviction is now, or was already, in flight).
    fn make_room(&mut self, ctx: &mut TickCtx<'_>, line: LineAddr) -> bool {
        if !self.cache.needs_eviction(line) {
            return true;
        }
        let victim = self.cache.victim_for(line).expect("set full");
        if self.trans.contains_key(&victim) {
            // Already evicting (or otherwise busy); wait.
            return false;
        }
        let entry = self.cache.get(victim).expect("victim resident").clone();
        ctx.coverage
            .record(Transition::l2(entry.state.name(), "Replacement"));
        match entry.state {
            L2State::Shared => {
                let sharers: Vec<usize> = entry.sharers.iter().copied().collect();
                if sharers.is_empty() {
                    if entry.dirty {
                        self.send_mem(
                            ctx,
                            MsgPayload::MemWrite {
                                line: victim,
                                data: entry.data.clone(),
                            },
                        );
                    }
                    self.cache.remove(victim);
                    // A way is free immediately.
                    return true;
                }
                for s in &sharers {
                    let dst = ctx.cfg.node_of_l1(*s);
                    self.send_forward(ctx, dst, MsgPayload::Inv { line: victim });
                }
                self.trans_insert(
                    victim,
                    Trans::EvictInv {
                        acks_left: sharers.len(),
                    },
                );
                false
            }
            L2State::Owned => {
                let owner = entry.owner.expect("owned line has owner");
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::Recall { line: victim });
                self.trans_insert(victim, Trans::EvictRecall);
                false
            }
        }
    }

    /// Processes one request message.  Returns `false` if it must stall.
    fn process_request(&mut self, ctx: &mut TickCtx<'_>, msg: &Msg) -> bool {
        let line = msg.payload.line();
        if self.trans.contains_key(&line) {
            // Blocking directory: the line is busy.
            return false;
        }
        let src_core = self.core_of(msg.src, ctx.cfg);
        let resident = self.cache.get(line).map(|l| l.state);
        match (&msg.payload, resident) {
            // ---------------- GetS ----------------
            (MsgPayload::GetS { .. }, Some(L2State::Shared)) => {
                ctx.coverage.record(Transition::l2("SS", "GetS"));
                let requestor = src_core.expect("GetS comes from an L1");
                let entry = self.cache.get_mut(line).expect("resident");
                if entry.sharers.is_empty() {
                    // No other copies: grant Exclusive (clean); the owner may
                    // silently modify it, which the directory will not know
                    // about (dirty_expected = false) — the precondition of the
                    // Replace-Race bug.
                    entry.state = L2State::Owned;
                    entry.owner = Some(requestor);
                    entry.dirty_expected = false;
                    let data = entry.data.clone();
                    self.send_response(
                        ctx,
                        msg.src,
                        MsgPayload::DataE {
                            line,
                            data,
                            ts: None,
                        },
                    );
                } else {
                    entry.sharers.insert(requestor);
                    let data = entry.data.clone();
                    self.send_response(
                        ctx,
                        msg.src,
                        MsgPayload::DataS {
                            line,
                            data,
                            ts: None,
                        },
                    );
                }
                true
            }
            (MsgPayload::GetS { .. }, Some(L2State::Owned)) => {
                ctx.coverage.record(Transition::l2("MT", "GetS"));
                let requestor = src_core.expect("GetS comes from an L1");
                let owner = self.cache.get(line).and_then(|l| l.owner).expect("owner");
                if owner == requestor {
                    // The owner re-requesting: grant exclusive again from the
                    // L2 copy (defensive; should not occur with a correct L1).
                    let data = self.cache.get(line).expect("resident").data.clone();
                    self.send_response(
                        ctx,
                        msg.src,
                        MsgPayload::DataE {
                            line,
                            data,
                            ts: None,
                        },
                    );
                    return true;
                }
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::FwdGetS { line });
                self.trans_insert(line, Trans::FwdForS { requestor });
                true
            }
            (MsgPayload::GetS { .. }, None) => {
                ctx.coverage.record(Transition::l2("NP", "GetS"));
                if self.set_has_pending_fetch(line) || !self.make_room(ctx, line) {
                    return false;
                }
                let requestor = src_core.expect("GetS comes from an L1");
                self.trans_insert(line, Trans::FetchForS { requestor });
                self.send_mem(ctx, MsgPayload::MemRead { line });
                true
            }

            // ---------------- GetX ----------------
            (MsgPayload::GetX { .. }, Some(L2State::Shared)) => {
                ctx.coverage.record(Transition::l2("SS", "GetX"));
                let requestor = src_core.expect("GetX comes from an L1");
                let entry = self.cache.get_mut(line).expect("resident");
                let others: Vec<usize> = entry
                    .sharers
                    .iter()
                    .copied()
                    .filter(|&s| s != requestor)
                    .collect();
                if others.is_empty() {
                    entry.state = L2State::Owned;
                    entry.owner = Some(requestor);
                    entry.sharers.clear();
                    entry.dirty_expected = true;
                    let data = entry.data.clone();
                    self.send_response(
                        ctx,
                        msg.src,
                        MsgPayload::DataX {
                            line,
                            data,
                            ts: None,
                        },
                    );
                } else {
                    for s in &others {
                        let dst = ctx.cfg.node_of_l1(*s);
                        self.send_forward(ctx, dst, MsgPayload::Inv { line });
                    }
                    self.trans_insert(
                        line,
                        Trans::InvForX {
                            requestor,
                            acks_left: others.len(),
                        },
                    );
                }
                true
            }
            (MsgPayload::GetX { .. }, Some(L2State::Owned)) => {
                ctx.coverage.record(Transition::l2("MT", "GetX"));
                let requestor = src_core.expect("GetX comes from an L1");
                let owner = self.cache.get(line).and_then(|l| l.owner).expect("owner");
                if owner == requestor {
                    let data = self.cache.get(line).expect("resident").data.clone();
                    self.send_response(
                        ctx,
                        msg.src,
                        MsgPayload::DataX {
                            line,
                            data,
                            ts: None,
                        },
                    );
                    return true;
                }
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::FwdGetX { line });
                self.trans_insert(line, Trans::FwdForX { requestor });
                true
            }
            (MsgPayload::GetX { .. }, None) => {
                ctx.coverage.record(Transition::l2("NP", "GetX"));
                if self.set_has_pending_fetch(line) || !self.make_room(ctx, line) {
                    return false;
                }
                let requestor = src_core.expect("GetX comes from an L1");
                self.trans_insert(line, Trans::FetchForX { requestor });
                self.send_mem(ctx, MsgPayload::MemRead { line });
                true
            }

            // ---------------- PutX ----------------
            (MsgPayload::PutX { data, dirty, .. }, Some(L2State::Owned))
                if src_core.is_some() && self.cache.get(line).and_then(|l| l.owner) == src_core =>
            {
                ctx.coverage.record(Transition::l2("MT", "PutX"));
                let entry = self.cache.get_mut(line).expect("resident");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                }
                entry.state = L2State::Shared;
                entry.owner = None;
                entry.sharers.clear();
                entry.dirty_expected = false;
                self.send_response(ctx, msg.src, MsgPayload::WbAck { line });
                true
            }
            (MsgPayload::PutX { .. }, state) => {
                // Writeback from a core that is not (or is no longer) the
                // owner: the late-PUTX race.  The correct design acknowledges
                // it as stale; the injected bug treats it as an invalid
                // transition, as Ruby did.
                let state_name = state.map_or("NP", |s| s.name());
                if ctx.bugs.has(Bug::MesiPutxRace) {
                    ctx.errors.push(ProtocolError::invalid_transition(
                        ctx.cycle,
                        format!("L2[{}]", self.bank),
                        line,
                        state_name,
                        "PutX",
                    ));
                    return true;
                }
                ctx.coverage.record(Transition::l2(state_name, "PutXStale"));
                self.send_response(ctx, msg.src, MsgPayload::WbStale { line });
                true
            }

            (payload, state) => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("L2[{}]", self.bank),
                    line,
                    state.map_or("NP", |s| s.name()),
                    payload.event_name(),
                ));
                true
            }
        }
    }

    /// Processes one response message (never stalled).
    fn process_response(&mut self, ctx: &mut TickCtx<'_>, msg: Msg) {
        let line = msg.payload.line();
        let Some(trans) = self.trans.get(&line).cloned() else {
            ctx.errors.push(ProtocolError::invalid_transition(
                ctx.cycle,
                format!("L2[{}]", self.bank),
                line,
                "no-transaction",
                msg.payload.event_name(),
            ));
            return;
        };
        let event = msg.payload.event_name();
        match (&msg.payload, trans) {
            // ---- Memory data for fetches ----
            (MsgPayload::MemData { data, .. }, Trans::FetchForS { requestor }) => {
                ctx.coverage.record(Transition::l2("I_S_Mem", "MemData"));
                self.trans_remove(line);
                self.cache.insert(
                    line,
                    L2Line {
                        state: L2State::Owned,
                        data: data.clone(),
                        dirty: false,
                        sharers: BTreeSet::new(),
                        owner: Some(requestor),
                        dirty_expected: false,
                    },
                );
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataE {
                        line,
                        data: data.clone(),
                        ts: None,
                    },
                );
            }
            (MsgPayload::MemData { data, .. }, Trans::FetchForX { requestor }) => {
                ctx.coverage.record(Transition::l2("I_X_Mem", "MemData"));
                self.trans_remove(line);
                self.cache.insert(
                    line,
                    L2Line {
                        state: L2State::Owned,
                        data: data.clone(),
                        dirty: false,
                        sharers: BTreeSet::new(),
                        owner: Some(requestor),
                        dirty_expected: true,
                    },
                );
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataX {
                        line,
                        data: data.clone(),
                        ts: None,
                    },
                );
            }

            // ---- Invalidation acks ----
            (
                MsgPayload::InvAck { .. },
                Trans::InvForX {
                    requestor,
                    acks_left,
                },
            ) => {
                ctx.coverage.record(Transition::l2("SS_X_Inv", "InvAck"));
                if acks_left > 1 {
                    self.trans_insert(
                        line,
                        Trans::InvForX {
                            requestor,
                            acks_left: acks_left - 1,
                        },
                    );
                } else {
                    self.trans_remove(line);
                    let entry = self.cache.get_mut(line).expect("resident during InvForX");
                    entry.state = L2State::Owned;
                    entry.owner = Some(requestor);
                    entry.sharers.clear();
                    entry.dirty_expected = true;
                    let data = entry.data.clone();
                    let dst = ctx.cfg.node_of_l1(requestor);
                    self.send_response(
                        ctx,
                        dst,
                        MsgPayload::DataX {
                            line,
                            data,
                            ts: None,
                        },
                    );
                }
            }
            (MsgPayload::InvAck { .. }, Trans::EvictInv { acks_left }) => {
                ctx.coverage.record(Transition::l2("SS_Evict", "InvAck"));
                if acks_left > 1 {
                    self.trans_insert(
                        line,
                        Trans::EvictInv {
                            acks_left: acks_left - 1,
                        },
                    );
                } else {
                    self.trans_remove(line);
                    let entry = self.cache.remove(line).expect("resident during eviction");
                    if entry.dirty {
                        self.send_mem(
                            ctx,
                            MsgPayload::MemWrite {
                                line,
                                data: entry.data,
                            },
                        );
                    }
                }
            }

            // ---- Owner writeback data for forwards ----
            (MsgPayload::WbData { data, dirty, .. }, Trans::FwdForS { requestor }) => {
                ctx.coverage.record(Transition::l2("MT_S_Fwd", "WbData"));
                self.trans_remove(line);
                let old_owner = self.cache.get(line).and_then(|l| l.owner);
                let entry = self.cache.get_mut(line).expect("resident during FwdForS");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                }
                entry.state = L2State::Shared;
                entry.owner = None;
                entry.sharers.clear();
                if let Some(o) = old_owner {
                    entry.sharers.insert(o);
                }
                entry.sharers.insert(requestor);
                entry.dirty_expected = false;
                let out_data = entry.data.clone();
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataS {
                        line,
                        data: out_data,
                        ts: None,
                    },
                );
            }
            (MsgPayload::WbData { data, dirty, .. }, Trans::FwdForX { requestor }) => {
                ctx.coverage.record(Transition::l2("MT_X_Fwd", "WbData"));
                self.trans_remove(line);
                let entry = self.cache.get_mut(line).expect("resident during FwdForX");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                }
                entry.state = L2State::Owned;
                entry.owner = Some(requestor);
                entry.sharers.clear();
                entry.dirty_expected = true;
                let out_data = entry.data.clone();
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataX {
                        line,
                        data: out_data,
                        ts: None,
                    },
                );
            }
            (MsgPayload::WbData { data, dirty, .. }, Trans::EvictRecall) => {
                ctx.coverage.record(Transition::l2("MT_Evict", "WbData"));
                self.trans_remove(line);
                let entry = self.cache.remove(line).expect("resident during eviction");
                let drop_dirty_data = ctx.bugs.has(Bug::MesiReplaceRace) && !entry.dirty_expected;
                if *dirty && !drop_dirty_data {
                    self.send_mem(
                        ctx,
                        MsgPayload::MemWrite {
                            line,
                            data: data.clone(),
                        },
                    );
                } else if entry.dirty && !drop_dirty_data {
                    self.send_mem(
                        ctx,
                        MsgPayload::MemWrite {
                            line,
                            data: entry.data,
                        },
                    );
                }
                // With the Replace-Race bug and an unexpectedly dirty block,
                // the modified data is silently lost.
            }

            (payload, trans) => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("L2[{}]", self.bank),
                    line,
                    trans.name(),
                    payload.event_name(),
                ));
                let _ = event;
            }
        }
    }
}

impl L2Controller for MesiL2 {
    fn push_msg(&mut self, msg: Msg) {
        match msg.payload.vnet() {
            crate::msg::VirtualNetwork::Request => self.requests.push_back(msg),
            _ => self.responses.push_back(msg),
        }
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> Vec<Msg> {
        // Responses first: they unblock transactions and are never stalled.
        while let Some(msg) = self.responses.pop_front() {
            self.process_response(ctx, msg);
        }
        // Requests: head-of-line blocking per bank.
        let mut budget = 8usize;
        while budget > 0 {
            let Some(msg) = self.requests.front().cloned() else {
                break;
            };
            if self.process_request(ctx, &msg) {
                self.requests.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }
        // Release delayed outgoing messages.
        let cycle = ctx.cycle;
        let (ready, waiting): (Vec<_>, Vec<_>) =
            self.pending_out.drain(..).partition(|&(t, _)| t <= cycle);
        self.pending_out = waiting;
        ready.into_iter().map(|(_, m)| m).collect()
    }

    fn is_idle(&self) -> bool {
        self.trans.is_empty()
            && self.requests.is_empty()
            && self.responses.is_empty()
            && self.pending_out.is_empty()
    }

    fn hard_reset(&mut self) {
        self.cache.drain_all();
        self.trans.clear();
        self.pending_fetches.fill(0);
        self.requests.clear();
        self.responses.clear();
        self.pending_out.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugConfig;
    use crate::config::ProtocolKind;
    use crate::coverage::CoverageRecorder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        cfg: SystemConfig,
        bugs: BugConfig,
        coverage: CoverageRecorder,
        rng: StdRng,
        errors: Vec<ProtocolError>,
        cycle: Cycle,
    }

    impl Harness {
        fn new(bugs: BugConfig) -> Self {
            Harness {
                cfg: SystemConfig::small(ProtocolKind::Mesi),
                bugs,
                coverage: CoverageRecorder::new(),
                rng: StdRng::seed_from_u64(3),
                errors: Vec::new(),
                cycle: 0,
            }
        }

        fn run(&mut self, l2: &mut MesiL2, cycles: u64) -> Vec<Msg> {
            let mut out = Vec::new();
            for _ in 0..cycles {
                self.cycle += 1;
                let mut ctx = TickCtx {
                    cycle: self.cycle,
                    cfg: &self.cfg,
                    bugs: &self.bugs,
                    coverage: &mut self.coverage,
                    rng: &mut self.rng,
                    errors: &mut self.errors,
                };
                out.extend(l2.tick(&mut ctx));
            }
            out
        }
    }

    fn l1_node(h: &Harness, core: usize) -> NodeId {
        h.cfg.node_of_l1(core)
    }

    fn gets(h: &Harness, core: usize, line: u64) -> Msg {
        Msg::new(
            l1_node(h, core),
            h.cfg.node_of_l2(0),
            MsgPayload::GetS {
                line: LineAddr(line),
            },
        )
    }

    fn getx(h: &Harness, core: usize, line: u64) -> Msg {
        Msg::new(
            l1_node(h, core),
            h.cfg.node_of_l2(0),
            MsgPayload::GetX {
                line: LineAddr(line),
            },
        )
    }

    fn mem_data(h: &Harness, line: u64, word0: u64) -> Msg {
        let mut data = LineData::zeroed(64);
        data.set_word(0, word0);
        Msg::new(
            h.cfg.node_of_memory(),
            h.cfg.node_of_l2(0),
            MsgPayload::MemData {
                line: LineAddr(line),
                data,
            },
        )
    }

    #[test]
    fn first_gets_fetches_from_memory_and_grants_exclusive() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        l2.push_msg(gets(&h, 0, 0x1000));
        let out = h.run(&mut l2, 100);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::MemRead { .. })));
        l2.push_msg(mem_data(&h, 0x1000, 7));
        let out = h.run(&mut l2, 200);
        let data = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::DataE { .. }))
            .expect("exclusive grant");
        assert_eq!(data.dst, l1_node(&h, 0));
        assert!(l2.is_idle());
        assert_eq!(l2.resident_lines(), 1);
        assert!(h.errors.is_empty());
    }

    #[test]
    fn second_gets_forwards_to_owner_then_shares() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        // Core 0 becomes owner.
        l2.push_msg(gets(&h, 0, 0x1000));
        h.run(&mut l2, 50);
        l2.push_msg(mem_data(&h, 0x1000, 7));
        h.run(&mut l2, 200);
        // Core 1 requests the same line.
        l2.push_msg(gets(&h, 1, 0x1000));
        let out = h.run(&mut l2, 100);
        let fwd = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::FwdGetS { .. }))
            .expect("forward to owner");
        assert_eq!(fwd.dst, l1_node(&h, 0));
        // Owner responds with (dirty) data.
        let mut data = LineData::zeroed(64);
        data.set_word(0, 42);
        l2.push_msg(Msg::new(
            l1_node(&h, 0),
            h.cfg.node_of_l2(0),
            MsgPayload::WbData {
                line: LineAddr(0x1000),
                data,
                dirty: true,
                ts: None,
            },
        ));
        let out = h.run(&mut l2, 200);
        let resp = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::DataS { .. }))
            .expect("shared data to requestor");
        assert_eq!(resp.dst, l1_node(&h, 1));
        match &resp.payload {
            MsgPayload::DataS { data, .. } => assert_eq!(data.word(0), 42),
            _ => unreachable!(),
        }
        assert!(l2.is_idle());
        assert!(h.errors.is_empty());
    }

    #[test]
    fn getx_invalidates_sharers_before_granting() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        // Two sharers: core 0 (exclusive first, downgraded) and core 1.
        l2.push_msg(gets(&h, 0, 0x1000));
        h.run(&mut l2, 50);
        l2.push_msg(mem_data(&h, 0x1000, 1));
        h.run(&mut l2, 200);
        l2.push_msg(gets(&h, 1, 0x1000));
        h.run(&mut l2, 100);
        l2.push_msg(Msg::new(
            l1_node(&h, 0),
            h.cfg.node_of_l2(0),
            MsgPayload::WbData {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                dirty: false,
                ts: None,
            },
        ));
        h.run(&mut l2, 200);
        // Core 2 wants exclusive access.
        l2.push_msg(getx(&h, 2, 0x1000));
        let out = h.run(&mut l2, 100);
        let invs: Vec<&Msg> = out
            .iter()
            .filter(|m| matches!(m.payload, MsgPayload::Inv { .. }))
            .collect();
        assert_eq!(invs.len(), 2, "both sharers are invalidated");
        assert!(
            !out.iter()
                .any(|m| matches!(m.payload, MsgPayload::DataX { .. })),
            "no grant before acks"
        );
        // Both sharers ack.
        for core in [0, 1] {
            l2.push_msg(Msg::new(
                l1_node(&h, core),
                h.cfg.node_of_l2(0),
                MsgPayload::InvAck {
                    line: LineAddr(0x1000),
                },
            ));
        }
        let out = h.run(&mut l2, 200);
        let grant = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::DataX { .. }))
            .expect("exclusive grant after all acks");
        assert_eq!(grant.dst, l1_node(&h, 2));
        assert!(l2.is_idle());
        assert!(h.errors.is_empty());
    }

    #[test]
    fn putx_from_owner_accepted_with_ack() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        l2.push_msg(getx(&h, 0, 0x1000));
        h.run(&mut l2, 50);
        l2.push_msg(mem_data(&h, 0x1000, 0));
        h.run(&mut l2, 200);
        let mut data = LineData::zeroed(64);
        data.set_word(0, 99);
        l2.push_msg(Msg::new(
            l1_node(&h, 0),
            h.cfg.node_of_l2(0),
            MsgPayload::PutX {
                line: LineAddr(0x1000),
                data,
                dirty: true,
                ts: None,
            },
        ));
        let out = h.run(&mut l2, 200);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::WbAck { .. })));
        // Data is now served from the L2 without recalling anyone.
        l2.push_msg(gets(&h, 1, 0x1000));
        let out = h.run(&mut l2, 200);
        let resp = out
            .iter()
            .find(|m| {
                matches!(
                    m.payload,
                    MsgPayload::DataE { .. } | MsgPayload::DataS { .. }
                )
            })
            .expect("data served from L2 copy");
        match &resp.payload {
            MsgPayload::DataE { data, .. } | MsgPayload::DataS { data, .. } => {
                assert_eq!(data.word(0), 99)
            }
            _ => unreachable!(),
        }
        assert!(h.errors.is_empty());
    }

    #[test]
    fn stale_putx_gets_wbstale_or_invalid_transition_with_bug() {
        for (bugs, expect_error) in [
            (BugConfig::none(), false),
            (BugConfig::single(Bug::MesiPutxRace), true),
        ] {
            let mut h = Harness::new(bugs);
            let mut l2 = MesiL2::new(0, &h.cfg);
            // A PutX for a line nobody owns is the stale-PutX shape.
            l2.push_msg(Msg::new(
                l1_node(&h, 0),
                h.cfg.node_of_l2(0),
                MsgPayload::PutX {
                    line: LineAddr(0x1000),
                    data: LineData::zeroed(64),
                    dirty: true,
                    ts: None,
                },
            ));
            let out = h.run(&mut l2, 200);
            if expect_error {
                assert_eq!(h.errors.len(), 1, "PUTX race must be an invalid transition");
                assert!(!out
                    .iter()
                    .any(|m| matches!(m.payload, MsgPayload::WbStale { .. })));
            } else {
                assert!(h.errors.is_empty());
                assert!(out
                    .iter()
                    .any(|m| matches!(m.payload, MsgPayload::WbStale { .. })));
            }
        }
    }

    #[test]
    fn l2_eviction_recalls_owner_and_replace_race_bug_drops_dirty_data() {
        for (bugs, expect_memwrite) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::MesiReplaceRace), false),
        ] {
            let mut h = Harness::new(bugs);
            let mut l2 = MesiL2::new(0, &h.cfg);
            let sets = h.cfg.l2_sets() as u64;
            let ways = h.cfg.l2_ways;
            let stride = sets * h.cfg.line_bytes * (h.cfg.l2_banks as u64);
            // Fill one set with exclusively granted (GetS -> DataE) lines; the
            // directory believes them clean.
            for i in 0..ways as u64 {
                let line = 0x1000 + i * stride;
                l2.push_msg(gets(&h, 0, line));
                h.run(&mut l2, 50);
                l2.push_msg(mem_data(&h, line, 0));
                h.run(&mut l2, 200);
            }
            assert_eq!(l2.resident_lines(), ways);
            // One more allocation forces an eviction of the LRU victim, which
            // is owned: the L2 must recall it.
            let extra = 0x1000 + ways as u64 * stride;
            l2.push_msg(gets(&h, 1, extra));
            let out = h.run(&mut l2, 100);
            let recall = out
                .iter()
                .find(|m| matches!(m.payload, MsgPayload::Recall { .. }))
                .expect("recall sent to owner");
            assert_eq!(recall.dst, l1_node(&h, 0));
            let victim = recall.payload.line();
            // The owner silently modified the line (E -> M), so the recall
            // data comes back dirty even though the directory expected clean.
            let mut data = LineData::zeroed(64);
            data.set_word(0, 1234);
            l2.push_msg(Msg::new(
                l1_node(&h, 0),
                h.cfg.node_of_l2(0),
                MsgPayload::WbData {
                    line: victim,
                    data,
                    dirty: true,
                    ts: None,
                },
            ));
            let out = h.run(&mut l2, 300);
            let wrote = out.iter().any(|m| {
                matches!(&m.payload, MsgPayload::MemWrite { line, data } if *line == victim && data.word(0) == 1234)
            });
            assert_eq!(
                wrote, expect_memwrite,
                "Replace-Race bug must drop the dirty recall data"
            );
            assert!(h.errors.is_empty());
        }
    }

    #[test]
    fn requests_to_busy_line_stall_until_transaction_completes() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        l2.push_msg(gets(&h, 0, 0x1000));
        h.run(&mut l2, 50);
        // While the fetch is outstanding, another GetS arrives.
        l2.push_msg(gets(&h, 1, 0x1000));
        let out = h.run(&mut l2, 50);
        assert!(
            !out.iter().any(|m| matches!(
                m.payload,
                MsgPayload::DataS { .. } | MsgPayload::DataE { .. }
            )),
            "no grant while the line is busy"
        );
        l2.push_msg(mem_data(&h, 0x1000, 5));
        let out = h.run(&mut l2, 100);
        // Core 0 granted exclusive; core 1's request now forwards to core 0.
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::DataE { .. }) && m.dst == l1_node(&h, 0)));
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::FwdGetS { .. }) && m.dst == l1_node(&h, 0)));
        assert!(h.errors.is_empty());
    }

    #[test]
    fn hard_reset_clears_state() {
        let mut h = Harness::new(BugConfig::none());
        let mut l2 = MesiL2::new(0, &h.cfg);
        l2.push_msg(gets(&h, 0, 0x1000));
        h.run(&mut l2, 10);
        assert!(!l2.is_idle());
        l2.hard_reset();
        assert!(l2.is_idle());
        assert_eq!(l2.resident_lines(), 0);
    }
}
