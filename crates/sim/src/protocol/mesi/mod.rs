//! A two-level MESI directory protocol (gem5 Ruby `MESI_Two_Level` analogue).
//!
//! * [`l1`] — private L1 controllers with stable states I, S, E, M and
//!   transient states IS, IS_I, IM, SM, MI.  The L1 is responsible for
//!   forwarding invalidations (and any other loss of read permission) to the
//!   core's load queue; four of the paper's bugs suppress exactly that
//!   forwarding in specific states.
//! * [`l2`] — shared, banked L2 acting as an inclusive blocking directory with
//!   states NP, SS, MT plus per-transaction transient states.  Two of the
//!   paper's bugs live here (the PUTX race and the replacement race).
//!
//! The protocol is *functionally accurate*: all data flows through the
//! messages and cache arrays, so a protocol bug results in stale architectural
//! values, which is what the McVerSi checker detects.

pub mod l1;
pub mod l2;

pub use l1::MesiL1;
pub use l2::MesiL2;

use crate::coverage::Transition;

/// All transitions defined by the MESI L1 controller.
///
/// This is the coverage universe used as the denominator for Table 6's
/// "maximum total transition coverage".  It deliberately includes transitions
/// that are extremely unlikely to be exercised (the paper notes the same about
/// its Ruby protocols, which is why reported coverage never reaches 100%).
pub fn l1_transitions() -> Vec<Transition> {
    let mut v = Vec::new();
    // Core-initiated events per stable state.
    for state in ["I", "S", "E", "M"] {
        for event in ["Load", "Store", "Rmw", "Flush", "Replacement"] {
            v.push(Transition::l1(state, event));
        }
    }
    // Network events per state (stable and transient).
    for state in ["I", "S", "E", "M", "IS", "IS_I", "IM", "SM", "MI"] {
        for event in ["Inv", "FwdGetS", "FwdGetX", "Recall"] {
            v.push(Transition::l1(state, event));
        }
    }
    // Data / ack deliveries into transient states.
    for (state, event) in [
        ("IS", "DataS"),
        ("IS", "DataE"),
        ("IS_I", "DataS"),
        ("IS_I", "DataE"),
        ("IM", "DataX"),
        ("SM", "DataX"),
        ("MI", "WbAck"),
        ("MI", "WbStale"),
    ] {
        v.push(Transition::l1(state, event));
    }
    v
}

/// All transitions defined by the MESI L2 controller.
pub fn l2_transitions() -> Vec<Transition> {
    let mut v = Vec::new();
    for state in ["NP", "SS", "MT"] {
        for event in ["GetS", "GetX", "PutX", "PutXStale", "Replacement"] {
            v.push(Transition::l2(state, event));
        }
    }
    for (state, event) in [
        ("I_S_Mem", "MemData"),
        ("I_X_Mem", "MemData"),
        ("SS_X_Inv", "InvAck"),
        ("MT_S_Fwd", "WbData"),
        ("MT_X_Fwd", "WbData"),
        ("SS_Evict", "InvAck"),
        ("MT_Evict", "WbData"),
    ] {
        v.push(Transition::l2(state, event));
    }
    v
}

/// The full coverage universe of the MESI protocol (L1 plus L2 transitions).
pub fn all_transitions() -> Vec<Transition> {
    let mut v = l1_transitions();
    v.extend(l2_transitions());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_universe_is_nonempty_and_unique() {
        let all = all_transitions();
        assert!(all.len() > 50);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "duplicate transitions in universe");
    }

    #[test]
    fn universe_contains_the_bug_relevant_transitions() {
        let all = all_transitions();
        for t in [
            Transition::l1("IS", "Inv"),
            Transition::l1("SM", "Inv"),
            Transition::l1("E", "FwdGetX"),
            Transition::l1("M", "FwdGetX"),
            Transition::l1("S", "Replacement"),
            Transition::l2("MT", "PutX"),
            Transition::l2("MT_Evict", "WbData"),
        ] {
            assert!(all.contains(&t), "{t} missing from universe");
        }
    }
}
