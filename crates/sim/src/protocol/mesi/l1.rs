//! The MESI private L1 cache controller.
//!
//! Stable states: `I` (not present), `S`, `E`, `M`.  Transient states (one
//! MSHR per line): `IS` (GetS outstanding), `IS_I` (GetS outstanding, an
//! invalidation was sunk while waiting), `IM` (GetX outstanding from I), `SM`
//! (GetX outstanding from S), `MI` (writeback outstanding).
//!
//! The controller forwards a *load-queue notice* to the core whenever the core
//! loses read permission on a line: external invalidation, ownership-stripping
//! forward, recall, replacement, flush, or stale data delivered in `IS_I`.
//! Four of the paper's bugs ([`Bug::MesiLqIsInv`], [`Bug::MesiLqSmInv`],
//! [`Bug::MesiLqEInv`], [`Bug::MesiLqMInv`]) and the replacement bug
//! ([`Bug::MesiLqSReplacement`]) suppress this notice on specific transitions.
//!
//! [`Bug::MesiLqIsInv`]: crate::bugs::Bug::MesiLqIsInv
//! [`Bug::MesiLqSmInv`]: crate::bugs::Bug::MesiLqSmInv
//! [`Bug::MesiLqEInv`]: crate::bugs::Bug::MesiLqEInv
//! [`Bug::MesiLqMInv`]: crate::bugs::Bug::MesiLqMInv
//! [`Bug::MesiLqSReplacement`]: crate::bugs::Bug::MesiLqSReplacement

use crate::bugs::Bug;
use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::coverage::Transition;
use crate::msg::{Msg, MsgPayload};
use crate::protocol::{
    CoreReqKind, CoreRequest, CoreRespKind, CoreResponse, L1Controller, L1Output, TickCtx,
};
use crate::system::ProtocolError;
use crate::types::{Cycle, LineAddr, LineData, NodeId};
use mcversi_telemetry as telemetry;
use std::collections::{BTreeMap, VecDeque};

/// Core requests served from a resident line with sufficient permission.
static L1_HITS: telemetry::Counter = telemetry::Counter::new("sim.l1.mesi.hit");
/// Core requests needing a coherence transaction (fill or upgrade).
static L1_MISSES: telemetry::Counter = telemetry::Counter::new("sim.l1.mesi.miss");

/// Stable states of a resident L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    Shared,
    Exclusive,
    Modified,
}

impl L1State {
    fn name(self) -> &'static str {
        match self {
            L1State::Shared => "S",
            L1State::Exclusive => "E",
            L1State::Modified => "M",
        }
    }
}

/// A resident L1 line.
#[derive(Debug, Clone)]
struct L1Line {
    state: L1State,
    data: LineData,
    dirty: bool,
}

/// Transient (MSHR) states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transient {
    /// GetS outstanding.
    IS,
    /// GetS outstanding, invalidation sunk while waiting.
    IsI,
    /// GetX outstanding (from I).
    IM,
    /// GetX outstanding (from S, line still resident until invalidated).
    SM,
    /// PutX outstanding.
    MI,
}

impl Transient {
    fn name(self) -> &'static str {
        match self {
            Transient::IS => "IS",
            Transient::IsI => "IS_I",
            Transient::IM => "IM",
            Transient::SM => "SM",
            Transient::MI => "MI",
        }
    }
}

/// A core operation waiting on an outstanding transaction.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    tag: u64,
    word: usize,
    kind: CoreReqKind,
}

/// An outstanding transaction (one per line).
#[derive(Debug)]
struct Mshr {
    tstate: Transient,
    pending: Vec<PendingOp>,
    /// Forwards/invalidations received before the data arrived; replayed once
    /// the line is installed.
    deferred: Vec<Msg>,
    /// For MI: the data being written back (needed to answer forwards that
    /// race with the writeback).
    wb_data: Option<(LineData, bool)>,
    /// Flush requests waiting for the writeback acknowledgement.
    pending_flush: Vec<u64>,
}

impl Mshr {
    fn new(tstate: Transient) -> Self {
        Mshr {
            tstate,
            pending: Vec::new(),
            deferred: Vec::new(),
            wb_data: None,
            pending_flush: Vec::new(),
        }
    }
}

/// The MESI L1 controller for one core.
#[derive(Debug)]
pub struct MesiL1 {
    core: usize,
    node: NodeId,
    cache: CacheArray<L1Line>,
    mshrs: BTreeMap<LineAddr, Mshr>,
    core_requests: VecDeque<CoreRequest>,
    msg_inbox: VecDeque<Msg>,
    ready_responses: Vec<(Cycle, CoreResponse)>,
    line_bytes: u64,
}

impl MesiL1 {
    /// Creates the L1 for core `core`.
    pub fn new(core: usize, cfg: &SystemConfig) -> Self {
        MesiL1 {
            core,
            node: cfg.node_of_l1(core),
            cache: CacheArray::new(cfg.l1_sets(), cfg.l1_ways, cfg.line_bytes),
            mshrs: BTreeMap::new(),
            core_requests: VecDeque::new(),
            msg_inbox: VecDeque::new(),
            ready_responses: Vec::new(),
            line_bytes: cfg.line_bytes,
        }
    }

    /// Number of resident lines (used by tests).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    fn home_bank(&self, cfg: &SystemConfig, line: LineAddr) -> NodeId {
        cfg.node_of_l2(cfg.bank_of_line(line))
    }

    fn line_of(&self, addr: mcversi_mcm::Address) -> (LineAddr, usize) {
        let line = LineAddr::containing(addr, self.line_bytes);
        let word = line.word_index(addr, self.line_bytes);
        (line, word)
    }

    fn respond(&mut self, ctx: &TickCtx<'_>, tag: u64, kind: CoreRespKind) {
        self.ready_responses.push((
            ctx.cycle + ctx.cfg.latency.l1_hit,
            CoreResponse { tag, kind },
        ));
    }

    /// Emits an LQ notice unless the bug governing this (state, event) pair is
    /// injected.
    fn notify_lq(
        &self,
        out: &mut L1Output,
        ctx: &TickCtx<'_>,
        line: LineAddr,
        suppressed_by: Option<Bug>,
    ) {
        if let Some(bug) = suppressed_by {
            if ctx.bugs.has(bug) {
                return;
            }
        }
        out.lq_notices.push(line);
    }

    /// Evicts a resident line, producing the writeback transaction if needed.
    /// Returns `true` if the line was (or is being) evicted.
    fn evict_line(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        reason: &'static str,
    ) -> bool {
        let Some(entry) = self.cache.get(line) else {
            return true;
        };
        let state = entry.state;
        ctx.coverage.record(Transition::l1(state.name(), reason));
        match state {
            L1State::Shared => {
                // Silent drop; the directory keeps a stale sharer entry and a
                // later Inv is simply acknowledged from I.
                self.cache.remove(line);
                let bug = if reason == "Replacement" || reason == "Flush" {
                    Some(Bug::MesiLqSReplacement)
                } else {
                    None
                };
                self.notify_lq(out, ctx, line, bug);
                true
            }
            L1State::Exclusive | L1State::Modified => {
                let entry = self.cache.remove(line).expect("checked resident");
                let dirty = entry.dirty || state == L1State::Modified;
                let mut mshr = Mshr::new(Transient::MI);
                mshr.wb_data = Some((entry.data.clone(), dirty));
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::PutX {
                        line,
                        data: entry.data,
                        dirty,
                        ts: None,
                    },
                ));
                // Losing the line means later invalidations for it can no
                // longer be observed; the LQ must be told (never a bug point
                // for E/M in the paper's set).
                self.notify_lq(out, ctx, line, None);
                true
            }
        }
    }

    /// Makes room for `line` if its set is full.  Returns `false` if the
    /// victim is itself in a transaction (caller must retry later).
    fn make_room(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, line: LineAddr) -> bool {
        if !self.cache.needs_eviction(line) {
            return true;
        }
        let victim = self.cache.victim_for(line).expect("set is full");
        if self.mshrs.contains_key(&victim) {
            return false;
        }
        self.evict_line(out, ctx, victim, "Replacement")
    }

    /// Attempts to process one core request.  Returns `false` if the request
    /// must stall (left at the head of the queue).
    fn process_core_request(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        req: CoreRequest,
    ) -> bool {
        let (line, word) = self.line_of(req.addr);

        // Attach to an existing transaction when possible.
        if let Some(mshr) = self.mshrs.get_mut(&line) {
            match (mshr.tstate, req.kind) {
                (
                    Transient::IS | Transient::IsI | Transient::IM | Transient::SM,
                    CoreReqKind::Load,
                ) => {
                    mshr.pending.push(PendingOp {
                        tag: req.tag,
                        word,
                        kind: req.kind,
                    });
                    return true;
                }
                (
                    Transient::IM | Transient::SM,
                    CoreReqKind::Store { .. } | CoreReqKind::Rmw { .. },
                ) => {
                    mshr.pending.push(PendingOp {
                        tag: req.tag,
                        word,
                        kind: req.kind,
                    });
                    return true;
                }
                // Everything else waits for the transaction to finish.
                _ => return false,
            }
        }

        let resident_state = self.cache.get(line).map(|l| l.state);
        match (req.kind, resident_state) {
            // ---- Loads ----
            (CoreReqKind::Load, Some(state)) => {
                ctx.coverage.record(Transition::l1(state.name(), "Load"));
                L1_HITS.incr();
                let value = self.cache.get_mut(line).expect("resident").data.word(word);
                self.respond(ctx, req.tag, CoreRespKind::LoadDone { value });
                true
            }
            (CoreReqKind::Load, None) => {
                ctx.coverage.record(Transition::l1("I", "Load"));
                L1_MISSES.incr();
                if !self.make_room(out, ctx, line) {
                    return false;
                }
                let mut mshr = Mshr::new(Transient::IS);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::GetS { line },
                ));
                true
            }

            // ---- Stores ----
            (CoreReqKind::Store { value }, Some(L1State::Modified)) => {
                ctx.coverage.record(Transition::l1("M", "Store"));
                L1_HITS.incr();
                let entry = self.cache.get_mut(line).expect("resident");
                let overwritten = entry.data.set_word(word, value);
                entry.dirty = true;
                self.respond(ctx, req.tag, CoreRespKind::StoreDone { overwritten });
                true
            }
            (CoreReqKind::Store { value }, Some(L1State::Exclusive)) => {
                ctx.coverage.record(Transition::l1("E", "Store"));
                L1_HITS.incr();
                let entry = self.cache.get_mut(line).expect("resident");
                let overwritten = entry.data.set_word(word, value);
                entry.dirty = true;
                entry.state = L1State::Modified;
                self.respond(ctx, req.tag, CoreRespKind::StoreDone { overwritten });
                true
            }
            (CoreReqKind::Store { .. }, Some(L1State::Shared)) => {
                ctx.coverage.record(Transition::l1("S", "Store"));
                L1_MISSES.incr();
                let mut mshr = Mshr::new(Transient::SM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::GetX { line },
                ));
                true
            }
            (CoreReqKind::Store { .. }, None) => {
                ctx.coverage.record(Transition::l1("I", "Store"));
                L1_MISSES.incr();
                if !self.make_room(out, ctx, line) {
                    return false;
                }
                let mut mshr = Mshr::new(Transient::IM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::GetX { line },
                ));
                true
            }

            // ---- RMWs ----
            (CoreReqKind::Rmw { write_value }, Some(L1State::Modified | L1State::Exclusive)) => {
                let state = resident_state.expect("resident");
                ctx.coverage.record(Transition::l1(state.name(), "Rmw"));
                L1_HITS.incr();
                let entry = self.cache.get_mut(line).expect("resident");
                let read_value = entry.data.set_word(word, write_value);
                entry.dirty = true;
                entry.state = L1State::Modified;
                self.respond(ctx, req.tag, CoreRespKind::RmwDone { read_value });
                true
            }
            (CoreReqKind::Rmw { .. }, Some(L1State::Shared)) => {
                ctx.coverage.record(Transition::l1("S", "Rmw"));
                L1_MISSES.incr();
                let mut mshr = Mshr::new(Transient::SM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::GetX { line },
                ));
                true
            }
            (CoreReqKind::Rmw { .. }, None) => {
                ctx.coverage.record(Transition::l1("I", "Rmw"));
                L1_MISSES.incr();
                if !self.make_room(out, ctx, line) {
                    return false;
                }
                let mut mshr = Mshr::new(Transient::IM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::GetX { line },
                ));
                true
            }

            // ---- Flushes ----
            (CoreReqKind::Flush, Some(state)) => {
                ctx.coverage.record(Transition::l1(state.name(), "Flush"));
                self.evict_line(out, ctx, line, "Flush");
                if let Some(mshr) = self.mshrs.get_mut(&line) {
                    // E/M flush: completion deferred until the writeback acks.
                    mshr.pending_flush.push(req.tag);
                } else {
                    self.respond(ctx, req.tag, CoreRespKind::FlushDone);
                }
                true
            }
            (CoreReqKind::Flush, None) => {
                ctx.coverage.record(Transition::l1("I", "Flush"));
                self.respond(ctx, req.tag, CoreRespKind::FlushDone);
                true
            }

            // ---- Fences ----
            // Under MESI, ordering across a fence is enforced by the core
            // (store buffer drain); the cache has nothing to do.
            (CoreReqKind::Fence, _) => {
                self.respond(ctx, req.tag, CoreRespKind::FenceDone);
                true
            }
        }
    }

    /// Serves the operations queued on an MSHR against a just-installed (or
    /// transiently available) line value.
    fn serve_pending(
        &mut self,
        ctx: &TickCtx<'_>,
        pending: Vec<PendingOp>,
        data: &mut LineData,
    ) -> bool {
        let mut wrote = false;
        for op in pending {
            match op.kind {
                CoreReqKind::Load => {
                    let value = data.word(op.word);
                    self.respond(ctx, op.tag, CoreRespKind::LoadDone { value });
                }
                CoreReqKind::Store { value } => {
                    let overwritten = data.set_word(op.word, value);
                    wrote = true;
                    self.respond(ctx, op.tag, CoreRespKind::StoreDone { overwritten });
                }
                CoreReqKind::Rmw { write_value } => {
                    let read_value = data.set_word(op.word, write_value);
                    wrote = true;
                    self.respond(ctx, op.tag, CoreRespKind::RmwDone { read_value });
                }
                CoreReqKind::Flush => {
                    self.respond(ctx, op.tag, CoreRespKind::FlushDone);
                }
                CoreReqKind::Fence => {
                    self.respond(ctx, op.tag, CoreRespKind::FenceDone);
                }
            }
        }
        wrote
    }

    /// Handles a protocol message for a line with no outstanding transaction.
    fn handle_msg_stable(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, msg: Msg) {
        let line = msg.payload.line();
        let state = self.cache.get(line).map(|l| l.state);
        let state_name = state.map_or("I", |s| s.name());
        let event = msg.payload.event_name();
        match (&msg.payload, state) {
            (MsgPayload::Inv { .. }, Some(L1State::Shared)) => {
                ctx.coverage.record(Transition::l1("S", "Inv"));
                self.cache.remove(line);
                out.to_network
                    .push(Msg::new(self.node, msg.src, MsgPayload::InvAck { line }));
                self.notify_lq(out, ctx, line, None);
            }
            (MsgPayload::Inv { .. }, None) => {
                // Stale invalidation after a silent S replacement.
                ctx.coverage.record(Transition::l1("I", "Inv"));
                out.to_network
                    .push(Msg::new(self.node, msg.src, MsgPayload::InvAck { line }));
            }
            (MsgPayload::FwdGetS { .. }, Some(L1State::Exclusive | L1State::Modified)) => {
                ctx.coverage.record(Transition::l1(state_name, "FwdGetS"));
                let entry = self.cache.get_mut(line).expect("resident");
                let dirty = entry.dirty;
                let data = entry.data.clone();
                entry.state = L1State::Shared;
                entry.dirty = false;
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data,
                        dirty,
                        ts: None,
                    },
                ));
                // Read permission is retained; no LQ notice.
            }
            (
                MsgPayload::FwdGetX { .. } | MsgPayload::Recall { .. },
                Some(L1State::Exclusive | L1State::Modified),
            ) => {
                ctx.coverage.record(Transition::l1(state_name, event));
                let entry = self.cache.remove(line).expect("resident");
                let dirty = entry.dirty;
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data: entry.data,
                        dirty,
                        ts: None,
                    },
                ));
                let bug = match entry.state {
                    L1State::Exclusive => Some(Bug::MesiLqEInv),
                    L1State::Modified => Some(Bug::MesiLqMInv),
                    L1State::Shared => None,
                };
                self.notify_lq(out, ctx, line, bug);
            }
            _ => {
                // Any other (state, message) combination indicates the
                // directory and this cache disagree about ownership.
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("L1[{}]", self.core),
                    line,
                    state_name,
                    event,
                ));
            }
        }
    }

    /// Handles a protocol message for a line with an outstanding transaction.
    fn handle_msg_transient(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, msg: Msg) {
        let line = msg.payload.line();
        let tstate = self.mshrs.get(&line).expect("mshr exists").tstate;
        let event = msg.payload.event_name();
        match (&msg.payload, tstate) {
            // ---- Invalidations racing with our own requests ----
            (MsgPayload::Inv { .. }, Transient::IS) => {
                ctx.coverage.record(Transition::l1("IS", "Inv"));
                out.to_network
                    .push(Msg::new(self.node, msg.src, MsgPayload::InvAck { line }));
                self.mshrs.get_mut(&line).expect("mshr").tstate = Transient::IsI;
            }
            (MsgPayload::Inv { .. }, Transient::IsI | Transient::IM | Transient::MI) => {
                ctx.coverage.record(Transition::l1(tstate.name(), "Inv"));
                out.to_network
                    .push(Msg::new(self.node, msg.src, MsgPayload::InvAck { line }));
            }
            (MsgPayload::Inv { .. }, Transient::SM) => {
                ctx.coverage.record(Transition::l1("SM", "Inv"));
                // Our Shared copy loses the race against another writer.
                self.cache.remove(line);
                out.to_network
                    .push(Msg::new(self.node, msg.src, MsgPayload::InvAck { line }));
                self.notify_lq(out, ctx, line, Some(Bug::MesiLqSmInv));
                self.mshrs.get_mut(&line).expect("mshr").tstate = Transient::IM;
            }

            // ---- Forwards racing with our writeback ----
            (MsgPayload::FwdGetS { .. }, Transient::MI) => {
                ctx.coverage.record(Transition::l1("MI", "FwdGetS"));
                let (data, dirty) = self
                    .mshrs
                    .get(&line)
                    .and_then(|m| m.wb_data.clone())
                    .expect("MI transaction carries writeback data");
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data,
                        dirty,
                        ts: None,
                    },
                ));
            }
            (MsgPayload::FwdGetX { .. } | MsgPayload::Recall { .. }, Transient::MI) => {
                ctx.coverage.record(Transition::l1("MI", event));
                let (data, dirty) = self
                    .mshrs
                    .get(&line)
                    .and_then(|m| m.wb_data.clone())
                    .expect("MI transaction carries writeback data");
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data,
                        dirty,
                        ts: None,
                    },
                ));
            }

            // ---- Forwards arriving before our data: defer ----
            (
                MsgPayload::FwdGetS { .. } | MsgPayload::FwdGetX { .. } | MsgPayload::Recall { .. },
                Transient::IS | Transient::IsI | Transient::IM | Transient::SM,
            ) => {
                ctx.coverage.record(Transition::l1(tstate.name(), event));
                self.mshrs.get_mut(&line).expect("mshr").deferred.push(msg);
            }

            // ---- Data responses ----
            (MsgPayload::DataS { data, .. } | MsgPayload::DataE { data, .. }, Transient::IS) => {
                let exclusive = matches!(msg.payload, MsgPayload::DataE { .. });
                ctx.coverage.record(Transition::l1(
                    "IS",
                    if exclusive { "DataE" } else { "DataS" },
                ));
                let mut mshr = self.mshrs.remove(&line).expect("mshr");
                let mut data = data.clone();
                self.serve_pending(ctx, std::mem::take(&mut mshr.pending), &mut data);
                self.install_line(
                    out,
                    ctx,
                    line,
                    data,
                    if exclusive {
                        L1State::Exclusive
                    } else {
                        L1State::Shared
                    },
                );
                self.replay_deferred(out, ctx, mshr.deferred);
            }
            (MsgPayload::DataS { data, .. } | MsgPayload::DataE { data, .. }, Transient::IsI) => {
                let exclusive = matches!(msg.payload, MsgPayload::DataE { .. });
                ctx.coverage.record(Transition::l1(
                    "IS_I",
                    if exclusive { "DataE" } else { "DataS" },
                ));
                // Use the data once for the pending loads, do not install, and
                // (in the correct design) tell the load queue about the sunk
                // invalidation so speculative loads get squashed.
                let mut mshr = self.mshrs.remove(&line).expect("mshr");
                let mut data = data.clone();
                self.serve_pending(ctx, std::mem::take(&mut mshr.pending), &mut data);
                self.notify_lq(out, ctx, line, Some(Bug::MesiLqIsInv));
                self.replay_deferred(out, ctx, mshr.deferred);
            }
            (MsgPayload::DataX { data, .. }, Transient::IM | Transient::SM) => {
                ctx.coverage.record(Transition::l1(tstate.name(), "DataX"));
                let mut mshr = self.mshrs.remove(&line).expect("mshr");
                // Start from the freshly granted data (the SM case may still
                // have a stale Shared copy resident; the granted data wins).
                self.cache.remove(line);
                let mut data = data.clone();
                let wrote = self.serve_pending(ctx, std::mem::take(&mut mshr.pending), &mut data);
                self.install_line_modified(out, ctx, line, data, wrote);
                self.replay_deferred(out, ctx, mshr.deferred);
            }

            // ---- Writeback acknowledgements ----
            (MsgPayload::WbAck { .. }, Transient::MI) => {
                ctx.coverage.record(Transition::l1("MI", "WbAck"));
                let mshr = self.mshrs.remove(&line).expect("mshr");
                for tag in mshr.pending_flush {
                    self.respond(ctx, tag, CoreRespKind::FlushDone);
                }
            }
            (MsgPayload::WbStale { .. }, Transient::MI) => {
                ctx.coverage.record(Transition::l1("MI", "WbStale"));
                let mshr = self.mshrs.remove(&line).expect("mshr");
                for tag in mshr.pending_flush {
                    self.respond(ctx, tag, CoreRespKind::FlushDone);
                }
            }

            _ => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("L1[{}]", self.core),
                    line,
                    tstate.name(),
                    event,
                ));
            }
        }
    }

    fn install_line(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        data: LineData,
        state: L1State,
    ) {
        if !self.make_room(out, ctx, line) {
            // The victim has an outstanding transaction; extremely rare.  Fall
            // back to not caching the data (it has already served its pending
            // operations), which is always safe: we notify the LQ as the line
            // is immediately "lost".
            self.notify_lq(out, ctx, line, None);
            return;
        }
        self.cache.insert(
            line,
            L1Line {
                state,
                data,
                dirty: false,
            },
        );
    }

    fn install_line_modified(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        data: LineData,
        dirty: bool,
    ) {
        if !self.make_room(out, ctx, line) {
            // Cannot cache: immediately write the line back so the data (and
            // any stores just performed into it) are not lost.
            out.to_network.push(Msg::new(
                self.node,
                self.home_bank(ctx.cfg, line),
                MsgPayload::PutX {
                    line,
                    data: data.clone(),
                    dirty: true,
                    ts: None,
                },
            ));
            let mut mshr = Mshr::new(Transient::MI);
            mshr.wb_data = Some((data, true));
            self.mshrs.insert(line, mshr);
            self.notify_lq(out, ctx, line, None);
            return;
        }
        self.cache.insert(
            line,
            L1Line {
                state: L1State::Modified,
                data,
                dirty,
            },
        );
    }

    fn replay_deferred(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, deferred: Vec<Msg>) {
        for msg in deferred {
            let line = msg.payload.line();
            if self.mshrs.contains_key(&line) {
                self.handle_msg_transient(out, ctx, msg);
            } else {
                self.handle_msg_stable(out, ctx, msg);
            }
        }
    }
}

impl L1Controller for MesiL1 {
    fn push_core_request(&mut self, req: CoreRequest) {
        self.core_requests.push_back(req);
    }

    fn push_msg(&mut self, msg: Msg) {
        self.msg_inbox.push_back(msg);
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> L1Output {
        let mut out = L1Output::default();

        // Protocol messages are never stalled.
        while let Some(msg) = self.msg_inbox.pop_front() {
            let line = msg.payload.line();
            if self.mshrs.contains_key(&line) {
                self.handle_msg_transient(&mut out, ctx, msg);
            } else {
                self.handle_msg_stable(&mut out, ctx, msg);
            }
        }

        // Core requests: process until one stalls (head-of-line blocking keeps
        // the per-core request stream ordered at the cache).
        let mut budget = 8usize;
        while budget > 0 {
            let Some(req) = self.core_requests.front().copied() else {
                break;
            };
            if self.process_core_request(&mut out, ctx, req) {
                self.core_requests.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }

        // Release responses whose hit latency has elapsed.
        let cycle = ctx.cycle;
        let (ready, waiting): (Vec<_>, Vec<_>) = self
            .ready_responses
            .drain(..)
            .partition(|&(t, _)| t <= cycle);
        self.ready_responses = waiting;
        out.responses.extend(ready.into_iter().map(|(_, r)| r));

        out
    }

    fn is_idle(&self) -> bool {
        self.mshrs.is_empty()
            && self.core_requests.is_empty()
            && self.msg_inbox.is_empty()
            && self.ready_responses.is_empty()
    }

    fn hard_reset(&mut self) {
        self.cache.drain_all();
        self.mshrs.clear();
        self.core_requests.clear();
        self.msg_inbox.clear();
        self.ready_responses.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugConfig;
    use crate::coverage::CoverageRecorder;
    use mcversi_mcm::Address;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        cfg: SystemConfig,
        bugs: BugConfig,
        coverage: CoverageRecorder,
        rng: StdRng,
        errors: Vec<ProtocolError>,
        cycle: Cycle,
    }

    impl Harness {
        fn new(bugs: BugConfig) -> Self {
            Harness {
                cfg: SystemConfig::small(crate::config::ProtocolKind::Mesi),
                bugs,
                coverage: CoverageRecorder::new(),
                rng: StdRng::seed_from_u64(7),
                errors: Vec::new(),
                cycle: 0,
            }
        }

        fn tick(&mut self, l1: &mut MesiL1) -> L1Output {
            self.cycle += 1;
            let mut ctx = TickCtx {
                cycle: self.cycle,
                cfg: &self.cfg,
                bugs: &self.bugs,
                coverage: &mut self.coverage,
                rng: &mut self.rng,
                errors: &mut self.errors,
            };
            l1.tick(&mut ctx)
        }

        /// Ticks until the given predicate yields a value or `max` cycles pass.
        fn tick_until<T>(
            &mut self,
            l1: &mut MesiL1,
            max: u64,
            mut f: impl FnMut(&L1Output) -> Option<T>,
        ) -> T {
            for _ in 0..max {
                let out = self.tick(l1);
                if let Some(v) = f(&out) {
                    return v;
                }
            }
            panic!("condition not reached within {max} cycles");
        }
    }

    fn l1_with_harness(bugs: BugConfig) -> (MesiL1, Harness) {
        let h = Harness::new(bugs);
        (MesiL1::new(0, &h.cfg), h)
    }

    fn data_with(word: usize, value: u64) -> LineData {
        let mut d = LineData::zeroed(64);
        d.set_word(word, value);
        d
    }

    #[test]
    fn load_miss_sends_gets_and_hits_after_fill() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1008),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(&mut l1);
        assert_eq!(out.to_network.len(), 1);
        assert!(matches!(out.to_network[0].payload, MsgPayload::GetS { .. }));
        let l2 = out.to_network[0].dst;

        // Deliver shared data.
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataS {
                line: LineAddr(0x1000),
                data: data_with(1, 77),
                ts: None,
            },
        ));
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::LoadDone { value: 77 });

        // A second load to the same line now hits.
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x1008),
            kind: CoreReqKind::Load,
        });
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::LoadDone { value: 77 });
        assert!(l1.is_idle());
    }

    #[test]
    fn store_to_exclusive_upgrades_silently_and_reports_overwritten() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataE {
                line: LineAddr(0x1000),
                data: data_with(0, 5),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());

        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 9 },
        });
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::StoreDone { overwritten: 5 });
        // No GetX was needed (silent E -> M upgrade).
        assert!(h.coverage.count(Transition::l1("E", "Store")) > 0);
    }

    #[test]
    fn store_miss_gets_exclusive_data_and_performs() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x2010),
            kind: CoreReqKind::Store { value: 42 },
        });
        let out = h.tick(&mut l1);
        assert!(matches!(out.to_network[0].payload, MsgPayload::GetX { .. }));
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x2000),
                data: data_with(2, 3),
                ts: None,
            },
        ));
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::StoreDone { overwritten: 3 });
    }

    #[test]
    fn shared_invalidation_acks_and_notifies_lq() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        // Fill a line in S.
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataS {
                line: LineAddr(0x1000),
                data: data_with(0, 1),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());

        // Invalidate it.
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::Inv {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        assert!(out
            .to_network
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::InvAck { .. })));
        assert_eq!(out.lq_notices, vec![LineAddr(0x1000)]);
        assert_eq!(l1.resident_lines(), 0);
    }

    #[test]
    fn is_i_race_notifies_lq_unless_bug_injected() {
        for (bugs, expect_notice) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::MesiLqIsInv), false),
        ] {
            let (mut l1, mut h) = l1_with_harness(bugs);
            l1.push_core_request(CoreRequest {
                tag: 1,
                addr: Address(0x1000),
                kind: CoreReqKind::Load,
            });
            let out = h.tick(&mut l1);
            let l2 = out.to_network[0].dst;
            // The invalidation overtakes the data: IS -> IS_I.
            l1.push_msg(Msg::new(
                l2,
                NodeId(0),
                MsgPayload::Inv {
                    line: LineAddr(0x1000),
                },
            ));
            let out = h.tick(&mut l1);
            assert!(out
                .to_network
                .iter()
                .any(|m| matches!(m.payload, MsgPayload::InvAck { .. })));
            // Data arrives afterwards; the load is served once with it.
            l1.push_msg(Msg::new(
                l2,
                NodeId(0),
                MsgPayload::DataS {
                    line: LineAddr(0x1000),
                    data: data_with(0, 11),
                    ts: None,
                },
            ));
            let mut saw_notice = false;
            let resp = h.tick_until(&mut l1, 20, |o| {
                saw_notice |= o.lq_notices.contains(&LineAddr(0x1000));
                o.responses.first().copied()
            });
            assert_eq!(resp.kind, CoreRespKind::LoadDone { value: 11 });
            assert_eq!(l1.resident_lines(), 0, "IS_I data must not be cached");
            assert_eq!(
                saw_notice, expect_notice,
                "LQ notice presence must track the MESI,LQ+IS,Inv bug"
            );
            assert!(h.errors.is_empty());
        }
    }

    #[test]
    fn sm_invalidation_notifies_lq_unless_bug_injected() {
        for (bugs, expect_notice) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::MesiLqSmInv), false),
        ] {
            let (mut l1, mut h) = l1_with_harness(bugs);
            // Line in S.
            l1.push_core_request(CoreRequest {
                tag: 1,
                addr: Address(0x1000),
                kind: CoreReqKind::Load,
            });
            let out = h.tick(&mut l1);
            let l2 = out.to_network[0].dst;
            l1.push_msg(Msg::new(
                l2,
                NodeId(0),
                MsgPayload::DataS {
                    line: LineAddr(0x1000),
                    data: data_with(0, 1),
                    ts: None,
                },
            ));
            h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
            // Store -> SM (GetX outstanding).
            l1.push_core_request(CoreRequest {
                tag: 2,
                addr: Address(0x1000),
                kind: CoreReqKind::Store { value: 5 },
            });
            let out = h.tick(&mut l1);
            assert!(matches!(out.to_network[0].payload, MsgPayload::GetX { .. }));
            // Invalidation wins the race.
            l1.push_msg(Msg::new(
                l2,
                NodeId(0),
                MsgPayload::Inv {
                    line: LineAddr(0x1000),
                },
            ));
            let out = h.tick(&mut l1);
            assert_eq!(out.lq_notices.contains(&LineAddr(0x1000)), expect_notice);
            // Exclusive data eventually arrives and the store performs.
            l1.push_msg(Msg::new(
                l2,
                NodeId(0),
                MsgPayload::DataX {
                    line: LineAddr(0x1000),
                    data: data_with(0, 3),
                    ts: None,
                },
            ));
            let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
            assert_eq!(resp.kind, CoreRespKind::StoreDone { overwritten: 3 });
            assert!(h.errors.is_empty());
        }
    }

    #[test]
    fn ownership_stripping_forward_notifies_lq_by_state() {
        // E state governed by MesiLqEInv, M state by MesiLqMInv.
        for (bug, make_modified, expect_notice_when_bug) in [
            (Bug::MesiLqEInv, false, false),
            (Bug::MesiLqMInv, true, false),
        ] {
            for bugs in [BugConfig::none(), BugConfig::single(bug)] {
                let expect_notice = bugs.is_correct_design() || expect_notice_when_bug;
                let (mut l1, mut h) = l1_with_harness(bugs);
                l1.push_core_request(CoreRequest {
                    tag: 1,
                    addr: Address(0x1000),
                    kind: CoreReqKind::Load,
                });
                let out = h.tick(&mut l1);
                let l2 = out.to_network[0].dst;
                l1.push_msg(Msg::new(
                    l2,
                    NodeId(0),
                    MsgPayload::DataE {
                        line: LineAddr(0x1000),
                        data: data_with(0, 1),
                        ts: None,
                    },
                ));
                h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
                if make_modified {
                    l1.push_core_request(CoreRequest {
                        tag: 2,
                        addr: Address(0x1000),
                        kind: CoreReqKind::Store { value: 9 },
                    });
                    h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
                }
                l1.push_msg(Msg::new(
                    l2,
                    NodeId(0),
                    MsgPayload::FwdGetX {
                        line: LineAddr(0x1000),
                    },
                ));
                let out = h.tick(&mut l1);
                assert!(out
                    .to_network
                    .iter()
                    .any(|m| matches!(m.payload, MsgPayload::WbData { .. })));
                assert_eq!(out.lq_notices.contains(&LineAddr(0x1000)), expect_notice);
                assert_eq!(l1.resident_lines(), 0);
            }
        }
    }

    #[test]
    fn fwd_gets_downgrades_without_lq_notice() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 4 },
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: data_with(0, 0),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::FwdGetS {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        let wb = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::WbData { .. }))
            .expect("WbData sent");
        match &wb.payload {
            MsgPayload::WbData { dirty, data, .. } => {
                assert!(*dirty);
                assert_eq!(data.word(0), 4);
            }
            _ => unreachable!(),
        }
        assert!(out.lq_notices.is_empty(), "downgrade keeps read permission");
        assert_eq!(l1.resident_lines(), 1);
    }

    #[test]
    fn shared_replacement_notice_suppressed_by_bug() {
        for (bugs, expect_notice) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::MesiLqSReplacement), false),
        ] {
            let (mut l1, mut h) = l1_with_harness(bugs);
            let sets = h.cfg.l1_sets() as u64;
            let ways = h.cfg.l1_ways;
            let line_bytes = h.cfg.line_bytes;
            let l2 = h.cfg.node_of_l2(0);
            // Fill (ways + 1) lines mapping to the same set, all in S.
            let mut notices = Vec::new();
            for i in 0..=(ways as u64) {
                let addr = Address(i * sets * line_bytes);
                l1.push_core_request(CoreRequest {
                    tag: i,
                    addr,
                    kind: CoreReqKind::Load,
                });
                let out = h.tick(&mut l1);
                notices.extend(out.lq_notices.clone());
                if let Some(req) = out
                    .to_network
                    .iter()
                    .find(|m| matches!(m.payload, MsgPayload::GetS { .. }))
                {
                    let line = req.payload.line();
                    l1.push_msg(Msg::new(
                        l2,
                        NodeId(0),
                        MsgPayload::DataS {
                            line,
                            data: LineData::zeroed(64),
                            ts: None,
                        },
                    ));
                }
                h.tick_until(&mut l1, 30, |o| {
                    notices.extend(o.lq_notices.clone());
                    o.responses.first().copied()
                });
            }
            assert_eq!(
                !notices.is_empty(),
                expect_notice,
                "S replacement notice must track the MESI,LQ+S,Replacement bug"
            );
        }
    }

    #[test]
    fn modified_replacement_writes_back_and_completes_on_ack() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        // Get a line into M, then flush it.
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 5 },
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x1000),
            kind: CoreReqKind::Flush,
        });
        let out = h.tick(&mut l1);
        let putx = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::PutX { .. }))
            .expect("PutX sent on flush of M line");
        match &putx.payload {
            MsgPayload::PutX { dirty, data, .. } => {
                assert!(dirty);
                assert_eq!(data.word(0), 5);
            }
            _ => unreachable!(),
        }
        assert!(out.lq_notices.contains(&LineAddr(0x1000)));
        assert!(!l1.is_idle(), "flush completion waits for the WbAck");
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::WbAck {
                line: LineAddr(0x1000),
            },
        ));
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::FlushDone);
        assert!(l1.is_idle());
    }

    #[test]
    fn forward_during_writeback_served_from_mshr_data() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 8 },
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x1000),
            kind: CoreReqKind::Flush,
        });
        h.tick(&mut l1);
        // A FwdGetX races with the PutX: the MI transaction must answer it.
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::FwdGetX {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        let wb = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::WbData { .. }))
            .expect("MI answers forwards with its writeback data");
        match &wb.payload {
            MsgPayload::WbData { data, dirty, .. } => {
                assert!(*dirty);
                assert_eq!(data.word(0), 8);
            }
            _ => unreachable!(),
        }
        // The directory will answer the stale PutX with WbStale.
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::WbStale {
                line: LineAddr(0x1000),
            },
        ));
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::FlushDone);
        assert!(l1.is_idle());
        assert!(h.errors.is_empty());
    }

    #[test]
    fn forward_before_data_is_deferred_and_replayed() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 6 },
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        // FwdGetX arrives before our DataX (forward overtakes response).
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::FwdGetX {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        assert!(out.to_network.is_empty(), "forward must be deferred");
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                ts: None,
            },
        ));
        let mut wb_seen = false;
        let resp = h.tick_until(&mut l1, 20, |o| {
            wb_seen |= o
                .to_network
                .iter()
                .any(|m| matches!(m.payload, MsgPayload::WbData { .. }));
            o.responses.first().copied()
        });
        assert_eq!(resp.kind, CoreRespKind::StoreDone { overwritten: 0 });
        assert!(wb_seen, "deferred forward replayed after install");
        assert_eq!(l1.resident_lines(), 0, "line handed over to the requestor");
        assert!(h.errors.is_empty());
    }

    #[test]
    fn rmw_returns_read_value_and_installs_modified() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x3000),
            kind: CoreReqKind::Rmw { write_value: 50 },
        });
        let out = h.tick(&mut l1);
        let l2 = out.to_network[0].dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x3000),
                data: data_with(0, 20),
                ts: None,
            },
        ));
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::RmwDone { read_value: 20 });
        // The written value is visible to a subsequent load.
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x3000),
            kind: CoreReqKind::Load,
        });
        let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(resp.kind, CoreRespKind::LoadDone { value: 50 });
    }

    #[test]
    fn hard_reset_clears_everything() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Load,
        });
        h.tick(&mut l1);
        assert!(!l1.is_idle());
        l1.hard_reset();
        assert!(l1.is_idle());
        assert_eq!(l1.resident_lines(), 0);
    }

    #[test]
    fn unexpected_message_reports_protocol_error() {
        let (mut l1, mut h) = l1_with_harness(BugConfig::none());
        // A FwdGetS to a line we do not own at all is a protocol error.
        l1.push_msg(Msg::new(
            NodeId(4),
            NodeId(0),
            MsgPayload::FwdGetS {
                line: LineAddr(0x9000),
            },
        ));
        h.tick(&mut l1);
        assert_eq!(h.errors.len(), 1);
        assert!(h.errors[0].to_string().contains("FwdGetS"));
    }
}
