//! TSO-CC: a lazy, consistency-directed coherence protocol for TSO.
//!
//! TSO-CC (Elver & Nagarajan, HPCA 2014) deliberately violates the
//! Single-Writer–Multiple-Reader invariant: writers obtain exclusive
//! ownership from the directory, but existing Shared copies at other cores
//! are *not* invalidated.  Consistency is instead maintained at the readers:
//!
//! * every Shared line carries the writing core's (group) timestamp and epoch;
//! * when a core *acquires* data written by another core with a timestamp
//!   greater than or equal to the last timestamp it has seen from that writer,
//!   it self-invalidates all of its Shared lines (the transitive-reduction
//!   rule) — the `>=` comparison is exactly what the `TSO-CC+compare` bug
//!   weakens to `>`;
//! * timestamps reset after a small maximum; epoch ids disambiguate
//!   comparisons across resets — ignoring them is the `TSO-CC+no-epoch-ids`
//!   bug;
//! * Shared lines additionally expire after a bounded number of accesses;
//! * fences and atomic read-modify-writes self-invalidate all Shared lines.
//!
//! The L2 ([`l2`]) tracks only the exclusive owner (no sharer lists) plus the
//! last writer's timestamp metadata per line.

pub mod l1;
pub mod l2;

pub use l1::TsoCcL1;
pub use l2::TsoCcL2;

use crate::coverage::Transition;

/// All transitions defined by the TSO-CC L1 controller (coverage universe).
pub fn l1_transitions() -> Vec<Transition> {
    let mut v = Vec::new();
    for state in ["I", "S", "E", "M"] {
        for event in [
            "Load",
            "Store",
            "Rmw",
            "Flush",
            "Replacement",
            "Expired",
            "SelfInvalidate",
        ] {
            v.push(Transition::l1(state, event));
        }
    }
    for state in ["I", "S", "E", "M", "IS", "IM", "MI"] {
        for event in ["Recall", "Downgrade"] {
            v.push(Transition::l1(state, event));
        }
    }
    for (state, event) in [
        ("IS", "DataS"),
        ("IS", "DataE"),
        ("IM", "DataX"),
        ("MI", "WbAck"),
        ("MI", "WbStale"),
        ("S", "TimestampReset"),
        ("M", "TimestampReset"),
    ] {
        v.push(Transition::l1(state, event));
    }
    v
}

/// All transitions defined by the TSO-CC L2 controller (coverage universe).
pub fn l2_transitions() -> Vec<Transition> {
    let mut v = Vec::new();
    for state in ["NP", "U", "EX"] {
        for event in ["GetS", "GetX", "PutX", "PutXStale", "Replacement"] {
            v.push(Transition::l2(state, event));
        }
    }
    for (state, event) in [
        ("U_S_Mem", "MemData"),
        ("U_X_Mem", "MemData"),
        ("EX_S_Down", "WbData"),
        ("EX_X_Recall", "WbData"),
        ("EX_Evict", "WbData"),
    ] {
        v.push(Transition::l2(state, event));
    }
    v
}

/// The full coverage universe of the TSO-CC protocol.
pub fn all_transitions() -> Vec<Transition> {
    let mut v = l1_transitions();
    v.extend(l2_transitions());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_unique_and_contains_bug_relevant_transitions() {
        let all = all_transitions();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        assert!(all.contains(&Transition::l1("S", "SelfInvalidate")));
        assert!(all.contains(&Transition::l1("S", "TimestampReset")));
        assert!(all.contains(&Transition::l2("EX", "GetX")));
    }
}
