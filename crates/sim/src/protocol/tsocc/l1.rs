//! The TSO-CC private L1 cache controller.
//!
//! Besides the cache array, the controller keeps the per-core TSO-CC state:
//! the core's own (group) timestamp and epoch, and the last-seen timestamp per
//! remote writer.  Shared lines carry the writer's timestamp metadata and an
//! access budget; acquiring newer data from a writer self-invalidates all
//! Shared lines (the paper's transitive-reduction rule), as do fences and
//! atomics.  The two TSO-CC bugs of the evaluation weaken the timestamp
//! comparison ([`Bug::TsoCcCompare`]) or ignore epoch ids across timestamp
//! resets ([`Bug::TsoCcNoEpochIds`]).
//!
//! [`Bug::TsoCcCompare`]: crate::bugs::Bug::TsoCcCompare
//! [`Bug::TsoCcNoEpochIds`]: crate::bugs::Bug::TsoCcNoEpochIds

use crate::bugs::Bug;
use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::coverage::Transition;
use crate::msg::{Msg, MsgPayload, TsInfo};
use crate::protocol::{
    CoreReqKind, CoreRequest, CoreRespKind, CoreResponse, L1Controller, L1Output, TickCtx,
};
use crate::system::ProtocolError;
use crate::types::{Cycle, LineAddr, LineData, NodeId};
use mcversi_telemetry as telemetry;
use std::collections::{BTreeMap, VecDeque};

/// Core requests served from a resident line with sufficient permission.
static L1_HITS: telemetry::Counter = telemetry::Counter::new("sim.l1.tsocc.hit");
/// Core requests needing a coherence transaction (fill, upgrade, or expired
/// staleness budget).
static L1_MISSES: telemetry::Counter = telemetry::Counter::new("sim.l1.tsocc.miss");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    Shared,
    Exclusive,
    Modified,
}

impl L1State {
    fn name(self) -> &'static str {
        match self {
            L1State::Shared => "S",
            L1State::Exclusive => "E",
            L1State::Modified => "M",
        }
    }
}

#[derive(Debug, Clone)]
struct L1Line {
    state: L1State,
    data: LineData,
    dirty: bool,
    /// Last writer metadata (carried on writebacks so readers can compare).
    ts: Option<TsInfo>,
    /// Remaining accesses before a Shared line expires.
    accesses_left: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transient {
    /// GetS outstanding.
    IS,
    /// GetX outstanding.
    IM,
    /// PutX outstanding.
    MI,
}

impl Transient {
    fn name(self) -> &'static str {
        match self {
            Transient::IS => "IS",
            Transient::IM => "IM",
            Transient::MI => "MI",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    tag: u64,
    word: usize,
    kind: CoreReqKind,
}

#[derive(Debug)]
struct Mshr {
    tstate: Transient,
    pending: Vec<PendingOp>,
    deferred: Vec<Msg>,
    wb_data: Option<(LineData, bool, Option<TsInfo>)>,
    pending_flush: Vec<u64>,
}

impl Mshr {
    fn new(tstate: Transient) -> Self {
        Mshr {
            tstate,
            pending: Vec::new(),
            deferred: Vec::new(),
            wb_data: None,
            pending_flush: Vec::new(),
        }
    }
}

/// The TSO-CC L1 controller for one core.
#[derive(Debug)]
pub struct TsoCcL1 {
    core: usize,
    node: NodeId,
    cache: CacheArray<L1Line>,
    mshrs: BTreeMap<LineAddr, Mshr>,
    core_requests: VecDeque<CoreRequest>,
    msg_inbox: VecDeque<Msg>,
    ready_responses: Vec<(Cycle, CoreResponse)>,
    line_bytes: u64,
    // ---- TSO-CC per-core state ----
    local_ts: u64,
    writes_in_group: u64,
    epoch: u64,
    last_seen: BTreeMap<u32, (u64, u64)>, // writer -> (epoch, ts)
}

impl TsoCcL1 {
    /// Creates the L1 for core `core`.
    pub fn new(core: usize, cfg: &SystemConfig) -> Self {
        TsoCcL1 {
            core,
            node: cfg.node_of_l1(core),
            cache: CacheArray::new(cfg.l1_sets(), cfg.l1_ways, cfg.line_bytes),
            mshrs: BTreeMap::new(),
            core_requests: VecDeque::new(),
            msg_inbox: VecDeque::new(),
            ready_responses: Vec::new(),
            line_bytes: cfg.line_bytes,
            local_ts: 1,
            writes_in_group: 0,
            epoch: 0,
            last_seen: BTreeMap::new(),
        }
    }

    /// Number of resident lines (used by tests).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    /// The core's current epoch (used by tests to confirm resets happen).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn home_bank(&self, cfg: &SystemConfig, line: LineAddr) -> NodeId {
        cfg.node_of_l2(cfg.bank_of_line(line))
    }

    fn line_of(&self, addr: mcversi_mcm::Address) -> (LineAddr, usize) {
        let line = LineAddr::containing(addr, self.line_bytes);
        let word = line.word_index(addr, self.line_bytes);
        (line, word)
    }

    fn respond(&mut self, ctx: &TickCtx<'_>, tag: u64, kind: CoreRespKind) {
        self.ready_responses.push((
            ctx.cycle + ctx.cfg.latency.l1_hit,
            CoreResponse { tag, kind },
        ));
    }

    /// Advances the core's write timestamp (one write); returns the metadata
    /// to tag the written line with.
    fn bump_write_ts(&mut self, ctx: &mut TickCtx<'_>) -> TsInfo {
        self.writes_in_group += 1;
        if self.writes_in_group >= ctx.cfg.tsocc_ts_group {
            self.writes_in_group = 0;
            self.local_ts += 1;
            if self.local_ts > ctx.cfg.tsocc_ts_max {
                // Timestamp reset: a new epoch begins.
                self.local_ts = 1;
                self.epoch += 1;
                ctx.coverage.record(Transition::l1("M", "TimestampReset"));
            }
        }
        TsInfo {
            writer: self.core as u32,
            ts: self.local_ts,
            epoch: self.epoch,
        }
    }

    /// Applies the acquire rule for data whose last writer is `ts`.
    ///
    /// Returns `true` if all Shared lines must be self-invalidated.  The two
    /// TSO-CC bugs weaken this decision.
    fn acquire_decision(&mut self, ctx: &TickCtx<'_>, ts: Option<TsInfo>) -> bool {
        let Some(info) = ts else {
            // No metadata (data came straight from memory): be conservative.
            return true;
        };
        if info.writer as usize == self.core {
            return false;
        }
        let decision = match self.last_seen.get(&info.writer) {
            None => true,
            Some(&(seen_epoch, seen_ts)) => {
                if ctx.bugs.has(Bug::TsoCcNoEpochIds) {
                    // Epochs ignored: compare raw timestamps across resets.
                    if ctx.bugs.has(Bug::TsoCcCompare) {
                        info.ts > seen_ts
                    } else {
                        info.ts >= seen_ts
                    }
                } else if info.epoch != seen_epoch {
                    true
                } else if ctx.bugs.has(Bug::TsoCcCompare) {
                    info.ts > seen_ts
                } else {
                    info.ts >= seen_ts
                }
            }
        };
        // Track the newest observation of this writer.
        let entry = self
            .last_seen
            .entry(info.writer)
            .or_insert((info.epoch, info.ts));
        if info.epoch != entry.0 {
            *entry = (info.epoch, info.ts);
        } else if info.ts > entry.1 {
            entry.1 = info.ts;
        }
        decision
    }

    /// Self-invalidates every Shared line (except `keep`), notifying the LQ.
    fn self_invalidate_shared(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        keep: Option<LineAddr>,
    ) {
        let victims: Vec<LineAddr> = self
            .cache
            .iter()
            .filter(|(addr, l)| l.state == L1State::Shared && Some(*addr) != keep)
            .map(|(addr, _)| addr)
            .collect();
        for v in victims {
            ctx.coverage.record(Transition::l1("S", "SelfInvalidate"));
            self.cache.remove(v);
            out.lq_notices.push(v);
        }
    }

    fn evict_line(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        reason: &'static str,
    ) -> bool {
        let Some(entry) = self.cache.get(line) else {
            return true;
        };
        let state = entry.state;
        ctx.coverage.record(Transition::l1(state.name(), reason));
        match state {
            L1State::Shared => {
                self.cache.remove(line);
                out.lq_notices.push(line);
                true
            }
            L1State::Exclusive | L1State::Modified => {
                let entry = self.cache.remove(line).expect("resident");
                let dirty = entry.dirty || state == L1State::Modified;
                let ts = entry.ts;
                let mut mshr = Mshr::new(Transient::MI);
                mshr.wb_data = Some((entry.data.clone(), dirty, ts));
                self.mshrs.insert(line, mshr);
                out.to_network.push(Msg::new(
                    self.node,
                    self.home_bank(ctx.cfg, line),
                    MsgPayload::PutX {
                        line,
                        data: entry.data,
                        dirty,
                        ts,
                    },
                ));
                out.lq_notices.push(line);
                true
            }
        }
    }

    fn make_room(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, line: LineAddr) -> bool {
        if !self.cache.needs_eviction(line) {
            return true;
        }
        let victim = self.cache.victim_for(line).expect("set full");
        if self.mshrs.contains_key(&victim) {
            return false;
        }
        self.evict_line(out, ctx, victim, "Replacement")
    }

    fn send_gets(&mut self, out: &mut L1Output, ctx: &TickCtx<'_>, line: LineAddr) {
        out.to_network.push(Msg::new(
            self.node,
            self.home_bank(ctx.cfg, line),
            MsgPayload::GetS { line },
        ));
    }

    fn send_getx(&mut self, out: &mut L1Output, ctx: &TickCtx<'_>, line: LineAddr) {
        out.to_network.push(Msg::new(
            self.node,
            self.home_bank(ctx.cfg, line),
            MsgPayload::GetX { line },
        ));
    }

    fn process_core_request(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        req: CoreRequest,
    ) -> bool {
        let (line, word) = self.line_of(req.addr);

        if let Some(mshr) = self.mshrs.get_mut(&line) {
            match (mshr.tstate, req.kind) {
                (Transient::IS | Transient::IM, CoreReqKind::Load) => {
                    mshr.pending.push(PendingOp {
                        tag: req.tag,
                        word,
                        kind: req.kind,
                    });
                    return true;
                }
                (Transient::IM, CoreReqKind::Store { .. } | CoreReqKind::Rmw { .. }) => {
                    mshr.pending.push(PendingOp {
                        tag: req.tag,
                        word,
                        kind: req.kind,
                    });
                    return true;
                }
                _ => return false,
            }
        }

        let state = self.cache.get(line).map(|l| l.state);
        match (req.kind, state) {
            // ---- Loads ----
            (CoreReqKind::Load, Some(L1State::Shared)) => {
                let expired = self
                    .cache
                    .get(line)
                    .map(|l| l.accesses_left == 0)
                    .unwrap_or(false);
                if expired {
                    // The staleness budget is exhausted: re-fetch.
                    ctx.coverage.record(Transition::l1("S", "Expired"));
                    L1_MISSES.incr();
                    self.cache.remove(line);
                    out.lq_notices.push(line);
                    let mut mshr = Mshr::new(Transient::IS);
                    mshr.pending.push(PendingOp {
                        tag: req.tag,
                        word,
                        kind: req.kind,
                    });
                    self.mshrs.insert(line, mshr);
                    self.send_gets(out, ctx, line);
                    return true;
                }
                ctx.coverage.record(Transition::l1("S", "Load"));
                L1_HITS.incr();
                let entry = self.cache.get_mut(line).expect("resident");
                entry.accesses_left = entry.accesses_left.saturating_sub(1);
                let value = entry.data.word(word);
                self.respond(ctx, req.tag, CoreRespKind::LoadDone { value });
                true
            }
            (CoreReqKind::Load, Some(st @ (L1State::Exclusive | L1State::Modified))) => {
                ctx.coverage.record(Transition::l1(st.name(), "Load"));
                L1_HITS.incr();
                let value = self.cache.get_mut(line).expect("resident").data.word(word);
                self.respond(ctx, req.tag, CoreRespKind::LoadDone { value });
                true
            }
            (CoreReqKind::Load, None) => {
                ctx.coverage.record(Transition::l1("I", "Load"));
                L1_MISSES.incr();
                if !self.make_room(out, ctx, line) {
                    return false;
                }
                let mut mshr = Mshr::new(Transient::IS);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                self.send_gets(out, ctx, line);
                true
            }

            // ---- Stores ----
            (CoreReqKind::Store { value }, Some(st @ (L1State::Exclusive | L1State::Modified))) => {
                ctx.coverage.record(Transition::l1(st.name(), "Store"));
                L1_HITS.incr();
                let ts = self.bump_write_ts(ctx);
                let entry = self.cache.get_mut(line).expect("resident");
                let overwritten = entry.data.set_word(word, value);
                entry.dirty = true;
                entry.state = L1State::Modified;
                entry.ts = Some(ts);
                self.respond(ctx, req.tag, CoreRespKind::StoreDone { overwritten });
                true
            }
            (CoreReqKind::Store { .. }, Some(L1State::Shared)) => {
                // The stale Shared copy is dropped; exclusive ownership is
                // requested.  Dropping the copy is a loss of read permission.
                ctx.coverage.record(Transition::l1("S", "Store"));
                L1_MISSES.incr();
                self.cache.remove(line);
                out.lq_notices.push(line);
                let mut mshr = Mshr::new(Transient::IM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                self.send_getx(out, ctx, line);
                true
            }
            (CoreReqKind::Store { .. }, None) => {
                ctx.coverage.record(Transition::l1("I", "Store"));
                L1_MISSES.incr();
                if !self.make_room(out, ctx, line) {
                    return false;
                }
                let mut mshr = Mshr::new(Transient::IM);
                mshr.pending.push(PendingOp {
                    tag: req.tag,
                    word,
                    kind: req.kind,
                });
                self.mshrs.insert(line, mshr);
                self.send_getx(out, ctx, line);
                true
            }

            // ---- RMWs (imply a fence: self-invalidate Shared lines) ----
            (CoreReqKind::Rmw { write_value }, st) => {
                self.self_invalidate_shared(out, ctx, None);
                match st {
                    Some(s @ (L1State::Exclusive | L1State::Modified)) => {
                        ctx.coverage.record(Transition::l1(s.name(), "Rmw"));
                        L1_HITS.incr();
                        let ts = self.bump_write_ts(ctx);
                        let entry = self.cache.get_mut(line).expect("resident");
                        let read_value = entry.data.set_word(word, write_value);
                        entry.dirty = true;
                        entry.state = L1State::Modified;
                        entry.ts = Some(ts);
                        self.respond(ctx, req.tag, CoreRespKind::RmwDone { read_value });
                        true
                    }
                    Some(L1State::Shared) | None => {
                        // (The Shared copy, if any, was just self-invalidated.)
                        ctx.coverage
                            .record(Transition::l1(st.map_or("I", |s| s.name()), "Rmw"));
                        L1_MISSES.incr();
                        if !self.make_room(out, ctx, line) {
                            return false;
                        }
                        let mut mshr = Mshr::new(Transient::IM);
                        mshr.pending.push(PendingOp {
                            tag: req.tag,
                            word,
                            kind: req.kind,
                        });
                        self.mshrs.insert(line, mshr);
                        self.send_getx(out, ctx, line);
                        true
                    }
                }
            }

            // ---- Flushes ----
            (CoreReqKind::Flush, Some(state)) => {
                ctx.coverage.record(Transition::l1(state.name(), "Flush"));
                self.evict_line(out, ctx, line, "Flush");
                if let Some(mshr) = self.mshrs.get_mut(&line) {
                    mshr.pending_flush.push(req.tag);
                } else {
                    self.respond(ctx, req.tag, CoreRespKind::FlushDone);
                }
                true
            }
            (CoreReqKind::Flush, None) => {
                ctx.coverage.record(Transition::l1("I", "Flush"));
                self.respond(ctx, req.tag, CoreRespKind::FlushDone);
                true
            }

            // ---- Fences: self-invalidate all Shared lines ----
            (CoreReqKind::Fence, _) => {
                self.self_invalidate_shared(out, ctx, None);
                self.respond(ctx, req.tag, CoreRespKind::FenceDone);
                true
            }
        }
    }

    fn serve_pending(
        &mut self,
        ctx: &mut TickCtx<'_>,
        pending: Vec<PendingOp>,
        data: &mut LineData,
        line_ts: &mut Option<TsInfo>,
    ) -> bool {
        let mut wrote = false;
        for op in pending {
            match op.kind {
                CoreReqKind::Load => {
                    let value = data.word(op.word);
                    self.respond(ctx, op.tag, CoreRespKind::LoadDone { value });
                }
                CoreReqKind::Store { value } => {
                    let ts = self.bump_write_ts(ctx);
                    let overwritten = data.set_word(op.word, value);
                    *line_ts = Some(ts);
                    wrote = true;
                    self.respond(ctx, op.tag, CoreRespKind::StoreDone { overwritten });
                }
                CoreReqKind::Rmw { write_value } => {
                    let ts = self.bump_write_ts(ctx);
                    let read_value = data.set_word(op.word, write_value);
                    *line_ts = Some(ts);
                    wrote = true;
                    self.respond(ctx, op.tag, CoreRespKind::RmwDone { read_value });
                }
                CoreReqKind::Flush => {
                    self.respond(ctx, op.tag, CoreRespKind::FlushDone);
                }
                CoreReqKind::Fence => {
                    self.respond(ctx, op.tag, CoreRespKind::FenceDone);
                }
            }
        }
        wrote
    }

    fn handle_msg(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, msg: Msg) {
        let line = msg.payload.line();
        let event = msg.payload.event_name();
        if let Some(tstate) = self.mshrs.get(&line).map(|m| m.tstate) {
            match (&msg.payload, tstate) {
                (MsgPayload::Downgrade { .. } | MsgPayload::Recall { .. }, Transient::MI) => {
                    ctx.coverage.record(Transition::l1("MI", event));
                    let (data, dirty, ts) = self
                        .mshrs
                        .get(&line)
                        .and_then(|m| m.wb_data.clone())
                        .expect("MI carries writeback data");
                    out.to_network.push(Msg::new(
                        self.node,
                        msg.src,
                        MsgPayload::WbData {
                            line,
                            data,
                            dirty,
                            ts,
                        },
                    ));
                }
                (
                    MsgPayload::Downgrade { .. } | MsgPayload::Recall { .. },
                    Transient::IS | Transient::IM,
                ) => {
                    ctx.coverage.record(Transition::l1(tstate.name(), event));
                    self.mshrs.get_mut(&line).expect("mshr").deferred.push(msg);
                }
                (
                    MsgPayload::DataS { data, ts, .. } | MsgPayload::DataE { data, ts, .. },
                    Transient::IS,
                ) => {
                    let exclusive = matches!(msg.payload, MsgPayload::DataE { .. });
                    ctx.coverage.record(Transition::l1(
                        "IS",
                        if exclusive { "DataE" } else { "DataS" },
                    ));
                    // Acquire first, so the LQ sees the self-invalidation
                    // notices before the pending loads complete.
                    if self.acquire_decision(ctx, *ts) {
                        self.self_invalidate_shared(out, ctx, None);
                    }
                    let mut mshr = self.mshrs.remove(&line).expect("mshr");
                    let mut data = data.clone();
                    let mut line_ts = *ts;
                    self.serve_pending(
                        ctx,
                        std::mem::take(&mut mshr.pending),
                        &mut data,
                        &mut line_ts,
                    );
                    self.install_line(
                        out,
                        ctx,
                        line,
                        data,
                        if exclusive {
                            L1State::Exclusive
                        } else {
                            L1State::Shared
                        },
                        line_ts,
                    );
                    self.replay_deferred(out, ctx, mshr.deferred);
                }
                (MsgPayload::DataX { data, ts, .. }, Transient::IM) => {
                    ctx.coverage.record(Transition::l1("IM", "DataX"));
                    if self.acquire_decision(ctx, *ts) {
                        self.self_invalidate_shared(out, ctx, None);
                    }
                    let mut mshr = self.mshrs.remove(&line).expect("mshr");
                    self.cache.remove(line);
                    let mut data = data.clone();
                    let mut line_ts = *ts;
                    let wrote = self.serve_pending(
                        ctx,
                        std::mem::take(&mut mshr.pending),
                        &mut data,
                        &mut line_ts,
                    );
                    self.install_modified(out, ctx, line, data, wrote, line_ts);
                    self.replay_deferred(out, ctx, mshr.deferred);
                }
                (MsgPayload::WbAck { .. }, Transient::MI) => {
                    ctx.coverage.record(Transition::l1("MI", "WbAck"));
                    let mshr = self.mshrs.remove(&line).expect("mshr");
                    for tag in mshr.pending_flush {
                        self.respond(ctx, tag, CoreRespKind::FlushDone);
                    }
                }
                (MsgPayload::WbStale { .. }, Transient::MI) => {
                    ctx.coverage.record(Transition::l1("MI", "WbStale"));
                    let mshr = self.mshrs.remove(&line).expect("mshr");
                    for tag in mshr.pending_flush {
                        self.respond(ctx, tag, CoreRespKind::FlushDone);
                    }
                }
                _ => {
                    ctx.errors.push(ProtocolError::invalid_transition(
                        ctx.cycle,
                        format!("TSO-CC L1[{}]", self.core),
                        line,
                        tstate.name(),
                        event,
                    ));
                }
            }
            return;
        }

        // No outstanding transaction for the line.
        let state = self.cache.get(line).map(|l| l.state);
        match (&msg.payload, state) {
            (MsgPayload::Downgrade { .. }, Some(L1State::Exclusive | L1State::Modified)) => {
                let st = state.expect("resident");
                ctx.coverage.record(Transition::l1(st.name(), "Downgrade"));
                let cfg_budget = ctx.cfg.tsocc_max_accesses;
                let entry = self.cache.get_mut(line).expect("resident");
                let dirty = entry.dirty;
                let data = entry.data.clone();
                let ts = entry.ts;
                entry.state = L1State::Shared;
                entry.dirty = false;
                entry.accesses_left = cfg_budget;
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data,
                        dirty,
                        ts,
                    },
                ));
            }
            (MsgPayload::Downgrade { .. }, Some(L1State::Shared)) => {
                // A downgrade that raced with our own silent downgrade: answer
                // with the Shared copy (clean).
                ctx.coverage.record(Transition::l1("S", "Downgrade"));
                let entry = self.cache.get(line).expect("resident");
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data: entry.data.clone(),
                        dirty: false,
                        ts: entry.ts,
                    },
                ));
            }
            (MsgPayload::Recall { .. }, Some(L1State::Shared)) => {
                ctx.coverage.record(Transition::l1("S", "Recall"));
                let entry = self.cache.remove(line).expect("resident");
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data: entry.data,
                        dirty: false,
                        ts: entry.ts,
                    },
                ));
                out.lq_notices.push(line);
            }
            (MsgPayload::Recall { .. }, Some(L1State::Exclusive | L1State::Modified)) => {
                let st = state.expect("resident");
                ctx.coverage.record(Transition::l1(st.name(), "Recall"));
                let entry = self.cache.remove(line).expect("resident");
                out.to_network.push(Msg::new(
                    self.node,
                    msg.src,
                    MsgPayload::WbData {
                        line,
                        data: entry.data,
                        dirty: entry.dirty,
                        ts: entry.ts,
                    },
                ));
                out.lq_notices.push(line);
            }
            _ => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("TSO-CC L1[{}]", self.core),
                    line,
                    state.map_or("I", |s| s.name()),
                    event,
                ));
            }
        }
    }

    fn install_line(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        data: LineData,
        state: L1State,
        ts: Option<TsInfo>,
    ) {
        if !self.make_room(out, ctx, line) {
            out.lq_notices.push(line);
            return;
        }
        self.cache.insert(
            line,
            L1Line {
                state,
                data,
                dirty: false,
                ts,
                accesses_left: ctx.cfg.tsocc_max_accesses,
            },
        );
    }

    fn install_modified(
        &mut self,
        out: &mut L1Output,
        ctx: &mut TickCtx<'_>,
        line: LineAddr,
        data: LineData,
        dirty: bool,
        ts: Option<TsInfo>,
    ) {
        if !self.make_room(out, ctx, line) {
            out.to_network.push(Msg::new(
                self.node,
                self.home_bank(ctx.cfg, line),
                MsgPayload::PutX {
                    line,
                    data: data.clone(),
                    dirty: true,
                    ts,
                },
            ));
            let mut mshr = Mshr::new(Transient::MI);
            mshr.wb_data = Some((data, true, ts));
            self.mshrs.insert(line, mshr);
            out.lq_notices.push(line);
            return;
        }
        self.cache.insert(
            line,
            L1Line {
                state: L1State::Modified,
                data,
                dirty,
                ts,
                accesses_left: ctx.cfg.tsocc_max_accesses,
            },
        );
    }

    fn replay_deferred(&mut self, out: &mut L1Output, ctx: &mut TickCtx<'_>, deferred: Vec<Msg>) {
        for msg in deferred {
            self.handle_msg(out, ctx, msg);
        }
    }
}

impl L1Controller for TsoCcL1 {
    fn push_core_request(&mut self, req: CoreRequest) {
        self.core_requests.push_back(req);
    }

    fn push_msg(&mut self, msg: Msg) {
        self.msg_inbox.push_back(msg);
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> L1Output {
        let mut out = L1Output::default();
        while let Some(msg) = self.msg_inbox.pop_front() {
            self.handle_msg(&mut out, ctx, msg);
        }
        let mut budget = 8usize;
        while budget > 0 {
            let Some(req) = self.core_requests.front().copied() else {
                break;
            };
            if self.process_core_request(&mut out, ctx, req) {
                self.core_requests.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }
        let cycle = ctx.cycle;
        let (ready, waiting): (Vec<_>, Vec<_>) = self
            .ready_responses
            .drain(..)
            .partition(|&(t, _)| t <= cycle);
        self.ready_responses = waiting;
        out.responses.extend(ready.into_iter().map(|(_, r)| r));
        out
    }

    fn is_idle(&self) -> bool {
        self.mshrs.is_empty()
            && self.core_requests.is_empty()
            && self.msg_inbox.is_empty()
            && self.ready_responses.is_empty()
    }

    fn hard_reset(&mut self) {
        self.cache.drain_all();
        self.mshrs.clear();
        self.core_requests.clear();
        self.msg_inbox.clear();
        self.ready_responses.clear();
        // The per-core timestamp state is architectural and survives resets of
        // the test memory (matching how a real core's counters would behave).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugConfig;
    use crate::config::ProtocolKind;
    use crate::coverage::CoverageRecorder;
    use mcversi_mcm::Address;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        cfg: SystemConfig,
        bugs: BugConfig,
        coverage: CoverageRecorder,
        rng: StdRng,
        errors: Vec<ProtocolError>,
        cycle: Cycle,
    }

    impl Harness {
        fn new(bugs: BugConfig) -> Self {
            Harness {
                cfg: SystemConfig::small(ProtocolKind::TsoCc),
                bugs,
                coverage: CoverageRecorder::new(),
                rng: StdRng::seed_from_u64(5),
                errors: Vec::new(),
                cycle: 0,
            }
        }

        fn tick(&mut self, l1: &mut TsoCcL1) -> L1Output {
            self.cycle += 1;
            let mut ctx = TickCtx {
                cycle: self.cycle,
                cfg: &self.cfg,
                bugs: &self.bugs,
                coverage: &mut self.coverage,
                rng: &mut self.rng,
                errors: &mut self.errors,
            };
            l1.tick(&mut ctx)
        }

        fn tick_until<T>(
            &mut self,
            l1: &mut TsoCcL1,
            max: u64,
            mut f: impl FnMut(&L1Output) -> Option<T>,
        ) -> T {
            for _ in 0..max {
                let out = self.tick(l1);
                if let Some(v) = f(&out) {
                    return v;
                }
            }
            panic!("condition not reached within {max} cycles");
        }
    }

    fn data_with(word: usize, value: u64) -> LineData {
        let mut d = LineData::zeroed(64);
        d.set_word(word, value);
        d
    }

    fn fill_shared(
        h: &mut Harness,
        l1: &mut TsoCcL1,
        tag: u64,
        addr: u64,
        value: u64,
        ts: Option<TsInfo>,
    ) {
        l1.push_core_request(CoreRequest {
            tag,
            addr: Address(addr),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(l1);
        let gets = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::GetS { .. }))
            .expect("GetS sent");
        let line = gets.payload.line();
        let word = line.word_index(Address(addr), 64);
        l1.push_msg(Msg::new(
            gets.dst,
            NodeId(0),
            MsgPayload::DataS {
                line,
                data: data_with(word, value),
                ts,
            },
        ));
        h.tick_until(l1, 20, |o| o.responses.first().copied());
    }

    #[test]
    fn shared_hit_decrements_access_budget_and_expires() {
        let mut h = Harness::new(BugConfig::none());
        let mut l1 = TsoCcL1::new(0, &h.cfg);
        let ts = Some(TsInfo {
            writer: 1,
            ts: 1,
            epoch: 0,
        });
        fill_shared(&mut h, &mut l1, 1, 0x1000, 5, ts);
        // Exhaust the budget with hits.
        for i in 0..h.cfg.tsocc_max_accesses {
            l1.push_core_request(CoreRequest {
                tag: 100 + i as u64,
                addr: Address(0x1000),
                kind: CoreReqKind::Load,
            });
            let resp = h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
            assert_eq!(resp.kind, CoreRespKind::LoadDone { value: 5 });
        }
        // The next access must re-fetch.
        l1.push_core_request(CoreRequest {
            tag: 999,
            addr: Address(0x1000),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(&mut l1);
        assert!(
            out.to_network
                .iter()
                .any(|m| matches!(m.payload, MsgPayload::GetS { .. })),
            "expired Shared line must be re-fetched"
        );
        assert!(h.coverage.count(Transition::l1("S", "Expired")) > 0);
    }

    #[test]
    fn acquire_of_newer_timestamp_self_invalidates_shared_lines() {
        let mut h = Harness::new(BugConfig::none());
        let mut l1 = TsoCcL1::new(0, &h.cfg);
        // A stale Shared line written by core 1 at ts=1.
        fill_shared(
            &mut h,
            &mut l1,
            1,
            0x1000,
            5,
            Some(TsInfo {
                writer: 1,
                ts: 1,
                epoch: 0,
            }),
        );
        assert_eq!(l1.resident_lines(), 1);
        // Acquire data written by core 1 at ts=3 (newer): the stale line must
        // be self-invalidated and the LQ notified.
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0x2000),
            kind: CoreReqKind::Load,
        });
        let out = h.tick(&mut l1);
        let gets = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::GetS { .. }))
            .expect("GetS");
        l1.push_msg(Msg::new(
            gets.dst,
            NodeId(0),
            MsgPayload::DataS {
                line: LineAddr(0x2000),
                data: data_with(0, 9),
                ts: Some(TsInfo {
                    writer: 1,
                    ts: 3,
                    epoch: 0,
                }),
            },
        ));
        let mut notices = Vec::new();
        h.tick_until(&mut l1, 20, |o| {
            notices.extend(o.lq_notices.clone());
            o.responses.first().copied()
        });
        assert!(notices.contains(&LineAddr(0x1000)));
        assert!(h.coverage.count(Transition::l1("S", "SelfInvalidate")) > 0);
        assert_eq!(l1.resident_lines(), 1, "only the new line remains");
    }

    #[test]
    fn compare_bug_misses_equal_timestamp_self_invalidation() {
        for (bugs, expect_selfinv) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::TsoCcCompare), false),
        ] {
            let mut h = Harness::new(bugs);
            let mut l1 = TsoCcL1::new(0, &h.cfg);
            // First acquire from writer 1 at ts=2: establishes last_seen = 2.
            fill_shared(
                &mut h,
                &mut l1,
                1,
                0x3000,
                1,
                Some(TsInfo {
                    writer: 1,
                    ts: 2,
                    epoch: 0,
                }),
            );
            // A stale Shared line (from writer 2, unrelated).
            fill_shared(
                &mut h,
                &mut l1,
                2,
                0x1000,
                5,
                Some(TsInfo {
                    writer: 2,
                    ts: 1,
                    epoch: 0,
                }),
            );
            // Acquire data from writer 1 in the *same* timestamp group (ts=2):
            // the correct `>=` comparison self-invalidates, `>` does not.
            l1.push_core_request(CoreRequest {
                tag: 3,
                addr: Address(0x4000),
                kind: CoreReqKind::Load,
            });
            let out = h.tick(&mut l1);
            let gets = out
                .to_network
                .iter()
                .find(|m| matches!(m.payload, MsgPayload::GetS { .. }))
                .expect("GetS");
            l1.push_msg(Msg::new(
                gets.dst,
                NodeId(0),
                MsgPayload::DataS {
                    line: LineAddr(0x4000),
                    data: data_with(0, 7),
                    ts: Some(TsInfo {
                        writer: 1,
                        ts: 2,
                        epoch: 0,
                    }),
                },
            ));
            let mut notices = Vec::new();
            h.tick_until(&mut l1, 20, |o| {
                notices.extend(o.lq_notices.clone());
                o.responses.first().copied()
            });
            assert_eq!(
                notices.contains(&LineAddr(0x1000)),
                expect_selfinv,
                "TSO-CC+compare bug must suppress the equal-timestamp self-invalidation"
            );
        }
    }

    #[test]
    fn epoch_bug_misses_self_invalidation_after_timestamp_reset() {
        for (bugs, expect_selfinv) in [
            (BugConfig::none(), true),
            (BugConfig::single(Bug::TsoCcNoEpochIds), false),
        ] {
            let mut h = Harness::new(bugs);
            let mut l1 = TsoCcL1::new(0, &h.cfg);
            // Observe writer 1 late in its epoch 0 (large timestamp).
            fill_shared(
                &mut h,
                &mut l1,
                1,
                0x3000,
                1,
                Some(TsInfo {
                    writer: 1,
                    ts: 14,
                    epoch: 0,
                }),
            );
            // A stale Shared line from another writer.
            fill_shared(
                &mut h,
                &mut l1,
                2,
                0x1000,
                5,
                Some(TsInfo {
                    writer: 2,
                    ts: 1,
                    epoch: 0,
                }),
            );
            // Writer 1 resets: epoch 1, small timestamp.  With epoch ids the
            // acquire self-invalidates; ignoring them the timestamp looks old.
            l1.push_core_request(CoreRequest {
                tag: 3,
                addr: Address(0x4000),
                kind: CoreReqKind::Load,
            });
            let out = h.tick(&mut l1);
            let gets = out
                .to_network
                .iter()
                .find(|m| matches!(m.payload, MsgPayload::GetS { .. }))
                .expect("GetS");
            l1.push_msg(Msg::new(
                gets.dst,
                NodeId(0),
                MsgPayload::DataS {
                    line: LineAddr(0x4000),
                    data: data_with(0, 7),
                    ts: Some(TsInfo {
                        writer: 1,
                        ts: 2,
                        epoch: 1,
                    }),
                },
            ));
            let mut notices = Vec::new();
            h.tick_until(&mut l1, 20, |o| {
                notices.extend(o.lq_notices.clone());
                o.responses.first().copied()
            });
            assert_eq!(
                notices.contains(&LineAddr(0x1000)),
                expect_selfinv,
                "TSO-CC+no-epoch-ids bug must suppress the post-reset self-invalidation"
            );
        }
    }

    #[test]
    fn rmw_and_fence_self_invalidate_shared_lines() {
        let mut h = Harness::new(BugConfig::none());
        let mut l1 = TsoCcL1::new(0, &h.cfg);
        fill_shared(
            &mut h,
            &mut l1,
            1,
            0x1000,
            5,
            Some(TsInfo {
                writer: 1,
                ts: 1,
                epoch: 0,
            }),
        );
        l1.push_core_request(CoreRequest {
            tag: 2,
            addr: Address(0),
            kind: CoreReqKind::Fence,
        });
        let mut notices = Vec::new();
        let resp = h.tick_until(&mut l1, 20, |o| {
            notices.extend(o.lq_notices.clone());
            o.responses.first().copied()
        });
        assert_eq!(resp.kind, CoreRespKind::FenceDone);
        assert!(notices.contains(&LineAddr(0x1000)));
        assert_eq!(l1.resident_lines(), 0);
    }

    #[test]
    fn writes_advance_timestamps_and_reset_into_new_epoch() {
        let mut h = Harness::new(BugConfig::none());
        let mut l1 = TsoCcL1::new(0, &h.cfg);
        // Acquire exclusive ownership once, then hammer stores.
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 1 },
        });
        let out = h.tick(&mut l1);
        let getx = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::GetX { .. }))
            .expect("GetX");
        l1.push_msg(Msg::new(
            getx.dst,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        assert_eq!(l1.epoch(), 0);
        let writes_needed = h.cfg.tsocc_ts_group * (h.cfg.tsocc_ts_max + 2);
        for i in 0..writes_needed {
            l1.push_core_request(CoreRequest {
                tag: 100 + i,
                addr: Address(0x1000),
                kind: CoreReqKind::Store { value: i + 2 },
            });
            h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        }
        assert!(
            l1.epoch() >= 1,
            "enough writes must trigger a timestamp reset"
        );
        assert!(h.coverage.count(Transition::l1("M", "TimestampReset")) > 0);
    }

    #[test]
    fn downgrade_provides_data_and_keeps_shared_copy() {
        let mut h = Harness::new(BugConfig::none());
        let mut l1 = TsoCcL1::new(0, &h.cfg);
        l1.push_core_request(CoreRequest {
            tag: 1,
            addr: Address(0x1000),
            kind: CoreReqKind::Store { value: 42 },
        });
        let out = h.tick(&mut l1);
        let getx = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::GetX { .. }))
            .expect("GetX");
        let l2 = getx.dst;
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::DataX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                ts: None,
            },
        ));
        h.tick_until(&mut l1, 20, |o| o.responses.first().copied());
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::Downgrade {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        let wb = out
            .to_network
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::WbData { .. }))
            .expect("WbData");
        match &wb.payload {
            MsgPayload::WbData {
                data, dirty, ts, ..
            } => {
                assert!(*dirty);
                assert_eq!(data.word(0), 42);
                assert!(ts.is_some(), "writebacks carry the writer timestamp");
            }
            _ => unreachable!(),
        }
        assert!(out.lq_notices.is_empty(), "downgrade keeps read permission");
        assert_eq!(l1.resident_lines(), 1);
        // Recall, by contrast, strips the line and notifies the LQ.
        l1.push_msg(Msg::new(
            l2,
            NodeId(0),
            MsgPayload::Recall {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.tick(&mut l1);
        assert!(out.lq_notices.contains(&LineAddr(0x1000)));
        assert_eq!(l1.resident_lines(), 0);
        assert!(h.errors.is_empty());
    }
}
