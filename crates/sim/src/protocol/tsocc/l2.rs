//! The TSO-CC shared L2 bank / directory.
//!
//! Unlike the MESI directory, the TSO-CC L2 keeps *no sharer lists*: it only
//! tracks the exclusive owner of a line (if any) and the last writer's
//! timestamp metadata, which it attaches to every data response so readers can
//! apply the acquire rule.  Reads of an exclusively owned line downgrade the
//! owner; writes recall it; Shared copies elsewhere are never invalidated —
//! this is the deliberate SWMR violation that makes TSO-CC an interesting
//! verification case study (paper §5.3).

use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::coverage::Transition;
use crate::msg::{Msg, MsgPayload, TsInfo};
use crate::protocol::{L2Controller, TickCtx};
use crate::system::ProtocolError;
use crate::types::{Cycle, LineAddr, LineData, NodeId};
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2State {
    /// Present, not exclusively owned; the L2 copy is authoritative.
    Uncached,
    /// Exclusively owned by one L1; the L2 copy may be stale.
    Exclusive,
}

impl L2State {
    fn name(self) -> &'static str {
        match self {
            L2State::Uncached => "U",
            L2State::Exclusive => "EX",
        }
    }
}

#[derive(Debug, Clone)]
struct L2Line {
    state: L2State,
    data: LineData,
    dirty: bool,
    owner: Option<usize>,
    ts: Option<TsInfo>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Trans {
    FetchForS { requestor: usize },
    FetchForX { requestor: usize },
    DownForS { requestor: usize },
    RecallForX { requestor: usize },
    EvictRecall,
}

impl Trans {
    fn name(&self) -> &'static str {
        match self {
            Trans::FetchForS { .. } => "U_S_Mem",
            Trans::FetchForX { .. } => "U_X_Mem",
            Trans::DownForS { .. } => "EX_S_Down",
            Trans::RecallForX { .. } => "EX_X_Recall",
            Trans::EvictRecall => "EX_Evict",
        }
    }
}

/// The TSO-CC L2 bank controller.
#[derive(Debug)]
pub struct TsoCcL2 {
    bank: usize,
    node: NodeId,
    cache: CacheArray<L2Line>,
    trans: BTreeMap<LineAddr, Trans>,
    /// Per-set count of outstanding memory fetches (`FetchForS`/`FetchForX`
    /// entries in `trans`), so [`Self::set_has_pending_fetch`] is O(1) instead
    /// of a scan over every in-flight transaction.  Maintained exclusively by
    /// [`Self::trans_insert`] / [`Self::trans_remove`].
    pending_fetches: Vec<u32>,
    requests: VecDeque<Msg>,
    responses: VecDeque<Msg>,
    pending_out: Vec<(Cycle, Msg)>,
}

impl TsoCcL2 {
    /// Creates the controller for L2 bank `bank`.
    pub fn new(bank: usize, cfg: &SystemConfig) -> Self {
        TsoCcL2 {
            bank,
            node: cfg.node_of_l2(bank),
            cache: CacheArray::new(cfg.l2_sets(), cfg.l2_ways, cfg.line_bytes),
            trans: BTreeMap::new(),
            pending_fetches: vec![0; cfg.l2_sets()],
            requests: VecDeque::new(),
            responses: VecDeque::new(),
            pending_out: Vec::new(),
        }
    }

    /// Number of resident lines (used by tests).
    pub fn resident_lines(&self) -> usize {
        self.cache.len()
    }

    fn send_response(&mut self, ctx: &mut TickCtx<'_>, dst: NodeId, payload: MsgPayload) {
        let latency = ctx
            .rng
            .gen_range(ctx.cfg.latency.l2_min..=ctx.cfg.latency.l2_max);
        self.pending_out
            .push((ctx.cycle + latency, Msg::new(self.node, dst, payload)));
    }

    fn send_forward(&mut self, ctx: &mut TickCtx<'_>, dst: NodeId, payload: MsgPayload) {
        let latency = ctx.cfg.latency.l2_min / 2;
        self.pending_out
            .push((ctx.cycle + latency, Msg::new(self.node, dst, payload)));
    }

    fn send_mem(&mut self, ctx: &mut TickCtx<'_>, payload: MsgPayload) {
        let latency = ctx.cfg.latency.l2_min / 2;
        self.pending_out.push((
            ctx.cycle + latency,
            Msg::new(self.node, ctx.cfg.node_of_memory(), payload),
        ));
    }

    fn is_fetch(trans: &Trans) -> bool {
        matches!(trans, Trans::FetchForS { .. } | Trans::FetchForX { .. })
    }

    /// Starts (or replaces) an in-flight transaction, keeping the per-set
    /// pending-fetch counters in sync.  A replacement may retire a fetch (the
    /// old entry counts down before the new one counts up).
    fn trans_insert(&mut self, line: LineAddr, trans: Trans) {
        let set = self.cache.set_index(line);
        if Self::is_fetch(&trans) {
            self.pending_fetches[set] += 1;
        }
        if let Some(old) = self.trans.insert(line, trans) {
            if Self::is_fetch(&old) {
                self.pending_fetches[set] = self.pending_fetches[set].saturating_sub(1);
            }
        }
    }

    /// Retires an in-flight transaction, keeping the per-set pending-fetch
    /// counters in sync.
    fn trans_remove(&mut self, line: LineAddr) -> Option<Trans> {
        let old = self.trans.remove(&line)?;
        if Self::is_fetch(&old) {
            let set = self.cache.set_index(line);
            self.pending_fetches[set] = self.pending_fetches[set].saturating_sub(1);
        }
        Some(old)
    }

    /// Returns `true` if a memory fetch is already outstanding for a line in
    /// the same cache set (the fetch has reserved the set's free way).
    fn set_has_pending_fetch(&self, line: LineAddr) -> bool {
        self.pending_fetches[self.cache.set_index(line)] > 0
    }

    fn make_room(&mut self, ctx: &mut TickCtx<'_>, line: LineAddr) -> bool {
        if !self.cache.needs_eviction(line) {
            return true;
        }
        let victim = self.cache.victim_for(line).expect("set full");
        if self.trans.contains_key(&victim) {
            return false;
        }
        let entry = self.cache.get(victim).expect("resident").clone();
        ctx.coverage
            .record(Transition::l2(entry.state.name(), "Replacement"));
        match entry.state {
            L2State::Uncached => {
                if entry.dirty {
                    self.send_mem(
                        ctx,
                        MsgPayload::MemWrite {
                            line: victim,
                            data: entry.data,
                        },
                    );
                }
                self.cache.remove(victim);
                true
            }
            L2State::Exclusive => {
                let owner = entry.owner.expect("exclusive line has owner");
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::Recall { line: victim });
                self.trans_insert(victim, Trans::EvictRecall);
                false
            }
        }
    }

    fn process_request(&mut self, ctx: &mut TickCtx<'_>, msg: &Msg) -> bool {
        let line = msg.payload.line();
        if self.trans.contains_key(&line) {
            return false;
        }
        let src_core = ctx.cfg.l1_index(msg.src);
        let resident = self.cache.get(line).map(|l| l.state);
        match (&msg.payload, resident) {
            (MsgPayload::GetS { .. }, Some(L2State::Uncached)) => {
                ctx.coverage.record(Transition::l2("U", "GetS"));
                let entry = self.cache.get_mut(line).expect("resident");
                let (data, ts) = (entry.data.clone(), entry.ts);
                self.send_response(ctx, msg.src, MsgPayload::DataS { line, data, ts });
                true
            }
            (MsgPayload::GetS { .. }, Some(L2State::Exclusive)) => {
                ctx.coverage.record(Transition::l2("EX", "GetS"));
                let requestor = src_core.expect("GetS from an L1");
                let owner = self.cache.get(line).and_then(|l| l.owner).expect("owner");
                if owner == requestor {
                    let entry = self.cache.get(line).expect("resident");
                    let (data, ts) = (entry.data.clone(), entry.ts);
                    self.send_response(ctx, msg.src, MsgPayload::DataX { line, data, ts });
                    return true;
                }
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::Downgrade { line });
                self.trans_insert(line, Trans::DownForS { requestor });
                true
            }
            (MsgPayload::GetS { .. }, None) => {
                ctx.coverage.record(Transition::l2("NP", "GetS"));
                if self.set_has_pending_fetch(line) || !self.make_room(ctx, line) {
                    return false;
                }
                let requestor = src_core.expect("GetS from an L1");
                self.trans_insert(line, Trans::FetchForS { requestor });
                self.send_mem(ctx, MsgPayload::MemRead { line });
                true
            }

            (MsgPayload::GetX { .. }, Some(L2State::Uncached)) => {
                ctx.coverage.record(Transition::l2("U", "GetX"));
                let requestor = src_core.expect("GetX from an L1");
                let entry = self.cache.get_mut(line).expect("resident");
                entry.state = L2State::Exclusive;
                entry.owner = Some(requestor);
                let (data, ts) = (entry.data.clone(), entry.ts);
                self.send_response(ctx, msg.src, MsgPayload::DataX { line, data, ts });
                true
            }
            (MsgPayload::GetX { .. }, Some(L2State::Exclusive)) => {
                ctx.coverage.record(Transition::l2("EX", "GetX"));
                let requestor = src_core.expect("GetX from an L1");
                let owner = self.cache.get(line).and_then(|l| l.owner).expect("owner");
                if owner == requestor {
                    let entry = self.cache.get(line).expect("resident");
                    let (data, ts) = (entry.data.clone(), entry.ts);
                    self.send_response(ctx, msg.src, MsgPayload::DataX { line, data, ts });
                    return true;
                }
                let dst = ctx.cfg.node_of_l1(owner);
                self.send_forward(ctx, dst, MsgPayload::Recall { line });
                self.trans_insert(line, Trans::RecallForX { requestor });
                true
            }
            (MsgPayload::GetX { .. }, None) => {
                ctx.coverage.record(Transition::l2("NP", "GetX"));
                if self.set_has_pending_fetch(line) || !self.make_room(ctx, line) {
                    return false;
                }
                let requestor = src_core.expect("GetX from an L1");
                self.trans_insert(line, Trans::FetchForX { requestor });
                self.send_mem(ctx, MsgPayload::MemRead { line });
                true
            }

            (
                MsgPayload::PutX {
                    data, dirty, ts, ..
                },
                Some(L2State::Exclusive),
            ) if self.cache.get(line).and_then(|l| l.owner) == src_core && src_core.is_some() => {
                ctx.coverage.record(Transition::l2("EX", "PutX"));
                let entry = self.cache.get_mut(line).expect("resident");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                    entry.ts = *ts;
                }
                entry.state = L2State::Uncached;
                entry.owner = None;
                self.send_response(ctx, msg.src, MsgPayload::WbAck { line });
                true
            }
            (MsgPayload::PutX { .. }, state) => {
                let state_name = state.map_or("NP", |s| s.name());
                ctx.coverage.record(Transition::l2(state_name, "PutXStale"));
                self.send_response(ctx, msg.src, MsgPayload::WbStale { line });
                true
            }

            (payload, state) => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("TSO-CC L2[{}]", self.bank),
                    line,
                    state.map_or("NP", |s| s.name()),
                    payload.event_name(),
                ));
                true
            }
        }
    }

    fn process_response(&mut self, ctx: &mut TickCtx<'_>, msg: Msg) {
        let line = msg.payload.line();
        let Some(trans) = self.trans.get(&line).cloned() else {
            ctx.errors.push(ProtocolError::invalid_transition(
                ctx.cycle,
                format!("TSO-CC L2[{}]", self.bank),
                line,
                "no-transaction",
                msg.payload.event_name(),
            ));
            return;
        };
        match (&msg.payload, trans) {
            (MsgPayload::MemData { data, .. }, Trans::FetchForS { requestor }) => {
                ctx.coverage.record(Transition::l2("U_S_Mem", "MemData"));
                self.trans_remove(line);
                self.cache.insert(
                    line,
                    L2Line {
                        state: L2State::Uncached,
                        data: data.clone(),
                        dirty: false,
                        owner: None,
                        ts: None,
                    },
                );
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataS {
                        line,
                        data: data.clone(),
                        ts: None,
                    },
                );
            }
            (MsgPayload::MemData { data, .. }, Trans::FetchForX { requestor }) => {
                ctx.coverage.record(Transition::l2("U_X_Mem", "MemData"));
                self.trans_remove(line);
                self.cache.insert(
                    line,
                    L2Line {
                        state: L2State::Exclusive,
                        data: data.clone(),
                        dirty: false,
                        owner: Some(requestor),
                        ts: None,
                    },
                );
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataX {
                        line,
                        data: data.clone(),
                        ts: None,
                    },
                );
            }
            (
                MsgPayload::WbData {
                    data, dirty, ts, ..
                },
                Trans::DownForS { requestor },
            ) => {
                ctx.coverage.record(Transition::l2("EX_S_Down", "WbData"));
                self.trans_remove(line);
                let entry = self.cache.get_mut(line).expect("resident");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                }
                if ts.is_some() {
                    entry.ts = *ts;
                }
                entry.state = L2State::Uncached;
                entry.owner = None;
                let (out_data, out_ts) = (entry.data.clone(), entry.ts);
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataS {
                        line,
                        data: out_data,
                        ts: out_ts,
                    },
                );
            }
            (
                MsgPayload::WbData {
                    data, dirty, ts, ..
                },
                Trans::RecallForX { requestor },
            ) => {
                ctx.coverage.record(Transition::l2("EX_X_Recall", "WbData"));
                self.trans_remove(line);
                let entry = self.cache.get_mut(line).expect("resident");
                if *dirty {
                    entry.data = data.clone();
                    entry.dirty = true;
                }
                if ts.is_some() {
                    entry.ts = *ts;
                }
                entry.state = L2State::Exclusive;
                entry.owner = Some(requestor);
                let (out_data, out_ts) = (entry.data.clone(), entry.ts);
                let dst = ctx.cfg.node_of_l1(requestor);
                self.send_response(
                    ctx,
                    dst,
                    MsgPayload::DataX {
                        line,
                        data: out_data,
                        ts: out_ts,
                    },
                );
            }
            (MsgPayload::WbData { data, dirty, .. }, Trans::EvictRecall) => {
                ctx.coverage.record(Transition::l2("EX_Evict", "WbData"));
                self.trans_remove(line);
                let entry = self.cache.remove(line).expect("resident");
                if *dirty {
                    self.send_mem(
                        ctx,
                        MsgPayload::MemWrite {
                            line,
                            data: data.clone(),
                        },
                    );
                } else if entry.dirty {
                    self.send_mem(
                        ctx,
                        MsgPayload::MemWrite {
                            line,
                            data: entry.data,
                        },
                    );
                }
            }
            (payload, trans) => {
                ctx.errors.push(ProtocolError::invalid_transition(
                    ctx.cycle,
                    format!("TSO-CC L2[{}]", self.bank),
                    line,
                    trans.name(),
                    payload.event_name(),
                ));
            }
        }
    }
}

impl L2Controller for TsoCcL2 {
    fn push_msg(&mut self, msg: Msg) {
        match msg.payload.vnet() {
            crate::msg::VirtualNetwork::Request => self.requests.push_back(msg),
            _ => self.responses.push_back(msg),
        }
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) -> Vec<Msg> {
        while let Some(msg) = self.responses.pop_front() {
            self.process_response(ctx, msg);
        }
        let mut budget = 8usize;
        while budget > 0 {
            let Some(msg) = self.requests.front().cloned() else {
                break;
            };
            if self.process_request(ctx, &msg) {
                self.requests.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }
        let cycle = ctx.cycle;
        let (ready, waiting): (Vec<_>, Vec<_>) =
            self.pending_out.drain(..).partition(|&(t, _)| t <= cycle);
        self.pending_out = waiting;
        ready.into_iter().map(|(_, m)| m).collect()
    }

    fn is_idle(&self) -> bool {
        self.trans.is_empty()
            && self.requests.is_empty()
            && self.responses.is_empty()
            && self.pending_out.is_empty()
    }

    fn hard_reset(&mut self) {
        self.cache.drain_all();
        self.trans.clear();
        self.pending_fetches.fill(0);
        self.requests.clear();
        self.responses.clear();
        self.pending_out.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugConfig;
    use crate::config::ProtocolKind;
    use crate::coverage::CoverageRecorder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        cfg: SystemConfig,
        bugs: BugConfig,
        coverage: CoverageRecorder,
        rng: StdRng,
        errors: Vec<ProtocolError>,
        cycle: Cycle,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                cfg: SystemConfig::small(ProtocolKind::TsoCc),
                bugs: BugConfig::none(),
                coverage: CoverageRecorder::new(),
                rng: StdRng::seed_from_u64(11),
                errors: Vec::new(),
                cycle: 0,
            }
        }

        fn run(&mut self, l2: &mut TsoCcL2, cycles: u64) -> Vec<Msg> {
            let mut out = Vec::new();
            for _ in 0..cycles {
                self.cycle += 1;
                let mut ctx = TickCtx {
                    cycle: self.cycle,
                    cfg: &self.cfg,
                    bugs: &self.bugs,
                    coverage: &mut self.coverage,
                    rng: &mut self.rng,
                    errors: &mut self.errors,
                };
                out.extend(l2.tick(&mut ctx));
            }
            out
        }
    }

    fn msg_from_l1(h: &Harness, core: usize, payload: MsgPayload) -> Msg {
        Msg::new(h.cfg.node_of_l1(core), h.cfg.node_of_l2(0), payload)
    }

    #[test]
    fn gets_miss_fetches_and_serves_shared() {
        let mut h = Harness::new();
        let mut l2 = TsoCcL2::new(0, &h.cfg);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::GetS {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.run(&mut l2, 50);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::MemRead { .. })));
        l2.push_msg(Msg::new(
            h.cfg.node_of_memory(),
            h.cfg.node_of_l2(0),
            MsgPayload::MemData {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
            },
        ));
        let out = h.run(&mut l2, 200);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::DataS { .. })));
        assert!(l2.is_idle());
        assert!(h.errors.is_empty());
    }

    #[test]
    fn getx_to_owned_line_recalls_owner_and_transfers_ownership() {
        let mut h = Harness::new();
        let mut l2 = TsoCcL2::new(0, &h.cfg);
        // Core 0 takes ownership.
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::GetX {
                line: LineAddr(0x1000),
            },
        ));
        h.run(&mut l2, 50);
        l2.push_msg(Msg::new(
            h.cfg.node_of_memory(),
            h.cfg.node_of_l2(0),
            MsgPayload::MemData {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
            },
        ));
        h.run(&mut l2, 200);
        // Core 1 wants to write too.
        l2.push_msg(msg_from_l1(
            &h,
            1,
            MsgPayload::GetX {
                line: LineAddr(0x1000),
            },
        ));
        let out = h.run(&mut l2, 100);
        let recall = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::Recall { .. }))
            .expect("owner recalled");
        assert_eq!(recall.dst, h.cfg.node_of_l1(0));
        // Core 0 writes back with its timestamp.
        let mut data = LineData::zeroed(64);
        data.set_word(0, 77);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::WbData {
                line: LineAddr(0x1000),
                data,
                dirty: true,
                ts: Some(TsInfo {
                    writer: 0,
                    ts: 3,
                    epoch: 0,
                }),
            },
        ));
        let out = h.run(&mut l2, 200);
        let grant = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::DataX { .. }))
            .expect("grant to the new owner");
        assert_eq!(grant.dst, h.cfg.node_of_l1(1));
        match &grant.payload {
            MsgPayload::DataX { data, ts, .. } => {
                assert_eq!(data.word(0), 77);
                assert_eq!(ts.map(|t| t.ts), Some(3), "timestamp metadata propagated");
            }
            _ => unreachable!(),
        }
        assert!(h.errors.is_empty());
    }

    #[test]
    fn gets_to_owned_line_downgrades_owner_and_keeps_metadata() {
        let mut h = Harness::new();
        let mut l2 = TsoCcL2::new(0, &h.cfg);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::GetX {
                line: LineAddr(0x2000),
            },
        ));
        h.run(&mut l2, 50);
        l2.push_msg(Msg::new(
            h.cfg.node_of_memory(),
            h.cfg.node_of_l2(0),
            MsgPayload::MemData {
                line: LineAddr(0x2000),
                data: LineData::zeroed(64),
            },
        ));
        h.run(&mut l2, 200);
        l2.push_msg(msg_from_l1(
            &h,
            1,
            MsgPayload::GetS {
                line: LineAddr(0x2000),
            },
        ));
        let out = h.run(&mut l2, 100);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::Downgrade { .. })));
        let mut data = LineData::zeroed(64);
        data.set_word(0, 5);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::WbData {
                line: LineAddr(0x2000),
                data,
                dirty: true,
                ts: Some(TsInfo {
                    writer: 0,
                    ts: 9,
                    epoch: 2,
                }),
            },
        ));
        let out = h.run(&mut l2, 200);
        let resp = out
            .iter()
            .find(|m| matches!(m.payload, MsgPayload::DataS { .. }))
            .expect("shared data");
        match &resp.payload {
            MsgPayload::DataS { ts, data, .. } => {
                assert_eq!(ts.map(|t| (t.ts, t.epoch)), Some((9, 2)));
                assert_eq!(data.word(0), 5);
            }
            _ => unreachable!(),
        }
        // Another reader is served straight from the (now Uncached) L2 line
        // with the same metadata — no sharer tracking involved.
        l2.push_msg(msg_from_l1(
            &h,
            2,
            MsgPayload::GetS {
                line: LineAddr(0x2000),
            },
        ));
        let out = h.run(&mut l2, 200);
        assert!(
            out.iter()
                .any(|m| matches!(m.payload, MsgPayload::DataS { .. })
                    && m.dst == h.cfg.node_of_l1(2))
        );
        assert!(h.errors.is_empty());
    }

    #[test]
    fn putx_from_owner_accepted_and_stale_putx_nacked() {
        let mut h = Harness::new();
        let mut l2 = TsoCcL2::new(0, &h.cfg);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::GetX {
                line: LineAddr(0x1000),
            },
        ));
        h.run(&mut l2, 50);
        l2.push_msg(Msg::new(
            h.cfg.node_of_memory(),
            h.cfg.node_of_l2(0),
            MsgPayload::MemData {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
            },
        ));
        h.run(&mut l2, 200);
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::PutX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                dirty: true,
                ts: Some(TsInfo {
                    writer: 0,
                    ts: 1,
                    epoch: 0,
                }),
            },
        ));
        let out = h.run(&mut l2, 200);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::WbAck { .. })));
        // A second PutX (now stale — the line is Uncached) is nacked.
        l2.push_msg(msg_from_l1(
            &h,
            0,
            MsgPayload::PutX {
                line: LineAddr(0x1000),
                data: LineData::zeroed(64),
                dirty: false,
                ts: None,
            },
        ));
        let out = h.run(&mut l2, 200);
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, MsgPayload::WbStale { .. })));
        assert!(h.errors.is_empty());
    }
}
