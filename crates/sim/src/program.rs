//! Executable test programs: the simulator-side representation of a test.
//!
//! The test generator (crate `mcversi-testgen`) produces tests as DAGs of
//! high-level operations; the McVerSi framework lowers each test into a
//! [`TestProgram`] — one [`ThreadProgram`] per core, each a sequence of
//! [`TestOp`]s in program order — and hands it to the guest workload for
//! execution (the analogue of the paper's on-the-fly code emission to the
//! target ISA).
//!
//! Every dynamic write carries a globally unique value (the "write unique ID"
//! scheme of §4.1) so the observer can map any read value back to exactly one
//! producing write.

use mcversi_mcm::{Address, DepKind, EventKind, FenceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a test operation (paper Table 3's operation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestOpKind {
    /// Read into a register.
    Read,
    /// Read into a register with an address dependency on the previous read.
    ///
    /// The address itself is static (the dependency is modelled as an issue
    /// dependency on the previous read's completion), which preserves the
    /// timing behaviour relevant to TSO without dynamic address computation.
    ReadAddrDp,
    /// Write the given unique value from a register.
    Write {
        /// The globally unique value written.
        value: u64,
    },
    /// Write whose data is computed from the previous read's value.
    ///
    /// The written value is still the statically assigned unique value (the
    /// dependency is modelled as an issue dependency on the previous read's
    /// completion, like [`TestOpKind::ReadAddrDp`]), so the observer's
    /// value-based conflict-order reconstruction is unaffected.
    WriteDataDp {
        /// The globally unique value written.
        value: u64,
    },
    /// Write control-dependent on the previous read (a branch on the read's
    /// value precedes it); execution-wise identical to
    /// [`TestOpKind::WriteDataDp`] but recorded as a control dependency.
    WriteCtrlDp {
        /// The globally unique value written.
        value: u64,
    },
    /// Atomic read-modify-write writing the given unique value (on x86 this
    /// also implies a full fence).
    ReadModifyWrite {
        /// The globally unique value written.
        value: u64,
    },
    /// Flush the accessed line from the local cache (`clflush`).
    CacheFlush,
    /// A constant delay of the given number of cycles (NOPs).
    Delay {
        /// Number of cycles to stall.
        cycles: u32,
    },
    /// A memory fence of the given flavour.  Not part of the default Table 3
    /// mix (RMWs already imply fences on x86) but available to litmus tests
    /// and relaxed-model campaigns.  The simulated core conservatively treats
    /// every flavour like a full fence — legal for any weaker fence — while
    /// the observer records the precise flavour for the checker.
    Fence {
        /// The fence flavour.
        kind: FenceKind,
    },
}

impl TestOpKind {
    /// Returns `true` if the operation reads memory.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            TestOpKind::Read | TestOpKind::ReadAddrDp | TestOpKind::ReadModifyWrite { .. }
        )
    }

    /// Returns `true` if the operation writes memory.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            TestOpKind::Write { .. }
                | TestOpKind::WriteDataDp { .. }
                | TestOpKind::WriteCtrlDp { .. }
                | TestOpKind::ReadModifyWrite { .. }
        )
    }

    /// Returns `true` if the operation accesses memory at all.
    pub fn is_memory_access(self) -> bool {
        self.is_read() || self.is_write() || matches!(self, TestOpKind::CacheFlush)
    }

    /// The value written by the operation, if it writes.
    pub fn written_value(self) -> Option<u64> {
        match self {
            TestOpKind::Write { value }
            | TestOpKind::WriteDataDp { value }
            | TestOpKind::WriteCtrlDp { value }
            | TestOpKind::ReadModifyWrite { value } => Some(value),
            _ => None,
        }
    }

    /// The dependency the operation carries on the previous read, if any.
    pub fn dep_kind(self) -> Option<DepKind> {
        match self {
            TestOpKind::ReadAddrDp => Some(DepKind::Addr),
            TestOpKind::WriteDataDp { .. } => Some(DepKind::Data),
            TestOpKind::WriteCtrlDp { .. } => Some(DepKind::Ctrl),
            _ => None,
        }
    }
}

/// One operation of a thread program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestOp {
    /// What the operation does.
    pub kind: TestOpKind,
    /// The (8-byte aligned) address accessed; ignored for `Delay` and `Fence`.
    pub addr: Address,
}

impl TestOp {
    /// Creates a read operation.
    pub fn read(addr: Address) -> Self {
        TestOp {
            kind: TestOpKind::Read,
            addr,
        }
    }

    /// Creates an address-dependent read operation.
    pub fn read_addr_dp(addr: Address) -> Self {
        TestOp {
            kind: TestOpKind::ReadAddrDp,
            addr,
        }
    }

    /// Creates a write operation with the given unique value.
    pub fn write(addr: Address, value: u64) -> Self {
        TestOp {
            kind: TestOpKind::Write { value },
            addr,
        }
    }

    /// Creates a data-dependent write operation.
    pub fn write_data_dp(addr: Address, value: u64) -> Self {
        TestOp {
            kind: TestOpKind::WriteDataDp { value },
            addr,
        }
    }

    /// Creates a control-dependent write operation.
    pub fn write_ctrl_dp(addr: Address, value: u64) -> Self {
        TestOp {
            kind: TestOpKind::WriteCtrlDp { value },
            addr,
        }
    }

    /// Creates an atomic read-modify-write operation.
    pub fn rmw(addr: Address, value: u64) -> Self {
        TestOp {
            kind: TestOpKind::ReadModifyWrite { value },
            addr,
        }
    }

    /// Creates a cache-flush operation.
    pub fn flush(addr: Address) -> Self {
        TestOp {
            kind: TestOpKind::CacheFlush,
            addr,
        }
    }

    /// Creates a delay operation.
    pub fn delay(cycles: u32) -> Self {
        TestOp {
            kind: TestOpKind::Delay { cycles },
            addr: Address(0),
        }
    }

    /// Creates a full-fence operation.
    pub fn fence() -> Self {
        Self::fence_of(FenceKind::Full)
    }

    /// Creates a fence operation of the given flavour.
    pub fn fence_of(kind: FenceKind) -> Self {
        TestOp {
            kind: TestOpKind::Fence { kind },
            addr: Address(0),
        }
    }

    /// The MCM event kinds this operation maps to (empty for delays/flushes).
    pub fn event_kinds(&self) -> Vec<EventKind> {
        match self.kind {
            TestOpKind::Read | TestOpKind::ReadAddrDp => vec![EventKind::Read],
            TestOpKind::Write { .. }
            | TestOpKind::WriteDataDp { .. }
            | TestOpKind::WriteCtrlDp { .. } => vec![EventKind::Write],
            TestOpKind::ReadModifyWrite { .. } => vec![EventKind::RmwRead, EventKind::RmwWrite],
            TestOpKind::Fence { kind } => vec![EventKind::Fence(kind)],
            TestOpKind::CacheFlush | TestOpKind::Delay { .. } => vec![],
        }
    }
}

impl fmt::Display for TestOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TestOpKind::Read => write!(f, "R {}", self.addr),
            TestOpKind::ReadAddrDp => write!(f, "Rdep {}", self.addr),
            TestOpKind::Write { value } => write!(f, "W {} = {}", self.addr, value),
            TestOpKind::WriteDataDp { value } => write!(f, "Wdata {} = {}", self.addr, value),
            TestOpKind::WriteCtrlDp { value } => write!(f, "Wctrl {} = {}", self.addr, value),
            TestOpKind::ReadModifyWrite { value } => write!(f, "RMW {} = {}", self.addr, value),
            TestOpKind::CacheFlush => write!(f, "FLUSH {}", self.addr),
            TestOpKind::Delay { cycles } => write!(f, "DELAY {cycles}"),
            TestOpKind::Fence { kind } => write!(f, "FENCE[{kind}]"),
        }
    }
}

/// The program-ordered operation sequence of one thread.
pub type ThreadProgram = Vec<TestOp>;

/// A whole multi-threaded test program, indexed by core id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestProgram {
    threads: Vec<ThreadProgram>,
}

impl TestProgram {
    /// Creates a program from per-thread operation sequences.
    pub fn new(threads: Vec<ThreadProgram>) -> Self {
        TestProgram { threads }
    }

    /// Number of threads (must not exceed the simulated core count).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The operations of thread `t`.
    pub fn thread(&self, t: usize) -> &[TestOp] {
        &self.threads[t]
    }

    /// All thread programs.
    pub fn threads(&self) -> &[ThreadProgram] {
        &self.threads
    }

    /// Total number of operations across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// All distinct (8-byte) addresses accessed by memory operations.
    pub fn addresses(&self) -> Vec<Address> {
        let mut addrs: Vec<Address> = self
            .threads
            .iter()
            .flatten()
            .filter(|op| op.kind.is_memory_access())
            .map(|op| op.addr)
            .collect();
        addrs.sort();
        addrs.dedup();
        addrs
    }

    /// Verifies that every written value is unique and non-zero.
    ///
    /// The observer relies on this to map read values back to producing
    /// writes; zero is reserved for the initial value.
    pub fn written_values_unique(&self) -> bool {
        let mut values: Vec<u64> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|op| op.kind.written_value())
            .collect();
        if values.contains(&0) {
            return false;
        }
        let before = values.len();
        values.sort_unstable();
        values.dedup();
        values.len() == before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_predicates() {
        assert!(TestOpKind::Read.is_read());
        assert!(!TestOpKind::Read.is_write());
        assert!(TestOpKind::Write { value: 1 }.is_write());
        assert!(TestOpKind::ReadModifyWrite { value: 2 }.is_read());
        assert!(TestOpKind::ReadModifyWrite { value: 2 }.is_write());
        assert!(TestOpKind::CacheFlush.is_memory_access());
        assert!(!TestOpKind::Delay { cycles: 5 }.is_memory_access());
        assert_eq!(TestOpKind::Write { value: 3 }.written_value(), Some(3));
        assert_eq!(TestOpKind::Read.written_value(), None);
        assert!(TestOpKind::WriteDataDp { value: 4 }.is_write());
        assert!(TestOpKind::WriteCtrlDp { value: 5 }.is_write());
        assert_eq!(
            TestOpKind::WriteDataDp { value: 4 }.written_value(),
            Some(4)
        );
        assert_eq!(TestOpKind::ReadAddrDp.dep_kind(), Some(DepKind::Addr));
        assert_eq!(
            TestOpKind::WriteDataDp { value: 4 }.dep_kind(),
            Some(DepKind::Data)
        );
        assert_eq!(
            TestOpKind::WriteCtrlDp { value: 5 }.dep_kind(),
            Some(DepKind::Ctrl)
        );
        assert_eq!(TestOpKind::Write { value: 3 }.dep_kind(), None);
    }

    #[test]
    fn fence_flavours_map_to_event_kinds() {
        for kind in FenceKind::ALL {
            assert_eq!(
                TestOp::fence_of(kind).event_kinds(),
                vec![EventKind::Fence(kind)]
            );
        }
        assert_eq!(
            TestOp::write_data_dp(Address(8), 1).event_kinds(),
            vec![EventKind::Write]
        );
        assert_eq!(
            TestOp::write_ctrl_dp(Address(8), 2).event_kinds(),
            vec![EventKind::Write]
        );
    }

    #[test]
    fn event_kind_mapping() {
        assert_eq!(
            TestOp::read(Address(8)).event_kinds(),
            vec![EventKind::Read]
        );
        assert_eq!(
            TestOp::rmw(Address(8), 1).event_kinds(),
            vec![EventKind::RmwRead, EventKind::RmwWrite]
        );
        assert!(TestOp::delay(3).event_kinds().is_empty());
        assert!(TestOp::flush(Address(8)).event_kinds().is_empty());
    }

    #[test]
    fn program_accessors() {
        let prog = TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x100), 1),
                TestOp::read(Address(0x200)),
            ],
            vec![
                TestOp::write(Address(0x200), 2),
                TestOp::read(Address(0x100)),
            ],
        ]);
        assert_eq!(prog.num_threads(), 2);
        assert_eq!(prog.total_ops(), 4);
        assert_eq!(prog.thread(0).len(), 2);
        assert_eq!(prog.addresses(), vec![Address(0x100), Address(0x200)]);
        assert!(prog.written_values_unique());
    }

    #[test]
    fn duplicate_or_zero_values_rejected() {
        let dup = TestProgram::new(vec![vec![
            TestOp::write(Address(0x100), 1),
            TestOp::write(Address(0x200), 1),
        ]]);
        assert!(!dup.written_values_unique());
        let zero = TestProgram::new(vec![vec![TestOp::write(Address(0x100), 0)]]);
        assert!(!zero.written_values_unique());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TestOp::read(Address(0x8))), "R 0x8");
        assert_eq!(format!("{}", TestOp::write(Address(0x8), 5)), "W 0x8 = 5");
        assert_eq!(format!("{}", TestOp::fence()), "FENCE[mfence]");
        assert_eq!(
            format!("{}", TestOp::fence_of(FenceKind::LightweightSync)),
            "FENCE[lwsync]"
        );
    }
}
