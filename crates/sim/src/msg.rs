//! Coherence protocol messages exchanged over the on-chip network.
//!
//! Messages are grouped into three virtual networks (requests, forwards,
//! responses) as in Ruby/GARNET.  Delivery is FIFO per (source, destination,
//! virtual network) channel but *not* ordered across virtual networks, which
//! is what makes races such as an invalidation overtaking a data response
//! (the `IS_I` case) possible.

use crate::types::{LineAddr, LineData, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Virtual network classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VirtualNetwork {
    /// L1 → L2 requests (GetS/GetX/PutX) and L2 → memory requests.
    Request,
    /// L2 → L1 forwards and invalidations.
    Forward,
    /// Data and acknowledgement responses.
    Response,
}

/// Timestamp metadata carried by TSO-CC data and writeback messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsInfo {
    /// Core id of the last writer of the line.
    pub writer: u32,
    /// The writer's (group) timestamp at the time of the write.
    pub ts: u64,
    /// The writer's epoch id (incremented on every timestamp reset).
    pub epoch: u64,
}

/// The payload of a protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MsgPayload {
    // ---- Requests (L1 -> L2) ----
    /// Read request (shared permission).
    GetS {
        /// The requested line.
        line: LineAddr,
    },
    /// Write request (exclusive permission).
    GetX {
        /// The requested line.
        line: LineAddr,
    },
    /// Voluntary writeback of an owned (E/M) line.
    PutX {
        /// The written-back line.
        line: LineAddr,
        /// Current line data.
        data: LineData,
        /// Whether the line was modified relative to the L2/memory copy.
        dirty: bool,
        /// TSO-CC: last-writer timestamp metadata.
        ts: Option<TsInfo>,
    },

    // ---- Forwards (L2 -> L1) ----
    /// Invalidate a shared copy; acknowledge to the L2.
    Inv {
        /// The line to invalidate.
        line: LineAddr,
    },
    /// The owner must provide data (to the L2) and downgrade to Shared.
    FwdGetS {
        /// The forwarded line.
        line: LineAddr,
    },
    /// The owner must provide data (to the L2) and invalidate.
    FwdGetX {
        /// The forwarded line.
        line: LineAddr,
    },
    /// The L2 is evicting the line; the owner must provide data and invalidate.
    Recall {
        /// The recalled line.
        line: LineAddr,
    },
    /// TSO-CC: the owner must provide data and downgrade to Shared (reads of
    /// an exclusively owned line).
    Downgrade {
        /// The downgraded line.
        line: LineAddr,
    },

    // ---- Responses ----
    /// Shared data to an L1.
    DataS {
        /// The line the data belongs to.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// TSO-CC timestamp metadata.
        ts: Option<TsInfo>,
    },
    /// Exclusive (clean) data to an L1 responding to a GetS when no other
    /// sharers exist.
    DataE {
        /// The line the data belongs to.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// TSO-CC timestamp metadata.
        ts: Option<TsInfo>,
    },
    /// Exclusive data to an L1 responding to a GetX (all invalidations done).
    DataX {
        /// The line the data belongs to.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// TSO-CC timestamp metadata.
        ts: Option<TsInfo>,
    },
    /// Data written back from an owner L1 to the L2 in response to a forward,
    /// recall or downgrade.
    WbData {
        /// The line being written back.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Whether the owner had modified the line.
        dirty: bool,
        /// TSO-CC timestamp metadata.
        ts: Option<TsInfo>,
    },
    /// Invalidation acknowledgement from an L1 to the L2.
    InvAck {
        /// The acknowledged line.
        line: LineAddr,
    },
    /// The L2 accepted a PutX.
    WbAck {
        /// The acknowledged line.
        line: LineAddr,
    },
    /// The L2 received a PutX from a core that is no longer the owner (the
    /// PUTX race); the L1 should simply drop its copy.
    WbStale {
        /// The line whose writeback was stale.
        line: LineAddr,
    },

    // ---- Memory controller ----
    /// L2 → memory read request.
    MemRead {
        /// The requested line.
        line: LineAddr,
    },
    /// L2 → memory writeback.
    MemWrite {
        /// The written line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
    },
    /// Memory → L2 data response.
    MemData {
        /// The line the data belongs to.
        line: LineAddr,
        /// Line contents.
        data: LineData,
    },
}

impl MsgPayload {
    /// The line address the message concerns.
    pub fn line(&self) -> LineAddr {
        match self {
            MsgPayload::GetS { line }
            | MsgPayload::GetX { line }
            | MsgPayload::PutX { line, .. }
            | MsgPayload::Inv { line }
            | MsgPayload::FwdGetS { line }
            | MsgPayload::FwdGetX { line }
            | MsgPayload::Recall { line }
            | MsgPayload::Downgrade { line }
            | MsgPayload::DataS { line, .. }
            | MsgPayload::DataE { line, .. }
            | MsgPayload::DataX { line, .. }
            | MsgPayload::WbData { line, .. }
            | MsgPayload::InvAck { line }
            | MsgPayload::WbAck { line }
            | MsgPayload::WbStale { line }
            | MsgPayload::MemRead { line }
            | MsgPayload::MemWrite { line, .. }
            | MsgPayload::MemData { line, .. } => *line,
        }
    }

    /// The virtual network this payload travels on.
    pub fn vnet(&self) -> VirtualNetwork {
        match self {
            MsgPayload::GetS { .. }
            | MsgPayload::GetX { .. }
            | MsgPayload::PutX { .. }
            | MsgPayload::MemRead { .. }
            | MsgPayload::MemWrite { .. } => VirtualNetwork::Request,
            MsgPayload::Inv { .. }
            | MsgPayload::FwdGetS { .. }
            | MsgPayload::FwdGetX { .. }
            | MsgPayload::Recall { .. }
            | MsgPayload::Downgrade { .. } => VirtualNetwork::Forward,
            MsgPayload::DataS { .. }
            | MsgPayload::DataE { .. }
            | MsgPayload::DataX { .. }
            | MsgPayload::WbData { .. }
            | MsgPayload::InvAck { .. }
            | MsgPayload::WbAck { .. }
            | MsgPayload::WbStale { .. }
            | MsgPayload::MemData { .. } => VirtualNetwork::Response,
        }
    }

    /// A short static name used in coverage transitions and error reports.
    pub fn event_name(&self) -> &'static str {
        match self {
            MsgPayload::GetS { .. } => "GetS",
            MsgPayload::GetX { .. } => "GetX",
            MsgPayload::PutX { .. } => "PutX",
            MsgPayload::Inv { .. } => "Inv",
            MsgPayload::FwdGetS { .. } => "FwdGetS",
            MsgPayload::FwdGetX { .. } => "FwdGetX",
            MsgPayload::Recall { .. } => "Recall",
            MsgPayload::Downgrade { .. } => "Downgrade",
            MsgPayload::DataS { .. } => "DataS",
            MsgPayload::DataE { .. } => "DataE",
            MsgPayload::DataX { .. } => "DataX",
            MsgPayload::WbData { .. } => "WbData",
            MsgPayload::InvAck { .. } => "InvAck",
            MsgPayload::WbAck { .. } => "WbAck",
            MsgPayload::WbStale { .. } => "WbStale",
            MsgPayload::MemRead { .. } => "MemRead",
            MsgPayload::MemWrite { .. } => "MemWrite",
            MsgPayload::MemData { .. } => "MemData",
        }
    }
}

/// A message in flight between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Msg {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The protocol payload.
    pub payload: MsgPayload,
}

impl Msg {
    /// Creates a message.
    pub fn new(src: NodeId, dst: NodeId, payload: MsgPayload) -> Self {
        Msg { src, dst, payload }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}: {} {}",
            self.src,
            self.dst,
            self.payload.event_name(),
            self.payload.line()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_line_and_vnet() {
        let p = MsgPayload::GetS {
            line: LineAddr(0x40),
        };
        assert_eq!(p.line(), LineAddr(0x40));
        assert_eq!(p.vnet(), VirtualNetwork::Request);
        assert_eq!(p.event_name(), "GetS");

        let p = MsgPayload::Inv {
            line: LineAddr(0x80),
        };
        assert_eq!(p.vnet(), VirtualNetwork::Forward);

        let p = MsgPayload::DataS {
            line: LineAddr(0xc0),
            data: LineData::zeroed(64),
            ts: None,
        };
        assert_eq!(p.vnet(), VirtualNetwork::Response);
    }

    #[test]
    fn all_event_names_distinct() {
        let line = LineAddr(0);
        let data = LineData::zeroed(64);
        let payloads = vec![
            MsgPayload::GetS { line },
            MsgPayload::GetX { line },
            MsgPayload::PutX {
                line,
                data: data.clone(),
                dirty: false,
                ts: None,
            },
            MsgPayload::Inv { line },
            MsgPayload::FwdGetS { line },
            MsgPayload::FwdGetX { line },
            MsgPayload::Recall { line },
            MsgPayload::Downgrade { line },
            MsgPayload::DataS {
                line,
                data: data.clone(),
                ts: None,
            },
            MsgPayload::DataE {
                line,
                data: data.clone(),
                ts: None,
            },
            MsgPayload::DataX {
                line,
                data: data.clone(),
                ts: None,
            },
            MsgPayload::WbData {
                line,
                data: data.clone(),
                dirty: true,
                ts: None,
            },
            MsgPayload::InvAck { line },
            MsgPayload::WbAck { line },
            MsgPayload::WbStale { line },
            MsgPayload::MemRead { line },
            MsgPayload::MemWrite { line, data },
            MsgPayload::MemData {
                line,
                data: LineData::zeroed(64),
            },
        ];
        let mut names: Vec<&str> = payloads.iter().map(|p| p.event_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn msg_display() {
        let m = Msg::new(
            NodeId(0),
            NodeId(9),
            MsgPayload::GetX {
                line: LineAddr(0x100),
            },
        );
        let s = format!("{m}");
        assert!(s.contains("n0"));
        assert!(s.contains("n9"));
        assert!(s.contains("GetX"));
    }
}
