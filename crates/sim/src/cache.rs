//! A generic set-associative cache array with LRU replacement.
//!
//! Both protocols' L1 and L2 controllers store their per-line state and data
//! in a [`CacheArray`]; the array only manages placement (set indexing,
//! associativity, LRU victims) and leaves all coherence semantics to the
//! controller.

use crate::types::LineAddr;
use std::collections::BTreeMap;
use std::fmt;

/// One resident cache line: the protocol-specific payload plus LRU bookkeeping.
#[derive(Debug, Clone)]
struct Entry<L> {
    addr: LineAddr,
    last_use: u64,
    line: L,
}

/// A set-associative cache array with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheArray<L> {
    sets: Vec<Vec<Entry<L>>>,
    /// Keyed lookup index: resident address → way position within its set.
    /// Kept in sync by `insert`/`remove`/`drain_all` (a `swap_remove` moves
    /// the displaced entry's position here), so `get`/`contains` avoid
    /// scanning the set.  A `BTreeMap` keeps iteration order deterministic.
    index: BTreeMap<LineAddr, usize>,
    ways: usize,
    line_bytes: u64,
    use_counter: u64,
}

impl<L> CacheArray<L> {
    /// Creates an array with `sets` sets of `ways` ways and the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `sets`, `ways` or `line_bytes` is zero.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && ways > 0 && line_bytes > 0);
        CacheArray {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            index: BTreeMap::new(),
            ways,
            line_bytes,
            use_counter: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The set index a line address maps to.
    pub fn set_index(&self, addr: LineAddr) -> usize {
        ((addr.0 / self.line_bytes) % self.sets.len() as u64) as usize
    }

    /// Returns a reference to a resident line.
    pub fn get(&self, addr: LineAddr) -> Option<&L> {
        let pos = *self.index.get(&addr)?;
        self.sets[self.set_index(addr)].get(pos).map(|e| &e.line)
    }

    /// Returns a mutable reference to a resident line and touches its LRU state.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut L> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let pos = *self.index.get(&addr)?;
        let idx = self.set_index(addr);
        self.sets[idx].get_mut(pos).map(|e| {
            e.last_use = counter;
            &mut e.line
        })
    }

    /// Returns `true` if the line is resident.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Returns `true` if inserting `addr` would require evicting another line.
    pub fn needs_eviction(&self, addr: LineAddr) -> bool {
        if self.contains(addr) {
            return false;
        }
        self.sets[self.set_index(addr)].len() >= self.ways
    }

    /// The LRU victim of `addr`'s set (the line that should be evicted to make
    /// room for `addr`), if the set is full.
    pub fn victim_for(&self, addr: LineAddr) -> Option<LineAddr> {
        if !self.needs_eviction(addr) {
            return None;
        }
        self.sets[self.set_index(addr)]
            .iter()
            .min_by_key(|e| e.last_use)
            .map(|e| e.addr)
    }

    /// Inserts a line.
    ///
    /// # Panics
    ///
    /// Panics if the set is already full (the controller must evict the victim
    /// first) or if the line is already resident.
    pub fn insert(&mut self, addr: LineAddr, line: L) {
        assert!(!self.contains(addr), "line {addr} already resident");
        self.use_counter += 1;
        let counter = self.use_counter;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        assert!(set.len() < self.ways, "set for {addr} is full; evict first");
        self.index.insert(addr, set.len());
        set.push(Entry {
            addr,
            last_use: counter,
            line,
        });
    }

    /// Removes a line and returns its payload.
    pub fn remove(&mut self, addr: LineAddr) -> Option<L> {
        let pos = self.index.remove(&addr)?;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        let entry = set.swap_remove(pos);
        if let Some(moved) = set.get(pos) {
            self.index.insert(moved.addr, pos);
        }
        Some(entry.line)
    }

    /// Removes every resident line, returning them (used by the host-assisted
    /// reset between tests).
    pub fn drain_all(&mut self) -> Vec<(LineAddr, L)> {
        self.index.clear();
        let mut out = Vec::new();
        for set in &mut self.sets {
            for e in set.drain(..) {
                out.push((e.addr, e.line));
            }
        }
        out
    }

    /// Iterates over resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &L)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.addr, &e.line)))
    }

    /// Iterates mutably over resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut L)> {
        self.sets
            .iter_mut()
            .flat_map(|s| s.iter_mut().map(|e| (e.addr, &mut e.line)))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl<L> fmt::Display for CacheArray<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache({} sets x {} ways, {} resident)",
            self.sets.len(),
            self.ways,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n * 64)
    }

    #[test]
    fn insert_get_remove() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2, 64);
        assert!(c.is_empty());
        c.insert(line(1), 10);
        assert!(c.contains(line(1)));
        assert_eq!(c.get(line(1)), Some(&10));
        *c.get_mut(line(1)).unwrap() = 11;
        assert_eq!(c.get(line(1)), Some(&11));
        assert_eq!(c.remove(line(1)), Some(11));
        assert!(!c.contains(line(1)));
        assert_eq!(c.remove(line(1)), None);
    }

    #[test]
    fn set_indexing_is_modulo_sets() {
        let c: CacheArray<u32> = CacheArray::new(4, 2, 64);
        assert_eq!(c.set_index(line(0)), 0);
        assert_eq!(c.set_index(line(1)), 1);
        assert_eq!(c.set_index(line(4)), 0);
        assert_eq!(c.set_index(line(7)), 3);
    }

    #[test]
    fn eviction_needed_when_set_full() {
        let mut c: CacheArray<u32> = CacheArray::new(2, 2, 64);
        // Lines 0, 2, 4 all map to set 0.
        c.insert(line(0), 0);
        assert!(!c.needs_eviction(line(2)));
        c.insert(line(2), 2);
        assert!(c.needs_eviction(line(4)));
        assert!(
            !c.needs_eviction(line(0)),
            "resident line needs no eviction"
        );
        assert_eq!(c.victim_for(line(4)), Some(line(0)), "LRU is the victim");
        // Touching line 0 makes line 2 the LRU victim.
        c.get_mut(line(0));
        assert_eq!(c.victim_for(line(4)), Some(line(2)));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn inserting_into_full_set_panics() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 1, 64);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 2, 64);
        c.insert(line(0), 0);
        c.insert(line(0), 1);
    }

    #[test]
    fn drain_all_empties_the_cache() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2, 64);
        for i in 0..6 {
            c.insert(line(i), i as u32);
        }
        assert_eq!(c.len(), 6);
        let drained = c.drain_all();
        assert_eq!(drained.len(), 6);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2, 64);
        for i in 0..5 {
            c.insert(line(i), i as u32);
        }
        let mut seen: Vec<u64> = c.iter().map(|(a, _)| a.0 / 64).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for (_, v) in c.iter_mut() {
            *v += 100;
        }
        assert!(c.iter().all(|(_, &v)| v >= 100));
    }

    #[test]
    fn keyed_index_survives_swap_remove_churn() {
        // All lines map to set 0; removing a middle entry swap-moves the last
        // entry into its slot, and the index must follow it.
        let mut c: CacheArray<u32> = CacheArray::new(1, 4, 64);
        for i in 0..4 {
            c.insert(line(i), i as u32);
        }
        assert_eq!(c.remove(line(1)), Some(1));
        for i in [0u64, 2, 3] {
            assert_eq!(c.get(line(i)), Some(&(i as u32)), "line {i} after churn");
            assert_eq!(c.remove(line(i)), Some(i as u32));
        }
        assert!(c.is_empty());
        // Reinsertion after churn still round-trips.
        c.insert(line(5), 55);
        assert_eq!(c.get(line(5)), Some(&55));
        assert_eq!(c.get_mut(line(5)).copied(), Some(55));
    }

    #[test]
    fn display_reports_occupancy() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2, 64);
        c.insert(line(0), 0);
        assert!(format!("{c}").contains("1 resident"));
    }
}
