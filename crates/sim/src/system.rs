//! The full simulated system: cores, L1s, L2 banks, memory, network.
//!
//! [`System`] owns every component and advances them in lock step, one cycle
//! at a time.  One call to [`System::run_iteration`] executes a complete
//! [`TestProgram`] once (one iteration of a test-run in the paper's
//! terminology) and returns the observed [`CandidateExecution`], any protocol
//! errors, and whether the iteration hung.  The host-assisted reset between
//! iterations (paper Table 1, `reset_test_mem`) is implemented by
//! [`System::reset_test_state`]: caches and the network are cleared and the
//! test memory re-zeroed, while simulation-persistent state (RNG, coverage
//! counts, TSO-CC timestamps) is retained so consecutive executions of the
//! same test are perturbed differently (§5.1).

use crate::bugs::BugConfig;
use crate::config::{ProtocolKind, SystemConfig};
use crate::core::{cores_for_program, CoreModel};
use crate::coverage::{CoverageRecorder, Transition};
use crate::memory::MemoryController;
use crate::msg::Msg;
use crate::network::Network;
use crate::observer::ExecObserver;
use crate::program::TestProgram;
use crate::protocol::{mesi, tsocc, L1Controller, L2Controller, TickCtx};
use crate::types::{Cycle, LineAddr};
use mcversi_mcm::execution::CandidateExecution;
use mcversi_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Phase timer: the cycle-by-cycle simulation loop of one iteration.
static PHASE_SIMULATE: telemetry::Timer = telemetry::Timer::new("phase.simulate");
/// Phase timer: assembling the candidate execution from the observer.
static PHASE_OBSERVE: telemetry::Timer = telemetry::Timer::new("phase.observe");
/// Simulated cycles per iteration (distribution).
static ITERATION_CYCLES: telemetry::Histogram = telemetry::Histogram::new("sim.iteration.cycles");

/// A protocol-level error detected by the simulator's monitor (the analogue of
/// Ruby aborting on an invalid transition).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolError {
    /// Cycle at which the error was detected.
    pub cycle: Cycle,
    /// Which controller detected it (e.g. `"L2[3]"`).
    pub controller: String,
    /// The line involved.
    pub line: LineAddr,
    /// The state the controller was in.
    pub state: String,
    /// The event that had no legal transition (or `"deadlock"`).
    pub event: String,
}

impl ProtocolError {
    /// Creates an invalid-transition error.
    pub fn invalid_transition(
        cycle: Cycle,
        controller: String,
        line: LineAddr,
        state: &str,
        event: &str,
    ) -> Self {
        ProtocolError {
            cycle,
            controller,
            line,
            state: state.to_string(),
            event: event.to_string(),
        }
    }

    /// Creates a deadlock/hang error.
    pub fn deadlock(cycle: Cycle, detail: &str) -> Self {
        ProtocolError {
            cycle,
            controller: "system".to_string(),
            line: LineAddr(0),
            state: detail.to_string(),
            event: "deadlock".to_string(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} has no transition for {} in state {} (line {})",
            self.cycle, self.controller, self.event, self.state, self.line
        )
    }
}

impl std::error::Error for ProtocolError {}

/// The outcome of one test iteration.
#[derive(Debug)]
pub struct IterationOutcome {
    /// The recorded candidate execution (partial if the iteration hung).
    pub execution: CandidateExecution,
    /// Protocol errors detected during the iteration.
    pub protocol_errors: Vec<ProtocolError>,
    /// `true` if the iteration did not complete within the cycle budget.
    pub hung: bool,
    /// `true` if every memory operation completed and was observed.
    pub complete: bool,
    /// Number of cycles the iteration took.
    pub cycles: Cycle,
    /// Number of operations retired during the iteration.
    pub retired_ops: usize,
}

impl IterationOutcome {
    /// Returns `true` if the iteration surfaced any error the verification
    /// flow should treat as a caught bug *other than* an MCM violation (which
    /// only the checker can decide): an invalid protocol transition or a hang.
    pub fn has_hardware_fault(&self) -> bool {
        !self.protocol_errors.is_empty() || self.hung
    }
}

/// The full simulated system.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    bugs: BugConfig,
    l1s: Vec<Box<dyn L1Controller>>,
    l2s: Vec<Box<dyn L2Controller>>,
    memory: MemoryController,
    network: Network,
    coverage: CoverageRecorder,
    rng: StdRng,
    cycle: Cycle,
    total_instructions: u64,
    coverage_universe: Vec<Transition>,
    /// Observer cache: the static event set of a program is reused across
    /// the iterations of a test-run (see [`ExecObserver::reset`]).
    observer_cache: Option<(TestProgram, ExecObserver)>,
}

impl System {
    /// Builds a system with the given configuration, injected bugs and RNG
    /// seed.
    pub fn new(cfg: SystemConfig, bugs: BugConfig, seed: u64) -> Self {
        let l1s: Vec<Box<dyn L1Controller>> = (0..cfg.num_cores)
            .map(|c| match cfg.protocol {
                ProtocolKind::Mesi => Box::new(mesi::MesiL1::new(c, &cfg)) as Box<dyn L1Controller>,
                ProtocolKind::TsoCc => {
                    Box::new(tsocc::TsoCcL1::new(c, &cfg)) as Box<dyn L1Controller>
                }
            })
            .collect();
        let l2s: Vec<Box<dyn L2Controller>> = (0..cfg.l2_banks)
            .map(|b| match cfg.protocol {
                ProtocolKind::Mesi => Box::new(mesi::MesiL2::new(b, &cfg)) as Box<dyn L2Controller>,
                ProtocolKind::TsoCc => {
                    Box::new(tsocc::TsoCcL2::new(b, &cfg)) as Box<dyn L2Controller>
                }
            })
            .collect();
        let memory = MemoryController::new(&cfg);
        let coverage_universe = match cfg.protocol {
            ProtocolKind::Mesi => mesi::all_transitions(),
            ProtocolKind::TsoCc => tsocc::all_transitions(),
        };
        System {
            bugs,
            l1s,
            l2s,
            memory,
            network: Network::new(),
            coverage: CoverageRecorder::new(),
            rng: StdRng::seed_from_u64(seed),
            cycle: 0,
            total_instructions: 0,
            coverage_universe,
            observer_cache: None,
            cfg,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The injected bugs.
    pub fn bugs(&self) -> &BugConfig {
        &self.bugs
    }

    /// The coverage recorder (cumulative since system construction).
    pub fn coverage(&self) -> &CoverageRecorder {
        &self.coverage
    }

    /// Ends the current test-run for coverage purposes and returns the set of
    /// transitions it covered (the fitness signal).
    pub fn finish_coverage_run(&mut self) -> BTreeSet<Transition> {
        self.coverage.finish_run()
    }

    /// The coverage universe (all transitions defined by the active protocol).
    pub fn coverage_universe(&self) -> &[Transition] {
        &self.coverage_universe
    }

    /// The current global cycle count.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Total instructions (test operations) retired since construction.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Host-assisted reset between test executions: drop all cached lines and
    /// in-flight messages and zero the memory.  Coverage, the RNG and other
    /// simulation-persistent state are retained.
    pub fn reset_test_state(&mut self) {
        for l1 in &mut self.l1s {
            l1.hard_reset();
        }
        for l2 in &mut self.l2s {
            l2.hard_reset();
        }
        self.network.clear();
        self.memory.reset();
    }

    fn route(&mut self, msgs: Vec<Msg>) {
        for msg in msgs {
            self.network.send(msg, self.cycle, &self.cfg, &mut self.rng);
        }
    }

    fn dispatch_delivered(&mut self, delivered: Vec<Msg>) {
        for msg in delivered {
            let dst = msg.dst;
            if let Some(core) = self.cfg.l1_index(dst) {
                self.l1s[core].push_msg(msg);
            } else if let Some(bank) = self.cfg.l2_index(dst) {
                self.l2s[bank].push_msg(msg);
            } else if dst == self.cfg.node_of_memory() {
                self.memory.push_msg(msg);
            } else {
                unreachable!("message routed to unknown node {dst}");
            }
        }
    }

    /// Runs one complete iteration of `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program has more threads than the system has cores, or if
    /// its written values are not unique and non-zero.
    pub fn run_iteration(&mut self, program: &TestProgram) -> IterationOutcome {
        assert!(
            program.num_threads() <= self.cfg.num_cores,
            "program has {} threads but the system has {} cores",
            program.num_threads(),
            self.cfg.num_cores
        );
        assert!(
            program.written_values_unique(),
            "test programs must use unique non-zero write values"
        );

        self.reset_test_state();

        let mut cores: Vec<CoreModel> = cores_for_program(program, &self.cfg);
        // Reuse the cached observer when the same program runs again (the
        // common case: every iteration of a test-run): its static event set,
        // maps and dependency edges are identical, so only the observation
        // buffers need clearing.  The cached program copy is kept alongside
        // so reuse costs one comparison, not a clone.
        let (cached_program, mut observer) = match self.observer_cache.take() {
            Some((cached_program, mut cached)) if &cached_program == program => {
                cached.reset();
                (cached_program, cached)
            }
            _ => (program.clone(), ExecObserver::new(program)),
        };
        let mut errors: Vec<ProtocolError> = Vec::new();
        let mut responses_per_core: Vec<Vec<crate::protocol::CoreResponse>> =
            vec![Vec::new(); self.cfg.num_cores];
        let mut notices_per_core: Vec<Vec<LineAddr>> = vec![Vec::new(); self.cfg.num_cores];
        let start_cycle = self.cycle;
        let mut retired_ops = 0usize;
        let mut hung = false;

        let simulate_span = PHASE_SIMULATE.span();
        loop {
            if cores.iter().all(|c| c.is_finished()) {
                break;
            }
            if self.cycle - start_cycle > self.cfg.max_cycles_per_iteration {
                errors.push(ProtocolError::deadlock(
                    self.cycle,
                    "iteration exceeded its cycle budget",
                ));
                hung = true;
                break;
            }
            if !errors.is_empty() {
                // An invalid transition was detected: abort the iteration, as
                // Ruby would abort the simulation.
                break;
            }
            self.cycle += 1;

            // 1. Network delivery.
            let delivered = self.network.deliver_due(self.cycle);
            self.dispatch_delivered(delivered);

            // 2. Memory controller.
            let mem_out = self.memory.tick(self.cycle, &self.cfg, &mut self.rng);
            self.route(mem_out);

            // 3. L2 banks.
            for bank in 0..self.l2s.len() {
                let mut ctx = TickCtx {
                    cycle: self.cycle,
                    cfg: &self.cfg,
                    bugs: &self.bugs,
                    coverage: &mut self.coverage,
                    rng: &mut self.rng,
                    errors: &mut errors,
                };
                let out = self.l2s[bank].tick(&mut ctx);
                self.route(out);
            }

            // 4. L1 caches.
            for core in 0..self.l1s.len() {
                let mut ctx = TickCtx {
                    cycle: self.cycle,
                    cfg: &self.cfg,
                    bugs: &self.bugs,
                    coverage: &mut self.coverage,
                    rng: &mut self.rng,
                    errors: &mut errors,
                };
                let out = self.l1s[core].tick(&mut ctx);
                self.route(out.to_network);
                responses_per_core[core].extend(out.responses);
                notices_per_core[core].extend(out.lq_notices);
            }

            // 5. Cores.
            for (core_idx, core) in cores.iter_mut().enumerate() {
                let responses = std::mem::take(&mut responses_per_core[core_idx]);
                let notices = std::mem::take(&mut notices_per_core[core_idx]);
                let out = core.tick(self.cycle, &self.bugs, &responses, &notices, &mut self.rng);
                for req in out.requests {
                    self.l1s[core_idx].push_core_request(req);
                }
                for obs in out.observed {
                    retired_ops += 1;
                    self.total_instructions += 1;
                    observer.record(core_idx, obs);
                }
            }
        }

        drop(simulate_span);
        ITERATION_CYCLES.record(self.cycle - start_cycle);

        let observe_span = PHASE_OBSERVE.span();
        let complete = observer.is_complete() && !hung && errors.is_empty();
        let execution = observer.finish();
        drop(observe_span);
        self.observer_cache = Some((cached_program, observer));
        IterationOutcome {
            execution,
            protocol_errors: errors,
            hung,
            complete,
            cycles: self.cycle - start_cycle,
            retired_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::Bug;
    use crate::program::TestOp;
    use mcversi_mcm::checker::Checker;
    use mcversi_mcm::model::tso::Tso;
    use mcversi_mcm::Address;

    fn mp_program() -> TestProgram {
        TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x1000), 1),
                TestOp::write(Address(0x2000), 2),
            ],
            vec![TestOp::read(Address(0x2000)), TestOp::read(Address(0x1000))],
        ])
    }

    #[test]
    fn single_thread_program_runs_to_completion_mesi() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 1);
        let program = TestProgram::new(vec![vec![
            TestOp::write(Address(0x1000), 1),
            TestOp::read(Address(0x1000)),
            TestOp::write(Address(0x1008), 2),
            TestOp::read(Address(0x1008)),
        ]]);
        let outcome = sys.run_iteration(&program);
        assert!(outcome.complete, "outcome: {outcome:?}");
        assert!(!outcome.hung);
        assert!(outcome.protocol_errors.is_empty());
        assert_eq!(outcome.retired_ops, 4);
        assert!(outcome.execution.validate().is_ok());
        assert!(Checker::new(&Tso).check(&outcome.execution).is_valid());
        assert!(sys.coverage().distinct_covered() > 0);
    }

    #[test]
    fn single_thread_program_runs_to_completion_tsocc() {
        let cfg = SystemConfig::small(ProtocolKind::TsoCc);
        let mut sys = System::new(cfg, BugConfig::none(), 1);
        let program = TestProgram::new(vec![vec![
            TestOp::write(Address(0x1000), 1),
            TestOp::read(Address(0x1000)),
            TestOp::rmw(Address(0x1040), 3),
            TestOp::read(Address(0x1040)),
        ]]);
        let outcome = sys.run_iteration(&program);
        assert!(outcome.complete, "outcome: {outcome:?}");
        assert!(outcome.protocol_errors.is_empty());
        assert!(Checker::new(&Tso).check(&outcome.execution).is_valid());
    }

    #[test]
    fn correct_mesi_system_satisfies_tso_on_message_passing() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 7);
        let checker = Checker::new(&Tso);
        for _ in 0..20 {
            let outcome = sys.run_iteration(&mp_program());
            assert!(outcome.complete);
            assert!(outcome.protocol_errors.is_empty());
            assert!(
                checker.check(&outcome.execution).is_valid(),
                "correct MESI produced a TSO violation"
            );
        }
    }

    #[test]
    fn correct_tsocc_system_satisfies_tso_on_message_passing() {
        let cfg = SystemConfig::small(ProtocolKind::TsoCc);
        let mut sys = System::new(cfg, BugConfig::none(), 7);
        let checker = Checker::new(&Tso);
        for _ in 0..20 {
            let outcome = sys.run_iteration(&mp_program());
            assert!(outcome.complete);
            assert!(outcome.protocol_errors.is_empty());
            assert!(
                checker.check(&outcome.execution).is_valid(),
                "correct TSO-CC produced a TSO violation"
            );
        }
    }

    #[test]
    fn sq_no_fifo_bug_eventually_produces_a_violation() {
        // Writer publishes data then flag out of order; reader spins-ish.
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::single(Bug::SqNoFifo), 3);
        let checker = Checker::new(&Tso);
        let program = TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x1000), 1),
                TestOp::write(Address(0x2000), 2),
                TestOp::write(Address(0x3000), 3),
                TestOp::write(Address(0x4000), 4),
            ],
            vec![
                TestOp::read(Address(0x4000)),
                TestOp::read(Address(0x3000)),
                TestOp::read(Address(0x2000)),
                TestOp::read(Address(0x1000)),
            ],
        ]);
        let mut found = false;
        for _ in 0..200 {
            let outcome = sys.run_iteration(&program);
            if !outcome.complete {
                continue;
            }
            if checker.check(&outcome.execution).is_violation() {
                found = true;
                break;
            }
        }
        assert!(found, "SQ+no-FIFO never produced an observable violation");
    }

    #[test]
    fn relaxed_core_satisfies_the_relaxed_models_and_breaks_tso() {
        use crate::config::CoreStrength;
        use mcversi_mcm::ModelKind;
        let mut cfg = SystemConfig::small(ProtocolKind::Mesi);
        cfg.core_strength = CoreStrength::Relaxed;
        let mut sys = System::new(cfg, BugConfig::none(), 11);
        let mut tso_violations = 0usize;
        // Overlap several MP instances so the weak timing window is hit.
        let program = TestProgram::new(vec![
            vec![
                TestOp::write(Address(0x1000), 1),
                TestOp::write(Address(0x2000), 2),
                TestOp::write(Address(0x3000), 3),
                TestOp::write(Address(0x4000), 4),
            ],
            vec![
                TestOp::read(Address(0x4000)),
                TestOp::read(Address(0x3000)),
                TestOp::read(Address(0x2000)),
                TestOp::read(Address(0x1000)),
            ],
        ]);
        for _ in 0..60 {
            let outcome = sys.run_iteration(&program);
            assert!(outcome.complete, "outcome: {outcome:?}");
            for model in [ModelKind::Armish, ModelKind::Powerish, ModelKind::Rmo] {
                assert!(
                    Checker::new(model.instance())
                        .check(&outcome.execution)
                        .is_valid(),
                    "correct relaxed core violated {model}"
                );
            }
            if Checker::new(&Tso).check(&outcome.execution).is_violation() {
                tso_violations += 1;
            }
        }
        assert!(
            tso_violations > 0,
            "the relaxed core never exhibited a TSO-forbidden reordering"
        );
    }

    #[test]
    fn reset_between_iterations_restores_initial_values() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 5);
        let writer = TestProgram::new(vec![vec![TestOp::write(Address(0x1000), 9)]]);
        let outcome = sys.run_iteration(&writer);
        assert!(outcome.complete);
        // A later iteration that only reads must observe the initial value.
        let reader = TestProgram::new(vec![vec![TestOp::read(Address(0x1000))]]);
        let outcome = sys.run_iteration(&reader);
        assert!(outcome.complete);
        let read_event = outcome
            .execution
            .events()
            .iter()
            .find(|e| e.is_read())
            .expect("read event exists");
        assert_eq!(read_event.value.0, 0, "reset must restore initial values");
    }

    #[test]
    fn coverage_accumulates_across_runs_and_run_set_resets() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 5);
        sys.run_iteration(&mp_program());
        let run1 = sys.finish_coverage_run();
        assert!(!run1.is_empty());
        let cumulative_after_run1 = sys.coverage().distinct_covered();
        sys.run_iteration(&mp_program());
        let run2 = sys.finish_coverage_run();
        assert!(!run2.is_empty());
        assert!(sys.coverage().distinct_covered() >= cumulative_after_run1);
        let universe = sys.coverage_universe().to_vec();
        let frac = sys.coverage().total_coverage(&universe);
        assert!(frac > 0.0 && frac <= 1.0);
    }

    #[test]
    fn stale_memory_responses_do_not_leak_across_resets() {
        // A fetch can still be in flight at the memory controller when an
        // iteration finishes; the host reset must drop it, otherwise the next
        // iteration's L2 receives a MemData with no matching transaction.
        // Flush-heavy single-op-per-core programs maximise that window.
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let mut sys = System::new(cfg, BugConfig::none(), 123);
        let program = TestProgram::new(vec![
            vec![
                TestOp::read(Address(0x10_0000)),
                TestOp::flush(Address(0x10_0000)),
                TestOp::read(Address(0x12_0000)),
            ],
            vec![
                TestOp::write(Address(0x11_0000), 1),
                TestOp::read(Address(0x13_0000)),
            ],
        ]);
        for _ in 0..50 {
            let outcome = sys.run_iteration(&program);
            assert!(
                outcome.protocol_errors.is_empty(),
                "spurious protocol error: {:?}",
                outcome.protocol_errors
            );
            assert!(outcome.complete);
        }
    }

    #[test]
    fn too_many_threads_is_rejected() {
        let cfg = SystemConfig::small(ProtocolKind::Mesi);
        let threads = cfg.num_cores + 1;
        let mut sys = System::new(cfg, BugConfig::none(), 5);
        let program = TestProgram::new(
            (0..threads)
                .map(|i| vec![TestOp::write(Address(0x1000 + i as u64 * 8), i as u64 + 1)])
                .collect(),
        );
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.run_iteration(&program)));
        assert!(result.is_err());
    }
}
