//! Lightweight telemetry for the McVerSi pipeline: counters, log2-bucket
//! histograms, and scoped span timers behind one facade.
//!
//! Design constraints, in order:
//!
//! 1. **Metrics never change behaviour.** The global enabled flag (see
//!    [`enable`]) gates only the *recording cost*; no simulation or campaign
//!    decision may read it. Campaign results with metrics off are therefore
//!    bit-identical to results with metrics on (a differential test in
//!    `mcversi-core` pins this).
//! 2. **The disabled path is one relaxed atomic load.** Every record call
//!    checks [`enabled`] first and returns immediately when it is off; a
//!    criterion bench (`benches/telemetry.rs` in `mcversi-bench`) pins the
//!    overhead.
//! 3. **Storage is thread-local.** Each campaign sample runs entirely on one
//!    worker thread, so a thread-local store gives exact per-sample
//!    attribution for free — and concurrently running `cargo test` threads
//!    cannot bleed counts into each other. [`reset_local`] /
//!    [`local_snapshot`] scope a measurement region on the current thread.
//!
//! Metrics are declared as `static` items with `const fn new`, so declaring
//! one is free; the slot in the thread-local store is claimed lazily on
//! first record via a double-checked global registry:
//!
//! ```
//! use mcversi_telemetry as telemetry;
//!
//! static CACHE_HITS: telemetry::Counter = telemetry::Counter::new("sim.l1.hit");
//! static RELATION_SIZE: telemetry::Histogram = telemetry::Histogram::new("mcm.relation.size");
//! static PHASE_SIMULATE: telemetry::Timer = telemetry::Timer::new("phase.simulate");
//!
//! telemetry::enable();
//! telemetry::reset_local();
//! {
//!     let _span = PHASE_SIMULATE.span(); // records elapsed ns on drop
//!     CACHE_HITS.incr();
//!     RELATION_SIZE.record(42);
//! }
//! let snapshot = telemetry::local_snapshot();
//! assert_eq!(snapshot.counters["sim.l1.hit"], 1);
//! ```
//!
//! A [`MetricsSnapshot`] is plain serializable data: `mcversi-core` streams
//! it through the sink fabric as a `CampaignEvent::Metrics` record and
//! aggregates it into `CampaignResult`; the `mcversi-report` binary renders
//! the per-phase / per-counter breakdown. Counters and histograms are
//! deterministic under a fixed seed; wall-clock [`Timer`]s are kept in a
//! separate map so determinism tests can compare the deterministic part
//! only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Enabled flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on, process-wide and permanently ("sticky on").
///
/// There is deliberately no way to turn recording off again: concurrently
/// running tests share this flag, and a test flipping it off mid-way through
/// another test's measured region would drop counts nondeterministically.
/// Recording on is always safe because metrics never influence behaviour —
/// only whether the thread-local stores are written to.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether metric recording is on. One relaxed atomic load — this is the
/// entire disabled-path cost of every record call.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Registry: &'static str names -> dense per-kind slot indices
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Kind {
    Counter,
    Histogram,
    Timer,
}

struct Registry {
    counters: Vec<&'static str>,
    histograms: Vec<&'static str>,
    timers: Vec<&'static str>,
}

impl Registry {
    fn names_mut(&mut self, kind: Kind) -> &mut Vec<&'static str> {
        match kind {
            Kind::Counter => &mut self.counters,
            Kind::Histogram => &mut self.histograms,
            Kind::Timer => &mut self.timers,
        }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    histograms: Vec::new(),
    timers: Vec::new(),
});

/// Resolves a metric's dense slot index, registering the name on first use.
///
/// `slot` holds `index + 1` once registered (0 means "not yet"), so the fast
/// path after the first record is a single acquire load.
fn resolve_slot(slot: &AtomicUsize, name: &'static str, kind: Kind) -> usize {
    let cached = slot.load(Ordering::Acquire);
    if cached != 0 {
        return cached - 1;
    }
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    // Double-check under the lock: another thread may have registered us.
    let cached = slot.load(Ordering::Acquire);
    if cached != 0 {
        return cached - 1;
    }
    let names = registry.names_mut(kind);
    let index = names.len();
    names.push(name);
    slot.store(index + 1, Ordering::Release);
    index
}

fn registered_names(kind: Kind) -> Vec<&'static str> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    registry.names_mut(kind).clone()
}

// ---------------------------------------------------------------------------
// Thread-local stores
// ---------------------------------------------------------------------------

/// Raw histogram state: log2 buckets. `buckets[0]` counts zero values,
/// `buckets[k]` (k >= 1) counts values with bit length k, i.e. the range
/// `[2^(k-1), 2^k)`.
#[derive(Clone)]
struct HistData {
    count: u64,
    sum: u64,
    buckets: [u64; 65],
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl HistData {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_of(value)] += 1;
    }
}

/// The log2 bucket index of a value: 0 for 0, otherwise the bit length.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

#[derive(Default)]
struct LocalStore {
    counters: Vec<u64>,
    histograms: Vec<HistData>,
    timers: Vec<HistData>,
}

thread_local! {
    static LOCAL: RefCell<LocalStore> = RefCell::new(LocalStore::default());
}

/// Clears all metric state recorded on the current thread.
///
/// Call at the start of a measurement region (e.g. the top of a campaign
/// sample); pair with [`local_snapshot`] at the end.
pub fn reset_local() {
    LOCAL.with(|local| {
        let mut store = local.borrow_mut();
        store.counters.clear();
        store.histograms.clear();
        store.timers.clear();
    });
}

/// Snapshots all metric state recorded on the current thread since the last
/// [`reset_local`].
pub fn local_snapshot() -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::default();
    let counter_names = registered_names(Kind::Counter);
    let histogram_names = registered_names(Kind::Histogram);
    let timer_names = registered_names(Kind::Timer);
    LOCAL.with(|local| {
        let store = local.borrow();
        for (index, &value) in store.counters.iter().enumerate() {
            if value == 0 {
                continue;
            }
            let name = counter_names.get(index).copied().unwrap_or("?");
            *snapshot.counters.entry(name.to_string()).or_insert(0) += value;
        }
        for (index, data) in store.histograms.iter().enumerate() {
            if data.count == 0 {
                continue;
            }
            let name = histogram_names.get(index).copied().unwrap_or("?");
            merge_hist(&mut snapshot.histograms, name, data);
        }
        for (index, data) in store.timers.iter().enumerate() {
            if data.count == 0 {
                continue;
            }
            let name = timer_names.get(index).copied().unwrap_or("?");
            merge_hist(&mut snapshot.timers, name, data);
        }
    });
    snapshot
}

fn merge_hist(map: &mut BTreeMap<String, HistogramSnapshot>, name: &str, data: &HistData) {
    let entry = map.entry(name.to_string()).or_default();
    entry.count += data.count;
    entry.sum = entry.sum.saturating_add(data.sum);
    for (bucket, &count) in data.buckets.iter().enumerate() {
        if count != 0 {
            *entry.buckets.entry(bucket as u8).or_insert(0) += count;
        }
    }
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing event count (thread-local storage).
///
/// Declare as a `static`; recording is a no-op while telemetry is disabled.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    slot: AtomicUsize,
}

impl Counter {
    /// Declares a counter. Free until first recorded to.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: AtomicUsize::new(0),
        }
    }

    /// Adds `n` to the counter on the current thread.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        let index = resolve_slot(&self.slot, self.name, Kind::Counter);
        LOCAL.with(|local| {
            let mut store = local.borrow_mut();
            if index >= store.counters.len() {
                store.counters.resize(index + 1, 0);
            }
            store.counters[index] += n;
        });
    }

    /// Adds one to the counter on the current thread.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A distribution of values in fixed log2 buckets (thread-local storage).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    slot: AtomicUsize,
}

impl Histogram {
    /// Declares a histogram. Free until first recorded to.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            slot: AtomicUsize::new(0),
        }
    }

    /// Records one observation of `value` on the current thread.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let index = resolve_slot(&self.slot, self.name, Kind::Histogram);
        LOCAL.with(|local| {
            let mut store = local.borrow_mut();
            if index >= store.histograms.len() {
                store.histograms.resize_with(index + 1, HistData::default);
            }
            store.histograms[index].record(value);
        });
    }
}

/// A wall-clock span timer: elapsed nanoseconds are recorded into a log2
/// histogram (thread-local storage).
///
/// Timer values are nondeterministic by nature; [`MetricsSnapshot`] keeps
/// them in a separate map from counters/histograms so determinism tests can
/// ignore them.
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    slot: AtomicUsize,
}

impl Timer {
    /// Declares a timer. Free until first recorded to.
    pub const fn new(name: &'static str) -> Self {
        Timer {
            name,
            slot: AtomicUsize::new(0),
        }
    }

    /// Starts a scoped span; the elapsed time is recorded when the returned
    /// guard drops. While telemetry is disabled the clock is never read.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            timer: self,
            start: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records an already-measured duration (used by `Span`; exposed for
    /// callers that cannot use RAII scoping).
    pub fn record(&self, elapsed: Duration) {
        if !enabled() {
            return;
        }
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let index = resolve_slot(&self.slot, self.name, Kind::Timer);
        LOCAL.with(|local| {
            let mut store = local.borrow_mut();
            if index >= store.timers.len() {
                store.timers.resize_with(index + 1, HistData::default);
            }
            store.timers[index].record(nanos);
        });
    }
}

/// RAII guard returned by [`Timer::span`]; records elapsed time on drop.
#[derive(Debug)]
pub struct Span {
    timer: &'static Timer,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.timer.record(start.elapsed());
        }
    }
}

/// An always-on elapsed-time reading, independent of the enabled flag.
///
/// This is the workspace's sanctioned wrapper around `Instant` for simple
/// "how long since X" readings outside the span system (e.g. `ProgressSink`'s
/// rolling runs/sec line); the xtask hygiene check bans raw `Instant::now()`
/// outside this crate and the campaign deadline logic.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A serializable log2-bucket histogram: observation count, saturating sum,
/// and sparse bucket counts keyed by bit length (0 = the value zero,
/// k = values in `[2^(k-1), 2^k)`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Sparse log2 bucket counts (only non-zero buckets present).
    pub buckets: BTreeMap<u8, u64>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += count;
        }
    }
}

/// A point-in-time copy of all metrics recorded on one thread: the payload
/// of `CampaignEvent::Metrics` records and the `CampaignResult::metrics`
/// aggregate.
///
/// `counters` and `histograms` are deterministic under a fixed seed;
/// `timers` hold wall-clock nanosecond distributions and are not.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Event counts by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Value distributions by histogram name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock span distributions (nanoseconds) by timer name.
    pub timers: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.timers.is_empty()
    }

    /// Folds another snapshot into this one (summing counters and merging
    /// histograms/timers), e.g. to aggregate per-sample snapshots into a
    /// campaign total.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, hist) in &other.timers {
            self.timers.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The deterministic part of the snapshot: counters and histograms,
    /// without the wall-clock timers. Equal across runs with equal seeds.
    pub fn deterministic_part(
        &self,
    ) -> (&BTreeMap<String, u64>, &BTreeMap<String, HistogramSnapshot>) {
        (&self.counters, &self.histograms)
    }

    /// Total wall-clock nanoseconds recorded under `timers` whose name
    /// starts with `prefix` (e.g. `"phase."` for phase attribution).
    pub fn timer_sum_ns(&self, prefix: &str) -> u64 {
        self.timers
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, hist)| hist.sum)
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("test.counter");
    static TEST_HIST: Histogram = Histogram::new("test.hist");
    static TEST_TIMER: Timer = Timer::new("test.timer");

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counter_and_histogram_roundtrip_through_snapshot() {
        enable();
        reset_local();
        TEST_COUNTER.add(3);
        TEST_COUNTER.incr();
        TEST_HIST.record(0);
        TEST_HIST.record(5);
        let snapshot = local_snapshot();
        assert_eq!(snapshot.counters["test.counter"], 4);
        let hist = &snapshot.histograms["test.hist"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 5);
        assert_eq!(hist.buckets[&0], 1);
        assert_eq!(hist.buckets[&3], 1); // 5 has bit length 3

        reset_local();
        assert!(local_snapshot().is_empty());
    }

    #[test]
    fn span_records_into_timers_only() {
        enable();
        reset_local();
        {
            let _span = TEST_TIMER.span();
        }
        let snapshot = local_snapshot();
        assert_eq!(snapshot.timers["test.timer"].count, 1);
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        reset_local();
    }

    #[test]
    fn threads_do_not_share_local_state() {
        enable();
        std::thread::spawn(|| {
            reset_local();
            TEST_COUNTER.add(100);
            assert_eq!(local_snapshot().counters["test.counter"], 100);
        })
        .join()
        .unwrap();
        // This thread's view is unaffected by the other thread's writes.
        reset_local();
        assert!(!local_snapshot().counters.contains_key("test.counter"));
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 1);
        a.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: 4,
                buckets: [(3u8, 1u64)].into_iter().collect(),
            },
        );
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 2);
        b.counters.insert("d".into(), 5);
        b.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 2,
                sum: 3,
                buckets: [(1u8, 1u64), (2, 1)].into_iter().collect(),
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["c"], 3);
        assert_eq!(a.counters["d"], 5);
        let h = &a.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 7);
        assert_eq!(h.buckets[&1], 1);
        assert_eq!(h.buckets[&2], 1);
        assert_eq!(h.buckets[&3], 1);
    }

    #[test]
    fn snapshot_serializes_and_deserializes() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("sim.l1.hit".into(), 7);
        snapshot.timers.insert(
            "phase.simulate".into(),
            HistogramSnapshot {
                count: 2,
                sum: 1500,
                buckets: [(10u8, 2u64)].into_iter().collect(),
            },
        );
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn timer_sum_ns_filters_by_prefix() {
        let mut snapshot = MetricsSnapshot::default();
        for (name, sum) in [("phase.a", 10u64), ("phase.b", 20), ("other", 100)] {
            snapshot.timers.insert(
                name.into(),
                HistogramSnapshot {
                    count: 1,
                    sum,
                    buckets: BTreeMap::new(),
                },
            );
        }
        assert_eq!(snapshot.timer_sum_ns("phase."), 30);
        assert_eq!(snapshot.timer_sum_ns(""), 130);
    }
}
