//! Critical-cycle vocabulary and the closed-form per-model verdict oracle.
//!
//! The diy line of work (Alglave et al.) generates litmus tests from *critical
//! cycles*: directed cycles alternating communication edges between threads
//! (reads-from `rf`, from-read `fr`, coherence `ws`) with program-order edges
//! inside threads (plain `po`, fence-separated pairs, syntactic
//! dependencies).  A cycle's weak outcome is observable on a machine exactly
//! when the machine relaxes at least one of the cycle's edges; conversely a
//! model *forbids* the outcome when every edge is "safe" — contained in a
//! relation the model requires to be acyclic.
//!
//! This module provides that vocabulary ([`CycleEdge`], [`Dir`],
//! [`CriticalCycle`]) next to [`ModelKind`], plus two derived artifacts:
//!
//! * [`ModelKind::forbids_cycle`] — the closed-form oracle: decides from the
//!   cycle's edges alone whether the model forbids the weak outcome, using
//!   each model's relaxation table ([`po_is_global`], [`fence_orders_pair`],
//!   [`fence_is_cumulative`], [`rf_is_global`], [`has_no_thin_air`]);
//! * [`CriticalCycle::canonical_execution`] — the canonical weak-outcome
//!   [`CandidateExecution`], built exactly as the simulator's observer would
//!   record it, so the oracle can be cross-checked against the axiomatic
//!   [`Checker`](crate::checker::Checker) for every cycle × model.
//!
//! The two must always agree; the workspace pins this for the whole
//! enumerated corpus (`mcversi-testgen`'s `enumerate` module walks the cycles
//! and `mcversi-bench`'s matrix verifies oracle against checker).
//!
//! # Canonical form
//!
//! Two edge lists describe the same shape when one is a rotation of the other
//! (starting the traversal at a different event relabels threads and
//! locations but changes nothing observable).  [`CriticalCycle::canonicalize`]
//! rotates to the lexicographically least encoding — first by the flavourless
//! skeleton, then by the edge flavours among skeleton-minimal rotations.
//! Reflection needs no extra handling: traversing a cycle backwards inverts
//! `rf`/`fr`/`ws` into relations outside the vocabulary, so every shape has
//! exactly one traversal direction and the rotation orbit already contains
//! all encodings.

use crate::event::{Address, DepKind, EventId, FenceKind, ProcessorId, Value};
use crate::execution::{CandidateExecution, ExecutionBuilder};
use crate::model::ModelKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction (access kind) of one event on a critical cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// A write access.
    W,
    /// A read access.
    R,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::W => f.write_str("W"),
            Dir::R => f.write_str("R"),
        }
    }
}

/// One edge of a critical cycle.
///
/// The external (communication) edges relate same-location accesses of
/// *different* threads; the internal edges relate different-location accesses
/// of the *same* thread and carry the relaxation flavour: plain program
/// order, a separating fence, or a syntactic dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CycleEdge {
    /// External reads-from: a write observed by another thread's read.
    Rf,
    /// From-read: a read that observed a coherence-earlier write than the
    /// target (`fr = rf⁻¹ ; co`).
    Fr,
    /// Coherence (write serialization) between writes of different threads.
    Ws,
    /// Plain program order between two same-thread accesses of different
    /// locations.
    Po,
    /// Program order with a fence of the given flavour between the accesses.
    Fenced(FenceKind),
    /// A syntactic dependency from a read to a later same-thread access.
    Dep(DepKind),
}

impl CycleEdge {
    /// Returns `true` for the communication edges (`rf`, `fr`, `ws`).
    pub fn is_external(self) -> bool {
        matches!(self, CycleEdge::Rf | CycleEdge::Fr | CycleEdge::Ws)
    }

    /// Returns `true` for the program-order edges (`po`, fenced, dependency).
    pub fn is_internal(self) -> bool {
        !self.is_external()
    }

    /// The source/target directions an external edge demands, `None` for
    /// internal edges (their endpoints are fixed by the neighbouring external
    /// edges instead).
    pub fn external_dirs(self) -> Option<(Dir, Dir)> {
        match self {
            CycleEdge::Rf => Some((Dir::W, Dir::R)),
            CycleEdge::Fr => Some((Dir::R, Dir::W)),
            CycleEdge::Ws => Some((Dir::W, Dir::W)),
            _ => None,
        }
    }

    /// Rank used by the canonical ordering (internal edges first so the
    /// canonical rotation starts at a thread segment).
    fn skeleton_rank(self) -> u8 {
        match self {
            CycleEdge::Po | CycleEdge::Fenced(_) | CycleEdge::Dep(_) => 0,
            CycleEdge::Rf => 1,
            CycleEdge::Fr => 2,
            CycleEdge::Ws => 3,
        }
    }

    /// Rank of the internal-edge flavour (tie-break among skeleton-minimal
    /// rotations; external edges rank 0).  Plain `po` ranks *last* so the
    /// canonical rotation of a symmetric shape leads with its flavoured edge
    /// — the herd convention (`SB+mfence+po`, not `SB+po+mfence`).
    fn flavour_rank(self) -> u8 {
        match self {
            CycleEdge::Rf | CycleEdge::Fr | CycleEdge::Ws => 0,
            CycleEdge::Po => u8::MAX,
            CycleEdge::Dep(DepKind::Addr) => 1,
            CycleEdge::Dep(DepKind::Data) => 2,
            CycleEdge::Dep(DepKind::Ctrl) => 3,
            CycleEdge::Fenced(kind) => {
                4 + FenceKind::ALL.iter().position(|&k| k == kind).unwrap_or(0) as u8
            }
        }
    }
}

impl fmt::Display for CycleEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleEdge::Rf => f.write_str("Rf"),
            CycleEdge::Fr => f.write_str("Fr"),
            CycleEdge::Ws => f.write_str("Ws"),
            CycleEdge::Po => f.write_str("po"),
            CycleEdge::Fenced(k) => write!(f, "F[{k}]"),
            CycleEdge::Dep(k) => write!(f, "dep[{k}]"),
        }
    }
}

/// An error constructing a [`CriticalCycle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError(pub String);

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CycleError {}

/// A validated critical cycle: `edges[i]` runs from event `i` to event
/// `(i + 1) % n`, and `dirs[i]` is event `i`'s access direction.
///
/// Validation enforces the diy-style criticality conditions:
///
/// * external edges type-check (`rf: W→R`, `fr: R→W`, `ws: W→W`) and
///   dependencies are read-sourced (`addr` targets a read, `data`/`ctrl`
///   target a write — the write-borne forms of the test vocabulary);
/// * at least two external edges (two threads) and two internal edges (two
///   locations);
/// * no two consecutive internal edges — every thread has at most two
///   accesses, to different locations;
/// * maximal runs of consecutive external edges have length at most two, and
///   a length-two run is `ws;rf` or `fr;rf` — the only compositions that do
///   not collapse into a single communication edge (`ws;ws = ws`,
///   `fr;ws = fr`, `rf;fr ⊆ ws`), i.e. at most three same-location accesses
///   and only in the two genuinely three-access patterns.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CriticalCycle {
    edges: Vec<CycleEdge>,
    dirs: Vec<Dir>,
}

impl CriticalCycle {
    /// Validates and creates a cycle (see the type-level conditions).
    pub fn new(edges: Vec<CycleEdge>, dirs: Vec<Dir>) -> Result<Self, CycleError> {
        if edges.len() != dirs.len() {
            return Err(CycleError(format!(
                "{} edges but {} event directions",
                edges.len(),
                dirs.len()
            )));
        }
        let n = edges.len();
        if n < 4 {
            return Err(CycleError(format!("cycle of {n} edges is degenerate")));
        }
        let externals = edges.iter().filter(|e| e.is_external()).count();
        let internals = n - externals;
        if externals < 2 {
            return Err(CycleError(
                "a critical cycle spans at least two threads".into(),
            ));
        }
        if internals < 2 {
            return Err(CycleError(
                "a critical cycle spans at least two locations".into(),
            ));
        }
        for i in 0..n {
            let (src, dst) = (dirs[i], dirs[(i + 1) % n]);
            match edges[i] {
                edge if edge.is_external() => {
                    let (want_src, want_dst) = edge.external_dirs().unwrap();
                    if (src, dst) != (want_src, want_dst) {
                        return Err(CycleError(format!(
                            "edge {i} ({edge}) connects {src}→{dst}, needs {want_src}→{want_dst}"
                        )));
                    }
                }
                CycleEdge::Dep(kind) => {
                    if src != Dir::R {
                        return Err(CycleError(format!(
                            "edge {i} (dep[{kind}]) must be sourced at a read"
                        )));
                    }
                    let ok = match kind {
                        DepKind::Addr => dst == Dir::R,
                        DepKind::Data | DepKind::Ctrl => dst == Dir::W,
                    };
                    if !ok {
                        return Err(CycleError(format!(
                            "edge {i} (dep[{kind}]) targets {dst}: address dependencies are \
                             read-borne, data/ctrl dependencies write-borne"
                        )));
                    }
                }
                _ => {}
            }
            if edges[i].is_internal() && edges[(i + 1) % n].is_internal() {
                return Err(CycleError(format!(
                    "edges {i} and {} are both internal: threads have at most two accesses",
                    (i + 1) % n
                )));
            }
        }
        // External runs: length ≤ 2 and only the non-collapsing compositions.
        for i in 0..n {
            let e = |k: usize| edges[(i + k) % n];
            if e(0).is_external() && e(1).is_external() {
                if e(2).is_external() {
                    return Err(CycleError(
                        "three consecutive communication edges: more than three \
                         same-location accesses"
                            .into(),
                    ));
                }
                let pair = (e(0), e(1));
                if pair != (CycleEdge::Ws, CycleEdge::Rf) && pair != (CycleEdge::Fr, CycleEdge::Rf)
                {
                    return Err(CycleError(format!(
                        "communication edges {} ; {} collapse into a shorter cycle",
                        e(0),
                        e(1)
                    )));
                }
            }
        }
        Ok(CriticalCycle { edges, dirs })
    }

    /// The edge list (edge `i` runs from event `i` to event `(i + 1) % n`).
    pub fn edges(&self) -> &[CycleEdge] {
        &self.edges
    }

    /// The event directions.
    pub fn dirs(&self) -> &[Dir] {
        &self.dirs
    }

    /// Number of events (= number of edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// A cycle is never empty (validation requires four edges).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of threads (one per external edge).
    pub fn num_threads(&self) -> usize {
        self.edges.iter().filter(|e| e.is_external()).count()
    }

    /// Number of distinct locations (one per internal edge).
    pub fn num_locations(&self) -> usize {
        self.edges.iter().filter(|e| e.is_internal()).count()
    }

    /// Number of internal edges carrying a non-plain flavour (fence or
    /// dependency).
    pub fn num_flavoured(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| matches!(e, CycleEdge::Fenced(_) | CycleEdge::Dep(_)))
            .count()
    }

    /// Thread index of every event: a new thread starts after each external
    /// edge, with threads numbered from the first segment boundary at or
    /// after event 0.
    pub fn thread_of(&self) -> Vec<usize> {
        let n = self.len();
        // Find the first event that starts a segment (its incoming edge is
        // external); validation guarantees one exists.
        let first = (0..n)
            .find(|&i| self.edges[(i + n - 1) % n].is_external())
            .expect("a cycle has external edges");
        // Walking from a segment start, the wrap-around boundary is crossed
        // only after the last event has been assigned, so indices stay in
        // `0..num_threads`.
        let mut thread = vec![0usize; n];
        let mut current = 0usize;
        for k in 0..n {
            let i = (first + k) % n;
            thread[i] = current;
            if self.edges[i].is_external() {
                current += 1;
            }
        }
        thread
    }

    /// Location index of every event: external edges keep the location,
    /// internal edges advance to a fresh one (numbered from the first
    /// location boundary at or after event 0).
    pub fn location_of(&self) -> Vec<usize> {
        let n = self.len();
        let first = (0..n)
            .find(|&i| self.edges[(i + n - 1) % n].is_internal())
            .expect("a cycle has internal edges");
        let mut loc = vec![0usize; n];
        let mut current = 0usize;
        for k in 0..n {
            let i = (first + k) % n;
            loc[i] = current;
            if self.edges[i].is_internal() {
                current += 1;
            }
        }
        loc
    }

    /// Rotates the encoding so it is the lexicographically least member of
    /// its rotation orbit: first by the flavourless skeleton
    /// `(edge class, source dir)`, then by the internal-edge flavours among
    /// the skeleton-minimal rotations.  Two cycles describe the same shape
    /// iff their canonical forms are equal.
    pub fn canonicalize(&self) -> CriticalCycle {
        let n = self.len();
        let skeleton_key = |r: usize| -> Vec<(u8, u8)> {
            (0..n)
                .map(|k| {
                    let i = (r + k) % n;
                    (self.edges[i].skeleton_rank(), self.dirs[i] as u8)
                })
                .collect()
        };
        let min_skeleton = (0..n).map(skeleton_key).min().expect("non-empty cycle");
        let flavour_key = |r: usize| -> Vec<u8> {
            (0..n)
                .map(|k| self.edges[(r + k) % n].flavour_rank())
                .collect()
        };
        let best = (0..n)
            .filter(|&r| skeleton_key(r) == min_skeleton)
            .min_by_key(|&r| flavour_key(r))
            .expect("at least one minimal rotation");
        let edges = (0..n).map(|k| self.edges[(best + k) % n]).collect();
        let dirs = (0..n).map(|k| self.dirs[(best + k) % n]).collect();
        CriticalCycle { edges, dirs }
    }

    /// The cycle with every internal edge demoted to plain `po` — the shape
    /// skeleton shared by all flavoured variants.
    pub fn skeleton(&self) -> CriticalCycle {
        let edges = self
            .edges
            .iter()
            .map(|e| if e.is_internal() { CycleEdge::Po } else { *e })
            .collect();
        CriticalCycle {
            edges,
            dirs: self.dirs.clone(),
        }
        .canonicalize()
    }

    /// Builds the canonical weak-outcome execution of the cycle, with every
    /// fence event and dependency edge recorded exactly as the simulator's
    /// observer would record them.
    ///
    /// Events are laid out per thread in cycle order; each read observes the
    /// write its incoming `rf` edge names (or the initial value when its
    /// outgoing edge is `fr`); coherence chains follow the `ws` edges.
    pub fn canonical_execution(&self) -> CandidateExecution {
        let n = self.len();
        let locations = self.location_of();
        let addr = |class: usize| Address(0x100 + 0x40 * class as u64);

        // Assign values: writes get 1, 2, … in event order; reads inherit
        // their rf source's value (or 0 from the initial state).
        let mut value = vec![Value(0); n];
        let mut next = 1u64;
        for (slot, &dir) in value.iter_mut().zip(self.dirs.iter()) {
            if dir == Dir::W {
                *slot = Value(next);
                next += 1;
            }
        }
        for i in 0..n {
            if self.edges[i] == CycleEdge::Rf {
                value[(i + 1) % n] = value[i];
            }
        }

        // Insert the events thread by thread, in cycle order within each
        // thread, so the builder's per-thread program order matches.
        let mut b = ExecutionBuilder::new();
        let mut ids: Vec<Option<EventId>> = vec![None; n];
        let num_threads = self.num_threads();
        for t in 0..num_threads {
            let members: Vec<usize> = self.segment_events(t);
            for (k, &i) in members.iter().enumerate() {
                let pid = ProcessorId(t as u32);
                let id = match self.dirs[i] {
                    Dir::W => b.write(pid, addr(locations[i]), value[i]),
                    Dir::R => b.read(pid, addr(locations[i]), value[i]),
                };
                ids[i] = Some(id);
                // The internal edge to the next member carries the flavour.
                if k + 1 < members.len() {
                    if let CycleEdge::Fenced(kind) = self.edges[i] {
                        b.fence(pid, kind);
                    }
                }
            }
        }
        let id = |i: usize| ids[i].expect("all events inserted");

        // Dependencies, reads-from and coherence.
        for i in 0..n {
            let j = (i + 1) % n;
            match self.edges[i] {
                CycleEdge::Dep(kind) => b.dependency(kind, id(i), id(j)),
                CycleEdge::Rf => b.reads_from(id(i), id(j)),
                _ => {}
            }
        }
        // Reads not fed by an rf edge observe the initial value.
        for i in 0..n {
            if self.dirs[i] == Dir::R && self.edges[(i + n - 1) % n] != CycleEdge::Rf {
                b.reads_from_initial(id(i));
            }
        }
        // Coherence: per location, `ws` edges chain the writes; every
        // location's co-least write follows the initial write.
        let mut class_first_write: Vec<Option<usize>> = vec![None; self.num_locations()];
        for (i, &class) in locations.iter().enumerate() {
            if self.dirs[i] == Dir::W {
                // The co-least write of a class is the one without an
                // incoming ws edge.
                let has_ws_in = self.edges[(i + n - 1) % n] == CycleEdge::Ws;
                if !has_ws_in {
                    debug_assert!(class_first_write[class].is_none());
                    class_first_write[class] = Some(i);
                }
            }
        }
        for first in class_first_write.into_iter().flatten() {
            b.coherence_after_initial(id(first));
        }
        for i in 0..n {
            if self.edges[i] == CycleEdge::Ws {
                b.coherence(id(i), id((i + 1) % n));
            }
        }
        b.build()
    }

    /// The event indices of thread `t`, in program order.
    pub fn segment_events(&self, t: usize) -> Vec<usize> {
        let threads = self.thread_of();
        let n = self.len();
        // Find the segment start (incoming edge external) of thread `t` and
        // walk internal edges forward.
        let start = (0..n)
            .find(|&i| threads[i] == t && self.edges[(i + n - 1) % n].is_external())
            .expect("thread exists");
        let mut out = vec![start];
        let mut i = start;
        while self.edges[i].is_internal() {
            i = (i + 1) % n;
            out.push(i);
        }
        out
    }
}

impl fmt::Display for CriticalCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{} -{}->", self.dirs[i], self.edges[i])?;
        }
        write!(f, " {}", self.dirs[0])
    }
}

// ---------------------------------------------------------------------------
// The per-model relaxation table
// ---------------------------------------------------------------------------

/// Is a plain program-order pair `src→dst` (different locations) globally
/// ordering under `model`?
///
/// SC preserves all of `po`; TSO everything except write→read (the store
/// buffer); the dependency-ordered models preserve only same-address order
/// and dependencies, so plain `po` orders nothing.
pub fn po_is_global(model: ModelKind, src: Dir, dst: Dir) -> bool {
    match model {
        ModelKind::Sc => true,
        ModelKind::Tso => !(src == Dir::W && dst == Dir::R),
        ModelKind::Armish | ModelKind::Powerish | ModelKind::Rmo => false,
    }
}

/// Does a fence of `kind` order the pair `src→dst` under `model` (the
/// fence's *base* order, before any cumulativity)?
///
/// This mirrors each model's `fence_order`: TSO honours only `mfence`;
/// the ARM-ish model gives acquire/release one-directional semantics; the
/// Power-ish model substitutes `lwsync` (everything but write→read); RMO
/// knows only the full fence; the store-store/load-load flavours are narrow
/// barriers everywhere they exist.  SC orders everything anyway.
pub fn fence_orders_pair(model: ModelKind, kind: FenceKind, src: Dir, dst: Dir) -> bool {
    match model {
        ModelKind::Sc => true,
        ModelKind::Tso => kind == FenceKind::Full,
        ModelKind::Armish => match kind {
            FenceKind::Full => true,
            FenceKind::Acquire => src == Dir::R,
            FenceKind::Release => dst == Dir::W,
            FenceKind::StoreStore => src == Dir::W && dst == Dir::W,
            FenceKind::LoadLoad => src == Dir::R && dst == Dir::R,
            FenceKind::LightweightSync => false,
        },
        ModelKind::Powerish => match kind {
            FenceKind::Full => true,
            FenceKind::LightweightSync => !(src == Dir::W && dst == Dir::R),
            FenceKind::StoreStore => src == Dir::W && dst == Dir::W,
            FenceKind::LoadLoad => src == Dir::R && dst == Dir::R,
            FenceKind::Acquire | FenceKind::Release => false,
        },
        ModelKind::Rmo => match kind {
            FenceKind::Full => true,
            FenceKind::StoreStore => src == Dir::W && dst == Dir::W,
            FenceKind::LoadLoad => src == Dir::R && dst == Dir::R,
            _ => false,
        },
    }
}

/// Is a fence of `kind` *cumulative* under `model` — closed with external
/// reads-from, so an adjacent `rf` edge inherits the fence's ordering?
///
/// Only matters for the non-multi-copy-atomic models (under SC/TSO `rf` is
/// globally ordering by itself).
pub fn fence_is_cumulative(model: ModelKind, kind: FenceKind) -> bool {
    match model {
        ModelKind::Sc | ModelKind::Tso => true,
        ModelKind::Armish | ModelKind::Rmo => kind == FenceKind::Full,
        ModelKind::Powerish => matches!(kind, FenceKind::Full | FenceKind::LightweightSync),
    }
}

/// Is an external reads-from edge globally ordering by itself under `model`?
pub fn rf_is_global(model: ModelKind) -> bool {
    matches!(model, ModelKind::Sc | ModelKind::Tso)
}

/// Does `model` enforce the no-thin-air axiom (`deps ∪ fence ∪ rfe`
/// acyclic)?  The strong models do not need it — their `rf` is global.
pub fn has_no_thin_air(model: ModelKind) -> bool {
    model.is_relaxed()
}

impl ModelKind {
    /// The closed-form oracle: does this model forbid the cycle's weak
    /// outcome?
    ///
    /// The outcome is forbidden iff some acyclicity axiom of the model covers
    /// *every* edge of the cycle:
    ///
    /// * **ghb** — `co`/`fr` are always global; a plain/fenced/dependency
    ///   edge is global per the relaxation table; an `rf` edge is global
    ///   when the model is multi-copy atomic, or absorbed when an adjacent
    ///   internal edge is a cumulative fence (A/B-cumulativity:
    ///   `rfe;fence ∪ fence;rfe ⊆ ghb`);
    /// * **no-thin-air** (relaxed models) — `rf` edges, dependency edges and
    ///   ordering fences are all in `deps ∪ fence ∪ rfe`, so a cycle of only
    ///   those is forbidden even without a global `rf` (the `LB+deps`
    ///   causality cycles).
    pub fn forbids_cycle(self, cycle: &CriticalCycle) -> bool {
        let n = cycle.len();
        let edges = cycle.edges();
        let dirs = cycle.dirs();
        let pair = |i: usize| (dirs[i], dirs[(i + 1) % n]);

        // A fenced internal edge that both orders its own endpoints and is
        // cumulative absorbs a neighbouring rf edge into ghb.
        let absorbs = |i: usize| -> bool {
            let (s, d) = pair(i);
            match edges[i] {
                CycleEdge::Fenced(kind) => {
                    fence_orders_pair(self, kind, s, d) && fence_is_cumulative(self, kind)
                }
                _ => false,
            }
        };
        let ghb_safe = |i: usize| -> bool {
            let (s, d) = pair(i);
            match edges[i] {
                CycleEdge::Ws | CycleEdge::Fr => true,
                CycleEdge::Rf => {
                    rf_is_global(self) || absorbs((i + 1) % n) || absorbs((i + n - 1) % n)
                }
                CycleEdge::Po => po_is_global(self, s, d),
                CycleEdge::Fenced(kind) => {
                    po_is_global(self, s, d) || fence_orders_pair(self, kind, s, d)
                }
                CycleEdge::Dep(_) => po_is_global(self, s, d) || self.is_relaxed(),
            }
        };
        if (0..n).all(ghb_safe) {
            return true;
        }

        if has_no_thin_air(self) {
            let thin_air_covered = |i: usize| -> bool {
                let (s, d) = pair(i);
                match edges[i] {
                    CycleEdge::Rf | CycleEdge::Dep(_) => true,
                    CycleEdge::Fenced(kind) => fence_orders_pair(self, kind, s, d),
                    _ => false,
                }
            };
            if (0..n).all(thin_air_covered) {
                return true;
            }
        }
        false
    }

    /// [`forbids_cycle`](Self::forbids_cycle) for every model, in
    /// [`ModelKind::ALL`] order.
    pub fn cycle_verdicts(cycle: &CriticalCycle) -> [bool; ModelKind::ALL.len()] {
        let mut out = [false; ModelKind::ALL.len()];
        for (i, model) in ModelKind::ALL.into_iter().enumerate() {
            out[i] = model.forbids_cycle(cycle);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;

    fn cycle(edges: Vec<CycleEdge>, dirs: Vec<Dir>) -> CriticalCycle {
        CriticalCycle::new(edges, dirs).expect("valid cycle")
    }

    fn mp(writer: CycleEdge, reader: CycleEdge) -> CriticalCycle {
        use CycleEdge::*;
        use Dir::*;
        cycle(vec![writer, Rf, reader, Fr], vec![W, W, R, R])
    }

    #[test]
    fn classic_shapes_validate_and_count() {
        use CycleEdge::*;
        use Dir::*;
        let mp = mp(Po, Po);
        assert_eq!(mp.num_threads(), 2);
        assert_eq!(mp.num_locations(), 2);
        assert_eq!(mp.len(), 4);
        let wrc = cycle(vec![Rf, Po, Rf, Po, Fr], vec![W, R, W, R, R]);
        assert_eq!(wrc.num_threads(), 3);
        assert_eq!(wrc.num_locations(), 2);
        let iriw = cycle(vec![Rf, Po, Fr, Rf, Po, Fr], vec![W, R, R, W, R, R]);
        assert_eq!(iriw.num_threads(), 4);
    }

    #[test]
    fn validation_rejects_malformed_cycles() {
        use CycleEdge::*;
        use Dir::*;
        // rf must run W→R.
        assert!(CriticalCycle::new(vec![Po, Rf, Po, Fr], vec![W, R, R, R]).is_err());
        // Dependencies are read-sourced.
        assert!(
            CriticalCycle::new(vec![Dep(DepKind::Data), Rf, Po, Fr], vec![W, W, R, R]).is_err()
        );
        // Addr deps are read-borne.
        assert!(CriticalCycle::new(
            vec![Rf, Dep(DepKind::Addr), Rf, Dep(DepKind::Addr)],
            vec![W, R, W, R]
        )
        .is_err());
        // Single thread / single location.
        assert!(CriticalCycle::new(vec![Po, Po, Po, Ws], vec![W, W, W, W]).is_err());
        // Collapsible communication runs (ws ; ws = ws).
        assert!(CriticalCycle::new(vec![Po, Ws, Ws, Po, Fr], vec![W, W, W, W, R]).is_err());
        // Three accesses per location at most.
        assert!(
            CriticalCycle::new(vec![Po, Fr, Rf, Fr, Rf, Po, Fr], vec![W, R, W, R, W, R, R])
                .is_err()
        );
    }

    #[test]
    fn rotations_canonicalize_identically() {
        use CycleEdge::*;
        use Dir::*;
        let a = mp(Fenced(FenceKind::Full), Dep(DepKind::Addr));
        let rotated = cycle(
            vec![Dep(DepKind::Addr), Fr, Fenced(FenceKind::Full), Rf],
            vec![R, R, W, W],
        );
        assert_eq!(a.canonicalize(), rotated.canonicalize());
        // The canonical rotation starts at the writer-side internal edge.
        let canon = a.canonicalize();
        assert_eq!(canon.edges()[0], Fenced(FenceKind::Full));
        assert_eq!(canon.dirs()[0], W);
    }

    #[test]
    fn skeleton_erases_flavours() {
        let flavoured = mp(
            CycleEdge::Fenced(FenceKind::Full),
            CycleEdge::Dep(DepKind::Addr),
        );
        assert_eq!(
            flavoured.skeleton(),
            mp(CycleEdge::Po, CycleEdge::Po).canonicalize()
        );
        assert_eq!(flavoured.num_flavoured(), 2);
    }

    /// The oracle reproduces the pinned cross-model verdicts of the classic
    /// shapes (`crates/bench/src/matrix.rs` pins the same table against the
    /// live checker).
    #[test]
    fn oracle_matches_known_verdicts() {
        use CycleEdge::*;
        use Dir::*;
        let full = Fenced(FenceKind::Full);
        let lw = Fenced(FenceKind::LightweightSync);
        let rel = Fenced(FenceKind::Release);
        let acq = Fenced(FenceKind::Acquire);
        let addr = Dep(DepKind::Addr);
        let data = Dep(DepKind::Data);

        let sb = |f: CycleEdge| cycle(vec![f, Fr, f, Fr], vec![W, R, W, R]);
        let lb = |f: CycleEdge| cycle(vec![f, Rf, f, Rf], vec![R, W, R, W]);
        let iriw = |f: CycleEdge| cycle(vec![Rf, f, Fr, Rf, f, Fr], vec![W, R, R, W, R, R]);
        let wrc = |mid: CycleEdge, tail: CycleEdge| {
            cycle(vec![Rf, mid, Rf, tail, Fr], vec![W, R, W, R, R])
        };

        // Expectations in ModelKind::ALL order [SC, TSO, ARMish, POWERish, RMO].
        let table: Vec<(&str, CriticalCycle, [bool; 5])> = vec![
            ("MP", mp(Po, Po), [true, true, false, false, false]),
            ("MP+addr", mp(Po, addr), [true, true, false, false, false]),
            (
                "MP+mfence+addr",
                mp(full, addr),
                [true, true, true, true, true],
            ),
            (
                "MP+lwsync+addr",
                mp(lw, addr),
                [true, true, false, true, false],
            ),
            (
                "MP+rel+addr",
                mp(rel, addr),
                [true, true, false, false, false],
            ),
            ("MP+mfences", mp(full, full), [true, true, true, true, true]),
            (
                "MP+mfence+acq",
                mp(full, acq),
                [true, true, true, false, false],
            ),
            ("SB", sb(Po), [true, false, false, false, false]),
            ("SB+mfences", sb(full), [true, true, true, true, true]),
            ("SB+lwsyncs", sb(lw), [true, false, false, false, false]),
            ("LB", lb(Po), [true, true, false, false, false]),
            ("LB+datas", lb(data), [true, true, true, true, true]),
            ("LB+mfences", lb(full), [true, true, true, true, true]),
            (
                "WRC+data+addr",
                wrc(data, addr),
                [true, true, false, false, false],
            ),
            (
                "WRC+mfence+addr",
                wrc(full, addr),
                [true, true, true, true, true],
            ),
            ("IRIW", iriw(Po), [true, true, false, false, false]),
            ("IRIW+addrs", iriw(addr), [true, true, false, false, false]),
            ("IRIW+mfences", iriw(full), [true, true, true, true, true]),
            (
                "S",
                cycle(vec![Po, Rf, Po, Ws], vec![W, W, R, W]),
                [true, true, false, false, false],
            ),
            (
                "R",
                cycle(vec![Po, Ws, Po, Fr], vec![W, W, W, R]),
                [true, false, false, false, false],
            ),
            (
                "2+2W",
                cycle(vec![Po, Ws, Po, Ws], vec![W, W, W, W]),
                [true, true, false, false, false],
            ),
        ];
        for (name, cyc, expected) in table {
            assert_eq!(
                ModelKind::cycle_verdicts(&cyc),
                expected,
                "oracle disagrees on {name}"
            );
        }
    }

    /// The canonical execution of every shape above gets the same verdict
    /// from the axiomatic checker as from the closed-form oracle.
    #[test]
    fn oracle_agrees_with_checker_on_canonical_executions() {
        use CycleEdge::*;
        use Dir::*;
        let shapes = vec![
            mp(Po, Po),
            mp(Fenced(FenceKind::Full), Dep(DepKind::Addr)),
            mp(Fenced(FenceKind::LightweightSync), Dep(DepKind::Addr)),
            mp(Fenced(FenceKind::Full), Fenced(FenceKind::Acquire)),
            cycle(vec![Po, Fr, Po, Fr], vec![W, R, W, R]),
            cycle(
                vec![Dep(DepKind::Data), Rf, Dep(DepKind::Ctrl), Rf],
                vec![R, W, R, W],
            ),
            cycle(vec![Rf, Po, Rf, Po, Fr], vec![W, R, W, R, R]),
            cycle(vec![Rf, Po, Fr, Rf, Po, Fr], vec![W, R, R, W, R, R]),
            cycle(vec![Po, Rf, Po, Ws], vec![W, W, R, W]),
            cycle(vec![Po, Ws, Po, Fr], vec![W, W, W, R]),
            cycle(vec![Po, Ws, Po, Ws], vec![W, W, W, W]),
            // WWC and RWC exercise the three-access location runs.
            cycle(vec![Rf, Po, Ws, Po, Ws], vec![W, R, W, W, W]),
            cycle(vec![Rf, Po, Fr, Po, Fr], vec![W, R, R, W, R]),
        ];
        for cyc in shapes {
            let exec = cyc.canonical_execution();
            assert!(
                exec.validate().is_ok(),
                "{cyc}: malformed canonical execution: {:?}",
                exec.validate()
            );
            for model in ModelKind::ALL {
                let checker = Checker::new(model.instance()).check(&exec).is_violation();
                assert_eq!(
                    model.forbids_cycle(&cyc),
                    checker,
                    "{cyc} under {model}: oracle vs checker"
                );
            }
        }
    }

    #[test]
    fn segments_and_locations_are_consistent() {
        use CycleEdge::*;
        use Dir::*;
        let wrc = cycle(vec![Rf, Po, Rf, Po, Fr], vec![W, R, W, R, R]);
        let threads = wrc.thread_of();
        let locs = wrc.location_of();
        assert_eq!(threads.iter().max(), Some(&2));
        assert_eq!(locs.iter().max(), Some(&1));
        // External edges keep the location, internal edges change it.
        for i in 0..wrc.len() {
            let j = (i + 1) % wrc.len();
            if wrc.edges()[i].is_external() {
                assert_eq!(locs[i], locs[j]);
                assert_ne!(threads[i], threads[j]);
            } else {
                assert_ne!(locs[i], locs[j]);
                assert_eq!(threads[i], threads[j]);
            }
        }
        // Segment events are in program order per thread.
        for t in 0..3 {
            let seg = wrc.segment_events(t);
            assert!(!seg.is_empty());
            assert!(seg.iter().all(|&i| threads[i] == t));
        }
    }

    #[test]
    fn display_is_readable() {
        let mp = mp(
            CycleEdge::Fenced(FenceKind::Full),
            CycleEdge::Dep(DepKind::Addr),
        );
        let s = format!("{mp}");
        assert!(s.contains("Rf"), "{s}");
        assert!(s.contains("mfence"), "{s}");
    }
}
