//! Axiomatic memory consistency model (MCM) framework and checker.
//!
//! This crate provides the formal machinery McVerSi uses to decide whether an
//! observed execution of a multiprocessor memory system is allowed by a target
//! memory consistency model.  It follows the "herding cats" style of axiomatic
//! modelling (Alglave et al., TOPLAS 2014): an execution is a set of [`Event`]s
//! together with the program order (`po`) and the *conflict orders* — reads-from
//! (`rf`) and coherence order (`co`).  A model ([`model::Architecture`]) derives
//! further relations (preserved program order, fence order, from-reads) and
//! demands that certain unions of these relations are acyclic.
//!
//! In a pre-silicon (simulation) environment all conflict orders are visible,
//! so checking is a polynomial-time graph search ([`checker`]), unlike the
//! NP-complete post-silicon problem.
//!
//! # Quick example
//!
//! ```
//! use mcversi_mcm::execution::ExecutionBuilder;
//! use mcversi_mcm::event::{Address, ProcessorId, Value};
//! use mcversi_mcm::model::tso::Tso;
//! use mcversi_mcm::checker::Checker;
//!
//! // Message passing: T0 writes x then y; T1 reads y==1 then x==0.
//! let mut b = ExecutionBuilder::new();
//! let p0 = ProcessorId(0);
//! let p1 = ProcessorId(1);
//! let x = Address(0x100);
//! let y = Address(0x140);
//! let wx = b.write(p0, x, Value(1));
//! let wy = b.write(p0, y, Value(1));
//! let ry = b.read(p1, y, Value(1));
//! let rx = b.read(p1, x, Value(0));
//! b.reads_from(wy, ry);
//! b.reads_from_initial(rx);
//! b.coherence_after_initial(wx);
//! b.coherence_after_initial(wy);
//! let exec = b.build();
//! let verdict = Checker::new(&Tso::default()).check(&exec);
//! assert!(verdict.is_violation(), "MP with r1=1, r2=0 is forbidden under TSO");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod cycle;
pub mod event;
pub mod execution;
pub mod model;
pub mod program;
pub mod relation;
pub mod signature;

pub use checker::{Checker, Verdict, Violation};
pub use cycle::{CriticalCycle, CycleEdge, CycleError, Dir};
pub use event::{Address, DepKind, Event, EventId, EventKind, FenceKind, Iiid, ProcessorId, Value};
pub use execution::{CandidateExecution, DependencySet, ExecutionBuilder};
pub use model::{Architecture, ModelKind};
pub use relation::Relation;
pub use signature::{classify_execution, ExecutionSignature, OracleVerdict, SignatureCache};

#[cfg(test)]
mod smoke {
    use crate::checker::Checker;
    use crate::event::{Address, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;
    use crate::model::tso::Tso;

    /// Crate-level smoke test: event insertion and one checker pass.
    #[test]
    fn event_insertion_and_check() {
        let mut b = ExecutionBuilder::new();
        let w = b.write(ProcessorId(0), Address(0x100), Value(1));
        let r = b.read(ProcessorId(1), Address(0x100), Value(1));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        let exec = b.build();
        // Two inserted events plus the materialized initial write.
        assert_eq!(exec.len(), 3);
        assert_eq!(exec.writes().count(), 2);
        assert_eq!(exec.reads().count(), 1);
        let verdict = Checker::new(&Tso).check(&exec);
        assert!(
            !verdict.is_violation(),
            "rf-only execution is TSO-consistent"
        );
    }
}
