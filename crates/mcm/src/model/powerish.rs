//! A Power-flavoured relaxed model with cumulative `sync`/`lwsync` fences.
//!
//! Like [`Armish`] the model preserves dependency order and same-address
//! program order, is not multi-copy atomic (`global_rf` is empty) and adds a
//! no-thin-air axiom.  The fence repertoire is Power's instead of ARM's:
//!
//! * **`sync`** ([`FenceKind::Full`]) orders everything across it,
//!   cumulatively — `SB+syncs` and `IRIW+syncs` are forbidden;
//! * **`lwsync`** ([`FenceKind::LightweightSync`]) orders every pair *except*
//!   write→read, also cumulatively — `MP+lwsync+addr` is forbidden but
//!   `SB+lwsyncs` stays allowed, the classic Power distinction;
//! * the store-store / load-load fences act as `eieio`-like narrow barriers.
//!
//! Acquire/release fences are foreign to this model and are ignored (they
//! order nothing beyond what `ppo` already gives), which keeps the model
//! weaker than [`Armish`] on acquire/release programs and stronger than
//! [`Rmo`] everywhere.
//!
//! [`Armish`]: crate::model::armish::Armish
//! [`Rmo`]: crate::model::relaxed::Rmo

use crate::event::FenceKind;
use crate::execution::CandidateExecution;
use crate::model::{
    cumulative, dependency_order, fence_separated, no_thin_air_axiom, po_loc_preserved,
    Architecture, Axiom,
};
use crate::relation::Relation;

/// The Power-flavoured relaxed memory model.
///
/// ```
/// use mcversi_mcm::model::powerish::Powerish;
/// use mcversi_mcm::model::Architecture;
/// assert_eq!(Powerish::default().name(), "POWERish");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Powerish;

impl Architecture for Powerish {
    fn name(&self) -> &'static str {
        "POWERish"
    }

    fn ppo(&self, exec: &CandidateExecution) -> Relation {
        let mut ppo = dependency_order(exec);
        ppo.union_with(&po_loc_preserved(exec));
        ppo
    }

    fn fence_order(&self, exec: &CandidateExecution) -> Relation {
        let sync = fence_separated(exec, |k| k == FenceKind::Full);
        let lwsync = fence_separated(exec, |k| k == FenceKind::LightweightSync)
            .filter(|a, b| !(exec.event(a).is_write() && exec.event(b).is_read()));
        let mut out = cumulative(exec, &sync);
        out.union_with(&cumulative(exec, &lwsync));
        let ss = fence_separated(exec, |k| k == FenceKind::StoreStore)
            .filter(|a, b| exec.event(a).is_write() && exec.event(b).is_write());
        let ll = fence_separated(exec, |k| k == FenceKind::LoadLoad)
            .filter(|a, b| exec.event(a).is_read() && exec.event(b).is_read());
        out.union_with(&ss);
        out.union_with(&ll);
        out
    }

    fn global_rf(&self, _exec: &CandidateExecution) -> Relation {
        // Non-multi-copy-atomic, like the pre-v8 ARM and Power machines.
        Relation::new()
    }

    fn extra_axioms(&self, exec: &CandidateExecution, fence_order: &Relation) -> Vec<Axiom> {
        vec![no_thin_air_axiom(exec, fence_order)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::event::{Address, DepKind, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;

    fn checker() -> Checker<'static> {
        Checker::new(&Powerish)
    }

    fn mp(writer_fence: Option<FenceKind>, reader_dep: bool) -> crate::CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        if let Some(kind) = writer_fence {
            b.fence(p0, kind);
        }
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(0));
        if reader_dep {
            b.dependency(DepKind::Addr, ry, rx);
        }
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    fn sb(fence: Option<FenceKind>) -> crate::CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        if let Some(kind) = fence {
            b.fence(p0, kind);
        }
        let ry = b.read(p0, y, Value(0));
        let wy = b.write(p1, y, Value(1));
        if let Some(kind) = fence {
            b.fence(p1, kind);
        }
        let rx = b.read(p1, x, Value(0));
        b.reads_from_initial(ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    /// The classic Power distinction: `lwsync` is enough for MP (with a
    /// dependency on the reader) but not for SB.
    #[test]
    fn lwsync_orders_mp_but_not_sb() {
        assert!(checker().check(&mp(None, true)).is_valid());
        assert!(checker()
            .check(&mp(Some(FenceKind::LightweightSync), true))
            .is_violation());
        assert!(checker()
            .check(&sb(Some(FenceKind::LightweightSync)))
            .is_valid());
        assert!(checker().check(&sb(Some(FenceKind::Full))).is_violation());
        assert!(checker().check(&sb(None)).is_valid());
    }

    /// A full `sync` on the writer with a plain (dependency-free) reader still
    /// leaves the reader's loads unordered.
    #[test]
    fn sync_alone_does_not_order_the_reader() {
        assert!(checker()
            .check(&mp(Some(FenceKind::Full), false))
            .is_valid());
        assert!(checker()
            .check(&mp(Some(FenceKind::Full), true))
            .is_violation());
    }

    /// Acquire/release fences are foreign to the Power-flavoured model: they
    /// do not strengthen MP even with a reader dependency.
    #[test]
    fn acquire_release_are_ignored() {
        assert!(checker()
            .check(&mp(Some(FenceKind::Release), true))
            .is_valid());
        assert!(checker()
            .check(&mp(Some(FenceKind::Acquire), true))
            .is_valid());
    }

    /// WRC with dependencies is allowed: the model is not multi-copy atomic,
    /// and neither dependency chain makes the initial write globally visible.
    #[test]
    fn wrc_with_deps_is_allowed() {
        let mut b = ExecutionBuilder::new();
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(ProcessorId(0), x, Value(1));
        let r1x = b.read(ProcessorId(1), x, Value(1));
        let w1y = b.write(ProcessorId(1), y, Value(2));
        b.dependency(DepKind::Data, r1x, w1y);
        let r2y = b.read(ProcessorId(2), y, Value(2));
        let r2x = b.read(ProcessorId(2), x, Value(0));
        b.dependency(DepKind::Addr, r2y, r2x);
        b.reads_from(wx, r1x);
        b.reads_from(w1y, r2y);
        b.reads_from_initial(r2x);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(w1y);
        let exec = b.build();
        assert!(checker().check(&exec).is_valid());
        // With a cumulative sync in the middle thread the outcome is
        // forbidden: the fence propagates P0's write.
        let mut b = ExecutionBuilder::new();
        let wx = b.write(ProcessorId(0), x, Value(1));
        let r1x = b.read(ProcessorId(1), x, Value(1));
        b.fence(ProcessorId(1), FenceKind::Full);
        let w1y = b.write(ProcessorId(1), y, Value(2));
        let r2y = b.read(ProcessorId(2), y, Value(2));
        let r2x = b.read(ProcessorId(2), x, Value(0));
        b.dependency(DepKind::Addr, r2y, r2x);
        b.reads_from(wx, r1x);
        b.reads_from(w1y, r2y);
        b.reads_from_initial(r2x);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(w1y);
        assert!(checker().check(&b.build()).is_violation());
    }
}
