//! Sequential Consistency (Lamport 1979).
//!
//! The strictest model: nothing is reordered, every reads-from edge is global.
//! Under SC an execution is valid iff `po ∪ rf ∪ co ∪ fr` is acyclic, which is
//! exactly what the generic axiom assembly yields with `ppo = po` (restricted
//! to memory accesses) and `grf = rf`.

use crate::execution::CandidateExecution;
use crate::model::{fence_separated, po_mem, Architecture};
use crate::relation::Relation;

/// Sequential Consistency.
///
/// ```
/// use mcversi_mcm::model::sc::Sc;
/// use mcversi_mcm::model::Architecture;
/// assert_eq!(Sc::default().name(), "SC");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sc;

impl Architecture for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn ppo(&self, exec: &CandidateExecution) -> Relation {
        po_mem(exec)
    }

    fn fence_order(&self, exec: &CandidateExecution) -> Relation {
        // All fences are no-ops under SC (everything already ordered), but we
        // still report the pairs for uniform diagnostics.
        fence_separated(exec, |_| true)
    }

    fn global_rf(&self, exec: &CandidateExecution) -> Relation {
        exec.rf().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::event::{Address, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;

    /// Store buffering (SB): forbidden outcome under SC.
    #[test]
    fn sc_forbids_store_buffering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let w0 = b.write(p0, x, Value(1));
        let r0 = b.read(p0, y, Value(0));
        let w1 = b.write(p1, y, Value(1));
        let r1 = b.read(p1, x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        assert!(exec.validate().is_ok());
        let verdict = Checker::new(&Sc).check(&exec);
        assert!(verdict.is_violation());
    }

    /// The same SB test where one read observes the other thread's write is
    /// allowed under SC.
    #[test]
    fn sc_allows_interleaved_store_buffering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let w0 = b.write(p0, x, Value(1));
        let r0 = b.read(p0, y, Value(1));
        let w1 = b.write(p1, y, Value(1));
        let r1 = b.read(p1, x, Value(0));
        b.reads_from(w1, r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        // r1 reads 0 while w0 already happened in p0's program order, but that
        // is fine under SC as long as the interleaving puts r1 before w0... it
        // does not here: w0 -> po -> r0 reads w1, so w1 before r0; r1 reads
        // init so r1 before w0.  Interleaving: w1, r1?, ... Check with the
        // checker rather than hand-reasoning:
        let verdict = Checker::new(&Sc).check(&exec);
        assert!(verdict.is_valid(), "unexpected violation: {verdict:?}");
    }

    /// Message passing with both reads observing the writes is fine.
    #[test]
    fn sc_allows_message_passing_success() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(1));
        b.reads_from(wy, ry);
        b.reads_from(wx, rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        let verdict = Checker::new(&Sc).check(&exec);
        assert!(verdict.is_valid());
    }

    /// Same-address write-read reordering is forbidden even under weaker
    /// models; certainly under SC.
    #[test]
    fn sc_forbids_reading_overwritten_value_in_program_order() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let x = Address(0x100);
        let w1 = b.write(p0, x, Value(1));
        let r = b.read(p0, x, Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w1);
        let exec = b.build();
        let verdict = Checker::new(&Sc).check(&exec);
        assert!(verdict.is_violation());
    }
}
