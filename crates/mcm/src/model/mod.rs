//! Axiomatic consistency models in the herding-cats style.
//!
//! A model ([`Architecture`]) is characterised by three ingredients (paper
//! §2.1 and Alglave et al.):
//!
//! * the *preserved program order* `ppo` — the subset of program order the
//!   hardware promises to maintain;
//! * the *fence order* — pairs of memory accesses ordered by fences or
//!   fence-implying instructions (e.g. x86 locked RMWs);
//! * the *global reads-from* `grf` — which reads-from edges participate in the
//!   global happens-before (for multi-copy-atomic models such as TSO only
//!   external reads-from is global).
//!
//! From these, validity of a candidate execution is expressed as a set of
//! [`Axiom`]s:
//!
//! 1. **sc-per-location** (a.k.a. uniproc / coherence): `po-loc ∪ com` acyclic;
//! 2. **ghb** (global happens-before): `ppo ∪ fence ∪ grf ∪ co ∪ fr` acyclic;
//! 3. **rmw-atomicity**: no write intervenes (in coherence order) between the
//!    read and write halves of an atomic read-modify-write.
//!
//! Models provided: [`sc::Sc`], [`tso::Tso`] and the deliberately weak
//! [`relaxed::Rmo`] (used to demonstrate how a more permissive target model
//! changes checker verdicts).

pub mod relaxed;
pub mod sc;
pub mod tso;

use crate::execution::CandidateExecution;
use crate::relation::Relation;
use std::fmt;

/// A single named constraint over derived relations of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axiom {
    /// The relation must be acyclic.
    Acyclic {
        /// Human-readable axiom name (e.g. `"ghb"`).
        name: &'static str,
        /// The relation that must contain no cycle.
        relation: Relation,
    },
    /// The relation must be empty.
    Empty {
        /// Human-readable axiom name (e.g. `"rmw-atomicity"`).
        name: &'static str,
        /// The relation that must contain no pair.
        relation: Relation,
    },
}

impl Axiom {
    /// The axiom's name.
    pub fn name(&self) -> &'static str {
        match self {
            Axiom::Acyclic { name, .. } | Axiom::Empty { name, .. } => name,
        }
    }

    /// The relation the axiom constrains.
    pub fn relation(&self) -> &Relation {
        match self {
            Axiom::Acyclic { relation, .. } | Axiom::Empty { relation, .. } => relation,
        }
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::Acyclic { name, .. } => write!(f, "acyclic({name})"),
            Axiom::Empty { name, .. } => write!(f, "empty({name})"),
        }
    }
}

/// An axiomatic memory consistency model.
///
/// Implementations provide the model-specific derived relations; the default
/// [`axioms`](Architecture::axioms) method assembles the standard constraint
/// set from them.  The checker only consumes `axioms`, so exotic models may
/// override it entirely.
pub trait Architecture: fmt::Debug + Send + Sync {
    /// Short human-readable model name, e.g. `"TSO"`.
    fn name(&self) -> &'static str;

    /// Preserved program order: the subset of `po` (restricted to memory
    /// accesses) that the hardware guarantees to maintain globally.
    fn ppo(&self, exec: &CandidateExecution) -> Relation;

    /// Pairs of memory accesses ordered by fences or fence-implying
    /// instructions.
    fn fence_order(&self, exec: &CandidateExecution) -> Relation;

    /// The reads-from edges that are globally ordering (for store-atomic
    /// models all of `rf`; for TSO-like models only external `rf`).
    fn global_rf(&self, exec: &CandidateExecution) -> Relation;

    /// Assembles the axioms to check for `exec`.
    fn axioms(&self, exec: &CandidateExecution) -> Vec<Axiom> {
        let fr = exec.fr();
        let com = exec.com();

        // 1. SC per location.
        let mut sc_per_loc = exec.po_loc();
        sc_per_loc.union_with(&com);

        // 2. Global happens-before.
        let mut ghb = self.ppo(exec);
        ghb.union_with(&self.fence_order(exec));
        ghb.union_with(&self.global_rf(exec));
        ghb.union_with(exec.co());
        ghb.union_with(&fr);

        // 3. RMW atomicity: for an atomic pair (r, w), no other write w' may
        //    satisfy fr(r, w') and co(w', w).
        let atomicity_violations = rmw_atomicity_violations(exec, &fr);

        vec![
            Axiom::Acyclic {
                name: "sc-per-location",
                relation: sc_per_loc,
            },
            Axiom::Acyclic {
                name: "ghb",
                relation: ghb,
            },
            Axiom::Empty {
                name: "rmw-atomicity",
                relation: atomicity_violations,
            },
        ]
    }
}

/// Computes the set of RMW pairs whose atomicity is violated.
///
/// Returns a relation containing `(read_half, write_half)` for every atomic
/// read-modify-write where some other write to the same address is coherence
/// ordered after the read's source but before the write half.
pub fn rmw_atomicity_violations(exec: &CandidateExecution, fr: &Relation) -> Relation {
    let mut violations = Relation::new();
    // Collect RMW pairs: same iiid, read half and write half.
    let mut rmw_pairs = Vec::new();
    for r in exec
        .events()
        .iter()
        .filter(|e| e.kind.is_rmw() && e.is_read())
    {
        for w in exec
            .events()
            .iter()
            .filter(|e| e.kind.is_rmw() && e.is_write())
        {
            if r.iiid.is_some() && r.iiid == w.iiid {
                rmw_pairs.push((r.id, w.id));
            }
        }
    }
    for (r, w) in rmw_pairs {
        // fr(r, w') and co(w', w) for some w' != w means a write intervened.
        for w_prime in fr.successors(r) {
            if w_prime != w && exec.co().contains(w_prime, w) {
                violations.insert(r, w);
                break;
            }
        }
    }
    violations
}

/// Helper shared by models: program order restricted to memory accesses
/// (fences removed), as a relation between memory events only.
pub(crate) fn po_mem(exec: &CandidateExecution) -> Relation {
    exec.po().filter(|a, b| {
        exec.event(a).kind.is_memory_access() && exec.event(b).kind.is_memory_access()
    })
}

/// Helper shared by models: pairs of memory accesses separated (in program
/// order) by a fence satisfying `matches`, or by a fence-implying RMW.
pub(crate) fn fence_separated<F>(exec: &CandidateExecution, matches: F) -> Relation
where
    F: Fn(crate::event::FenceKind) -> bool,
{
    let po = exec.po();
    let mut out = Relation::new();
    let fencelike: Vec<_> = exec
        .events()
        .iter()
        .filter(|e| match e.kind {
            crate::event::EventKind::Fence(k) => matches(k),
            // x86 locked RMWs drain the store buffer: they order everything
            // before them against everything after them.
            crate::event::EventKind::RmwRead | crate::event::EventKind::RmwWrite => true,
            _ => false,
        })
        .map(|e| e.id)
        .collect();
    for f in fencelike {
        let f_is_mem = exec.event(f).kind.is_memory_access();
        let mut before: Vec<_> = exec
            .events()
            .iter()
            .filter(|e| e.kind.is_memory_access() && po.contains(e.id, f))
            .map(|e| e.id)
            .collect();
        let mut after: Vec<_> = exec
            .events()
            .iter()
            .filter(|e| e.kind.is_memory_access() && po.contains(f, e.id))
            .map(|e| e.id)
            .collect();
        // A fence-implying memory access (RMW half) is itself ordered against
        // everything on both sides: on x86 a locked instruction's write is
        // globally performed before any later read of the same core.
        if f_is_mem {
            before.push(f);
            after.push(f);
        }
        for &a in &before {
            for &b in &after {
                if a != b {
                    out.insert(a, b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Address, FenceKind, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;

    #[test]
    fn axiom_accessors() {
        let a = Axiom::Acyclic {
            name: "ghb",
            relation: Relation::new(),
        };
        assert_eq!(a.name(), "ghb");
        assert!(a.relation().is_empty());
        assert_eq!(format!("{a}"), "acyclic(ghb)");
        let e = Axiom::Empty {
            name: "rmw-atomicity",
            relation: Relation::new(),
        };
        assert_eq!(format!("{e}"), "empty(rmw-atomicity)");
    }

    #[test]
    fn fence_separated_orders_across_mfence() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        b.fence(p0, FenceKind::Full);
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(fo.contains(w, r));
    }

    #[test]
    fn fence_separated_ignores_non_matching_fences() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        b.fence(p0, FenceKind::StoreStore);
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(!fo.contains(w, r));
    }

    #[test]
    fn rmw_implies_fence_order() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        let (rr, rw) = b.rmw(p0, Address(0x30), Value(0), Value(7));
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(rr);
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        b.coherence_after_initial(rw);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(fo.contains(w, r), "W -> RMW -> R must be ordered");
    }

    #[test]
    fn atomicity_violation_detected() {
        // RMW reads from init, but another write is co-between init and the
        // RMW's write half.
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let (rr, rw) = b.rmw(p0, Address(0x10), Value(0), Value(7));
        let intruder = b.write(p1, Address(0x10), Value(3));
        b.reads_from_initial(rr);
        b.coherence_after_initial(intruder);
        b.coherence(intruder, rw);
        let exec = b.build();
        let fr = exec.fr();
        let v = rmw_atomicity_violations(&exec, &fr);
        assert!(v.contains(rr, rw));
    }

    #[test]
    fn atomicity_ok_when_no_intervening_write() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let (rr, rw) = b.rmw(p0, Address(0x10), Value(0), Value(7));
        b.reads_from_initial(rr);
        b.coherence_after_initial(rw);
        let exec = b.build();
        let fr = exec.fr();
        let v = rmw_atomicity_violations(&exec, &fr);
        assert!(v.is_empty());
    }
}
