//! Axiomatic consistency models in the herding-cats style.
//!
//! A model ([`Architecture`]) is characterised by three ingredients (paper
//! §2.1 and Alglave et al.):
//!
//! * the *preserved program order* `ppo` — the subset of program order the
//!   hardware promises to maintain;
//! * the *fence order* — pairs of memory accesses ordered by fences or
//!   fence-implying instructions (e.g. x86 locked RMWs);
//! * the *global reads-from* `grf` — which reads-from edges participate in the
//!   global happens-before (for multi-copy-atomic models such as TSO only
//!   external reads-from is global).
//!
//! From these, validity of a candidate execution is expressed as a set of
//! [`Axiom`]s:
//!
//! 1. **sc-per-location** (a.k.a. uniproc / coherence): `po-loc ∪ com` acyclic;
//! 2. **ghb** (global happens-before): `ppo ∪ fence ∪ grf ∪ co ∪ fr` acyclic;
//! 3. **rmw-atomicity**: no write intervenes (in coherence order) between the
//!    read and write halves of an atomic read-modify-write;
//! 4. optionally, model-specific [`Architecture::extra_axioms`] — the relaxed
//!    models add a **no-thin-air** axiom (`deps ∪ fence ∪ rfe` acyclic) so
//!    that load-buffering cycles through dependencies stay forbidden even when
//!    reads-from is not globally ordering.
//!
//! Models provided, strongest first: [`sc::Sc`], [`tso::Tso`], the
//! ARMv8-flavoured [`armish::Armish`], the Power-flavoured
//! [`powerish::Powerish`] and the deliberately weakest [`relaxed::Rmo`].
//! [`ModelKind`] enumerates them for configuration plumbing.  The suite forms
//! a strength chain — every execution accepted by a stronger model is accepted
//! by the weaker ones (`SC ⇒ TSO ⇒ {ARMish, POWERish} ⇒ RMO`) — which the
//! workspace-level property tests exercise on random executions.
//!
//! # Adding a model
//!
//! 1. Create `model/<name>.rs` with a unit struct implementing
//!    [`Architecture`]: provide `name`, `ppo`, `fence_order` and `global_rf`,
//!    and override `extra_axioms` if the model needs constraints beyond the
//!    standard three (see [`no_thin_air_axiom`] for the relaxed-model pattern).
//!    Build the relations from the shared combinators below ([`po_mem`],
//!    [`po_loc_preserved`], [`dependency_order`], [`fence_separated`],
//!    [`cumulative`]) so behaviour stays consistent across models.
//! 2. Register the model in [`ModelKind`] (variant, `ALL`, `instance`,
//!    `parse`) so campaigns, litmus suites and the experiment binaries can
//!    select it.
//! 3. Keep the strength chain honest: if the model slots between two existing
//!    ones, every relation it feeds into `ghb` must be contained in the
//!    transitive closure of the stronger neighbour's `ghb` (and vice versa for
//!    the weaker neighbour).  Add it to the monotonicity property test and pin
//!    its litmus verdicts in the differential tests.
//! 4. Give the model a `default_suite` in `mcversi-testgen`'s litmus module if
//!    it benefits from dedicated fence/dependency flavours.

pub mod armish;
pub mod powerish;
pub mod relaxed;
pub mod sc;
pub mod tso;

use crate::execution::CandidateExecution;
use crate::relation::Relation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Enumeration of the built-in models, strongest first.
///
/// This is the configuration-level handle used to select the target model of
/// a verification campaign; [`instance`](ModelKind::instance) yields the
/// actual [`Architecture`] implementation.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ModelKind {
    /// Sequential Consistency ([`sc::Sc`]).
    Sc,
    /// x86 Total Store Order ([`tso::Tso`]), the paper's target model.
    #[default]
    Tso,
    /// ARMv8-flavoured relaxed model ([`armish::Armish`]).
    Armish,
    /// Power-flavoured relaxed model ([`powerish::Powerish`]).
    Powerish,
    /// The weakest model in the suite ([`relaxed::Rmo`]).
    Rmo,
}

impl ModelKind {
    /// Every built-in model, strongest first.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Sc,
        ModelKind::Tso,
        ModelKind::Armish,
        ModelKind::Powerish,
        ModelKind::Rmo,
    ];

    /// The shared instance implementing this model.
    pub fn instance(self) -> &'static dyn Architecture {
        static SC: sc::Sc = sc::Sc;
        static TSO: tso::Tso = tso::Tso;
        static ARMISH: armish::Armish = armish::Armish;
        static POWERISH: powerish::Powerish = powerish::Powerish;
        static RMO: relaxed::Rmo = relaxed::Rmo;
        match self {
            ModelKind::Sc => &SC,
            ModelKind::Tso => &TSO,
            ModelKind::Armish => &ARMISH,
            ModelKind::Powerish => &POWERISH,
            ModelKind::Rmo => &RMO,
        }
    }

    /// The model's display name (same as [`Architecture::name`]).
    pub fn name(self) -> &'static str {
        self.instance().name()
    }

    /// Parses a model name case-insensitively (e.g. `"tso"`, `"ARMish"`).
    pub fn parse(s: &str) -> Option<ModelKind> {
        ModelKind::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(s.trim()))
    }

    /// Returns `true` for the dependency-ordered models weaker than TSO
    /// (ARMish/POWERish/RMO) — the targets that benefit from the
    /// dependency-carrying operation mix and weak fence flavours.
    pub fn is_relaxed(self) -> bool {
        matches!(
            self,
            ModelKind::Armish | ModelKind::Powerish | ModelKind::Rmo
        )
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::parse(s).ok_or_else(|| format!("unknown model '{s}'"))
    }
}

/// A single named constraint over derived relations of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axiom {
    /// The relation must be acyclic.
    Acyclic {
        /// Human-readable axiom name (e.g. `"ghb"`).
        name: &'static str,
        /// The relation that must contain no cycle.
        relation: Relation,
    },
    /// The relation must be empty.
    Empty {
        /// Human-readable axiom name (e.g. `"rmw-atomicity"`).
        name: &'static str,
        /// The relation that must contain no pair.
        relation: Relation,
    },
}

impl Axiom {
    /// The axiom's name.
    pub fn name(&self) -> &'static str {
        match self {
            Axiom::Acyclic { name, .. } | Axiom::Empty { name, .. } => name,
        }
    }

    /// The relation the axiom constrains.
    pub fn relation(&self) -> &Relation {
        match self {
            Axiom::Acyclic { relation, .. } | Axiom::Empty { relation, .. } => relation,
        }
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::Acyclic { name, .. } => write!(f, "acyclic({name})"),
            Axiom::Empty { name, .. } => write!(f, "empty({name})"),
        }
    }
}

/// An axiomatic memory consistency model.
///
/// Implementations provide the model-specific derived relations; the default
/// [`axioms`](Architecture::axioms) method assembles the standard constraint
/// set from them.  The checker only consumes `axioms`, so exotic models may
/// override it entirely.
pub trait Architecture: fmt::Debug + Send + Sync {
    /// Short human-readable model name, e.g. `"TSO"`.
    fn name(&self) -> &'static str;

    /// Preserved program order: the subset of `po` (restricted to memory
    /// accesses) that the hardware guarantees to maintain globally.
    fn ppo(&self, exec: &CandidateExecution) -> Relation;

    /// Pairs of memory accesses ordered by fences or fence-implying
    /// instructions.
    fn fence_order(&self, exec: &CandidateExecution) -> Relation;

    /// The reads-from edges that are globally ordering (for store-atomic
    /// models all of `rf`; for TSO-like models only external `rf`; for
    /// non-multi-copy-atomic models none).
    fn global_rf(&self, exec: &CandidateExecution) -> Relation;

    /// Additional model-specific axioms appended to the standard three.
    ///
    /// `fence_order` is the relation [`axioms`](Architecture::axioms) already
    /// derived via [`fence_order`](Architecture::fence_order), passed in so
    /// implementations do not recompute it (fence derivation is the most
    /// expensive part of a relaxed model's check).  The default is none; the
    /// relaxed models add the no-thin-air axiom here (see
    /// [`no_thin_air_axiom`]).
    fn extra_axioms(&self, exec: &CandidateExecution, fence_order: &Relation) -> Vec<Axiom> {
        let _ = (exec, fence_order);
        Vec::new()
    }

    /// Assembles the axioms to check for `exec`.
    fn axioms(&self, exec: &CandidateExecution) -> Vec<Axiom> {
        let fr = exec.fr();
        let com = exec.com();

        // 1. SC per location.
        let mut sc_per_loc = exec.po_loc();
        sc_per_loc.union_with(&com);

        // 2. Global happens-before.  The fence order is derived once and also
        //    handed to `extra_axioms` (the relaxed models reuse it for the
        //    no-thin-air axiom).
        let fence_order = self.fence_order(exec);
        let mut ghb = self.ppo(exec);
        ghb.union_with(&fence_order);
        ghb.union_with(&self.global_rf(exec));
        ghb.union_with(exec.co());
        ghb.union_with(&fr);

        // 3. RMW atomicity: for an atomic pair (r, w), no other write w' may
        //    satisfy fr(r, w') and co(w', w).
        let atomicity_violations = rmw_atomicity_violations(exec, &fr);

        let mut axioms = vec![
            Axiom::Acyclic {
                name: "sc-per-location",
                relation: sc_per_loc,
            },
            Axiom::Acyclic {
                name: "ghb",
                relation: ghb,
            },
            Axiom::Empty {
                name: "rmw-atomicity",
                relation: atomicity_violations,
            },
        ];
        axioms.extend(self.extra_axioms(exec, &fence_order));
        axioms
    }
}

/// Computes the set of RMW pairs whose atomicity is violated.
///
/// Returns a relation containing `(read_half, write_half)` for every atomic
/// read-modify-write where some other write to the same address is coherence
/// ordered after the read's source but before the write half.
pub fn rmw_atomicity_violations(exec: &CandidateExecution, fr: &Relation) -> Relation {
    let mut violations = Relation::new();
    // Collect RMW pairs: same iiid, read half and write half.
    let mut rmw_pairs = Vec::new();
    for r in exec
        .events()
        .iter()
        .filter(|e| e.kind.is_rmw() && e.is_read())
    {
        for w in exec
            .events()
            .iter()
            .filter(|e| e.kind.is_rmw() && e.is_write())
        {
            if r.iiid.is_some() && r.iiid == w.iiid {
                rmw_pairs.push((r.id, w.id));
            }
        }
    }
    for (r, w) in rmw_pairs {
        // fr(r, w') and co(w', w) for some w' != w means a write intervened.
        for w_prime in fr.successors(r) {
            if w_prime != w && exec.co().contains(w_prime, w) {
                violations.insert(r, w);
                break;
            }
        }
    }
    violations
}

/// Combinator: program order restricted to memory accesses (fences removed),
/// as a relation between memory events only.
pub fn po_mem(exec: &CandidateExecution) -> Relation {
    exec.po().filter(|a, b| {
        exec.event(a).kind.is_memory_access() && exec.event(b).kind.is_memory_access()
    })
}

/// Combinator: same-address program order minus write→read pairs — the
/// portion of `po-loc` the relaxed models preserve in `ppo`.
///
/// Same-address write→read ordering is deliberately excluded: it is already
/// enforced (together with value agreement) by the **sc-per-location** axiom,
/// and excluding it from `ppo` keeps every relaxed model's `ghb` inside TSO's,
/// which is what makes model strength monotone (TSO's `ppo` drops all W→R
/// pairs, same-address or not).
pub fn po_loc_preserved(exec: &CandidateExecution) -> Relation {
    exec.po_loc()
        .filter(|a, b| !(exec.event(a).is_write() && exec.event(b).is_read()))
}

/// Combinator: the union of all recorded syntactic dependencies
/// (address, data and control edges), i.e. the dependency-ordered part of the
/// preserved program order of the relaxed models.
pub fn dependency_order(exec: &CandidateExecution) -> Relation {
    exec.deps().union_all()
}

/// Combinator: closes a fence order cumulatively with external reads-from.
///
/// Returns `base ∪ (rfe ; base) ∪ (base ; rfe) ∪ (rfe ; base ; rfe)`: writes
/// propagated to a thread before its fence (A-cumulativity) and reads that
/// observe a write ordered by the fence (B-cumulativity) inherit the fence's
/// ordering.  This is what makes `MP+sync+addr`-style shapes forbidden under
/// the non-multi-copy-atomic models, where `rfe` itself is not global.
pub fn cumulative(exec: &CandidateExecution, base: &Relation) -> Relation {
    let rfe = exec.rf_external();
    let mut out = base.clone();
    let before = rfe.compose(base);
    out.union_with(&before.compose(&rfe));
    out.union_with(&before);
    out.union_with(&base.compose(&rfe));
    out
}

/// Builds the relaxed models' **no-thin-air** axiom: `deps ∪ fence ∪ rfe`
/// must be acyclic.
///
/// Without reads-from in the global happens-before, a load-buffering cycle
/// through dependencies (`LB+deps`) would go unnoticed; this axiom restores
/// the causality requirement without making the model multi-copy-atomic
/// (IRIW-style shapes stay allowed because `co`/`fr` are not part of it).
pub fn no_thin_air_axiom(exec: &CandidateExecution, fence_order: &Relation) -> Axiom {
    let mut hb = dependency_order(exec);
    hb.union_with(fence_order);
    hb.union_with(&exec.rf_external());
    Axiom::Acyclic {
        name: "no-thin-air",
        relation: hb,
    }
}

/// Combinator: pairs of memory accesses separated (in program order) by a
/// fence satisfying `matches`, or by a fence-implying RMW.
pub fn fence_separated<F>(exec: &CandidateExecution, matches: F) -> Relation
where
    F: Fn(crate::event::FenceKind) -> bool,
{
    let po = exec.po();
    let mut out = Relation::new();
    let fencelike: Vec<_> = exec
        .events()
        .iter()
        .filter(|e| match e.kind {
            crate::event::EventKind::Fence(k) => matches(k),
            // x86 locked RMWs drain the store buffer: they order everything
            // before them against everything after them.
            crate::event::EventKind::RmwRead | crate::event::EventKind::RmwWrite => true,
            _ => false,
        })
        .map(|e| e.id)
        .collect();
    for f in fencelike {
        let f_is_mem = exec.event(f).kind.is_memory_access();
        let mut before: Vec<_> = exec
            .events()
            .iter()
            .filter(|e| e.kind.is_memory_access() && po.contains(e.id, f))
            .map(|e| e.id)
            .collect();
        let mut after: Vec<_> = exec
            .events()
            .iter()
            .filter(|e| e.kind.is_memory_access() && po.contains(f, e.id))
            .map(|e| e.id)
            .collect();
        // A fence-implying memory access (RMW half) is itself ordered against
        // everything on both sides: on x86 a locked instruction's write is
        // globally performed before any later read of the same core.
        if f_is_mem {
            before.push(f);
            after.push(f);
        }
        for &a in &before {
            for &b in &after {
                if a != b {
                    out.insert(a, b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Address, FenceKind, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;

    #[test]
    fn axiom_accessors() {
        let a = Axiom::Acyclic {
            name: "ghb",
            relation: Relation::new(),
        };
        assert_eq!(a.name(), "ghb");
        assert!(a.relation().is_empty());
        assert_eq!(format!("{a}"), "acyclic(ghb)");
        let e = Axiom::Empty {
            name: "rmw-atomicity",
            relation: Relation::new(),
        };
        assert_eq!(format!("{e}"), "empty(rmw-atomicity)");
    }

    #[test]
    fn fence_separated_orders_across_mfence() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        b.fence(p0, FenceKind::Full);
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(fo.contains(w, r));
    }

    #[test]
    fn fence_separated_ignores_non_matching_fences() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        b.fence(p0, FenceKind::StoreStore);
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(!fo.contains(w, r));
    }

    #[test]
    fn rmw_implies_fence_order() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let w = b.write(p0, Address(0x10), Value(1));
        let (rr, rw) = b.rmw(p0, Address(0x30), Value(0), Value(7));
        let r = b.read(p0, Address(0x20), Value(0));
        b.reads_from_initial(rr);
        b.reads_from_initial(r);
        b.coherence_after_initial(w);
        b.coherence_after_initial(rw);
        let exec = b.build();
        let fo = fence_separated(&exec, |k| k == FenceKind::Full);
        assert!(fo.contains(w, r), "W -> RMW -> R must be ordered");
    }

    #[test]
    fn model_kind_registry_is_consistent() {
        assert_eq!(ModelKind::ALL.len(), 5);
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5, "model names must be unique");
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
            assert_eq!(
                ModelKind::parse(&kind.name().to_lowercase()),
                Some(kind),
                "parsing is case-insensitive"
            );
            assert_eq!(format!("{kind}"), kind.instance().name());
        }
        assert_eq!(ModelKind::parse("no-such-model"), None);
        assert_eq!(ModelKind::default(), ModelKind::Tso);
        assert!("tso".parse::<ModelKind>().is_ok());
        assert!("bogus".parse::<ModelKind>().is_err());
    }

    #[test]
    fn po_loc_preserved_drops_write_read_pairs() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let x = Address(0x10);
        let w = b.write(p0, x, Value(1));
        let r = b.read(p0, x, Value(1));
        let w2 = b.write(p0, x, Value(2));
        b.reads_from(w, r);
        b.coherence_after_initial(w);
        b.coherence(w, w2);
        let exec = b.build();
        let ppo = po_loc_preserved(&exec);
        assert!(!ppo.contains(w, r), "W->R same-address is not in ppo");
        assert!(ppo.contains(r, w2), "R->W same-address is preserved");
        assert!(ppo.contains(w, w2), "W->W same-address is preserved");
    }

    #[test]
    fn cumulative_closes_fence_order_with_rfe() {
        // P0: W x; F; W y.  P1: R y (reads wy).
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let wx = b.write(p0, Address(0x10), Value(1));
        b.fence(p0, FenceKind::Full);
        let wy = b.write(p0, Address(0x20), Value(2));
        let ry = b.read(p1, Address(0x20), Value(2));
        b.reads_from(wy, ry);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        let base = fence_separated(&exec, |k| k == FenceKind::Full);
        let cum = cumulative(&exec, &base);
        assert!(base.contains(wx, wy));
        assert!(!base.contains(wx, ry));
        assert!(cum.contains(wx, wy), "cumulative contains the base");
        assert!(cum.contains(wx, ry), "B-cumulativity: fence ; rfe");
    }

    #[test]
    fn dependency_order_unions_all_kinds() {
        use crate::event::DepKind;
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let r = b.read(p0, Address(0x10), Value(0));
        let r2 = b.read(p0, Address(0x20), Value(0));
        let w = b.write(p0, Address(0x30), Value(1));
        b.reads_from_initial(r);
        b.reads_from_initial(r2);
        b.coherence_after_initial(w);
        b.dependency(DepKind::Addr, r, r2);
        b.dependency(DepKind::Ctrl, r2, w);
        let exec = b.build();
        let deps = dependency_order(&exec);
        assert!(deps.contains(r, r2));
        assert!(deps.contains(r2, w));
        assert_eq!(deps.len(), 2);
    }

    #[test]
    fn atomicity_violation_detected() {
        // RMW reads from init, but another write is co-between init and the
        // RMW's write half.
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let (rr, rw) = b.rmw(p0, Address(0x10), Value(0), Value(7));
        let intruder = b.write(p1, Address(0x10), Value(3));
        b.reads_from_initial(rr);
        b.coherence_after_initial(intruder);
        b.coherence(intruder, rw);
        let exec = b.build();
        let fr = exec.fr();
        let v = rmw_atomicity_violations(&exec, &fr);
        assert!(v.contains(rr, rw));
    }

    #[test]
    fn atomicity_ok_when_no_intervening_write() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let (rr, rw) = b.rmw(p0, Address(0x10), Value(0), Value(7));
        b.reads_from_initial(rr);
        b.coherence_after_initial(rw);
        let exec = b.build();
        let fr = exec.fr();
        let v = rmw_atomicity_violations(&exec, &fr);
        assert!(v.is_empty());
    }
}
