//! An ARMv8-flavoured relaxed model with dependency ordering.
//!
//! The model keeps the shape the paper sketches for weaker-than-TSO targets
//! (§5.2.1): plain accesses to different addresses are freely reordered, but
//!
//! * syntactic **dependencies** (address/data/control) are preserved program
//!   order — `MP+dmb+addr` is forbidden while plain `MP` is allowed;
//! * the full **`dmb`-style fence** ([`FenceKind::Full`]) orders everything
//!   across it and is *cumulative* (closed with external reads-from), so
//!   orderings propagate through message-passing chains;
//! * **acquire/release-style fences** give one-directional ordering:
//!   [`FenceKind::Acquire`] orders earlier reads against everything after it,
//!   [`FenceKind::Release`] orders everything before it against later writes;
//! * the x86-style store-store / load-load fences are honoured conservatively
//!   (`DMB ST` / `DMB LD`-like);
//! * reads-from is **not** globally ordering (`global_rf` is empty): stores
//!   are not multi-copy atomic, so `IRIW` without fences is allowed;
//! * a **no-thin-air** axiom (`deps ∪ fence ∪ rfe` acyclic) keeps
//!   `LB+deps`-style causality cycles forbidden despite the non-MCA `rf`.
//!
//! The model is deliberately "ARM-ish", not ARMv8-faithful: real ARMv8 is
//! other-multi-copy-atomic (it forbids `WRC+addrs`), which a single
//! global-happens-before axiom cannot express without making `rfe` global.
//! The simplification keeps the model strictly between TSO and [`Rmo`] in
//! strength, which the monotonicity property tests rely on.
//!
//! [`Rmo`]: crate::model::relaxed::Rmo

use crate::event::FenceKind;
use crate::execution::CandidateExecution;
use crate::model::{
    cumulative, dependency_order, fence_separated, no_thin_air_axiom, po_loc_preserved,
    Architecture, Axiom,
};
use crate::relation::Relation;

/// The ARMv8-flavoured relaxed memory model.
///
/// ```
/// use mcversi_mcm::model::armish::Armish;
/// use mcversi_mcm::model::Architecture;
/// assert_eq!(Armish::default().name(), "ARMish");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Armish;

impl Architecture for Armish {
    fn name(&self) -> &'static str {
        "ARMish"
    }

    fn ppo(&self, exec: &CandidateExecution) -> Relation {
        let mut ppo = dependency_order(exec);
        ppo.union_with(&po_loc_preserved(exec));
        ppo
    }

    fn fence_order(&self, exec: &CandidateExecution) -> Relation {
        let full = fence_separated(exec, |k| k == FenceKind::Full);
        let mut out = cumulative(exec, &full);
        let acq = fence_separated(exec, |k| k == FenceKind::Acquire)
            .filter(|a, _| exec.event(a).is_read());
        let rel = fence_separated(exec, |k| k == FenceKind::Release)
            .filter(|_, b| exec.event(b).is_write());
        let ss = fence_separated(exec, |k| k == FenceKind::StoreStore)
            .filter(|a, b| exec.event(a).is_write() && exec.event(b).is_write());
        let ll = fence_separated(exec, |k| k == FenceKind::LoadLoad)
            .filter(|a, b| exec.event(a).is_read() && exec.event(b).is_read());
        out.union_with(&acq);
        out.union_with(&rel);
        out.union_with(&ss);
        out.union_with(&ll);
        out
    }

    fn global_rf(&self, _exec: &CandidateExecution) -> Relation {
        // Non-multi-copy-atomic: no reads-from edge is globally ordering on
        // its own; ordering only propagates through cumulative fences.
        Relation::new()
    }

    fn extra_axioms(&self, exec: &CandidateExecution, fence_order: &Relation) -> Vec<Axiom> {
        vec![no_thin_air_axiom(exec, fence_order)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::event::{Address, DepKind, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;
    use crate::model::tso::Tso;

    fn checker() -> Checker<'static> {
        Checker::new(&Armish)
    }

    /// Builds the weak MP outcome, optionally with a writer-side full fence
    /// and a reader-side address dependency.
    fn mp(writer_fence: Option<FenceKind>, reader_dep: bool) -> crate::CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        if let Some(kind) = writer_fence {
            b.fence(p0, kind);
        }
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(0));
        if reader_dep {
            b.dependency(DepKind::Addr, ry, rx);
        }
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        b.build()
    }

    /// Plain MP is allowed (no dependencies, no fences) — but forbidden under
    /// TSO: the headline cross-model verdict difference.
    #[test]
    fn plain_mp_differs_between_tso_and_armish() {
        let exec = mp(None, false);
        assert!(Checker::new(&Tso).check(&exec).is_violation());
        assert!(checker().check(&exec).is_valid());
    }

    /// A reader-side dependency alone does not forbid MP (the writer side is
    /// still unordered).
    #[test]
    fn mp_with_only_reader_dep_is_allowed() {
        assert!(checker().check(&mp(None, true)).is_valid());
    }

    /// The classic ARM recipe — dmb on the writer, address dependency on the
    /// reader — forbids the weak MP outcome, via fence cumulativity.
    #[test]
    fn mp_with_dmb_and_addr_dep_is_forbidden() {
        let verdict = checker().check(&mp(Some(FenceKind::Full), true));
        assert!(verdict.is_violation(), "{verdict:?}");
    }

    /// A writer fence without a reader dependency leaves the reader free to
    /// reorder its loads.
    #[test]
    fn mp_with_only_writer_fence_is_allowed() {
        assert!(checker()
            .check(&mp(Some(FenceKind::Full), false))
            .is_valid());
    }

    /// A release fence upstream orders the two writes, but without
    /// cumulativity towards the reader the weak outcome stays allowed.
    #[test]
    fn mp_with_release_writer_and_dep_is_allowed() {
        assert!(checker()
            .check(&mp(Some(FenceKind::Release), true))
            .is_valid());
    }

    /// LB with data dependencies on both threads is a causality cycle and is
    /// rejected by the no-thin-air axiom.
    #[test]
    fn lb_with_deps_is_forbidden() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let rx = b.read(p0, x, Value(2));
        let wy = b.write(p0, y, Value(1));
        b.dependency(DepKind::Data, rx, wy);
        let ry = b.read(p1, y, Value(1));
        let wx = b.write(p1, x, Value(2));
        b.dependency(DepKind::Data, ry, wx);
        b.reads_from(wx, rx);
        b.reads_from(wy, ry);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        let verdict = checker().check(&exec);
        assert!(verdict.is_violation());
        assert_eq!(verdict.violation().unwrap().axiom, "no-thin-air");
        // Without the dependencies the same outcome is plain LB: allowed.
        let mut b = ExecutionBuilder::new();
        let rx = b.read(p0, x, Value(2));
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let wx = b.write(p1, x, Value(2));
        b.reads_from(wx, rx);
        b.reads_from(wy, ry);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        assert!(checker().check(&b.build()).is_valid());
    }

    /// IRIW without fences is allowed: stores are not multi-copy atomic.
    #[test]
    fn iriw_is_allowed_without_fences() {
        let mut b = ExecutionBuilder::new();
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(ProcessorId(0), x, Value(1));
        let wy = b.write(ProcessorId(1), y, Value(1));
        let r2x = b.read(ProcessorId(2), x, Value(1));
        let r2y = b.read(ProcessorId(2), y, Value(0));
        let r3y = b.read(ProcessorId(3), y, Value(1));
        let r3x = b.read(ProcessorId(3), x, Value(0));
        b.dependency(DepKind::Addr, r2x, r2y);
        b.dependency(DepKind::Addr, r3y, r3x);
        b.reads_from(wx, r2x);
        b.reads_from_initial(r2y);
        b.reads_from(wy, r3y);
        b.reads_from_initial(r3x);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        assert!(checker().check(&exec).is_valid());
        // The same outcome is forbidden under TSO (multi-copy atomicity).
        assert!(Checker::new(&Tso).check(&exec).is_violation());
    }

    /// Acquire/release fences give one-directional ordering: SB stays allowed
    /// with them, but full fences forbid it.
    #[test]
    fn sb_requires_full_fences() {
        let build = |kind: FenceKind| {
            let mut b = ExecutionBuilder::new();
            let p0 = ProcessorId(0);
            let p1 = ProcessorId(1);
            let x = Address(0x100);
            let y = Address(0x200);
            let wx = b.write(p0, x, Value(1));
            b.fence(p0, kind);
            let ry = b.read(p0, y, Value(0));
            let wy = b.write(p1, y, Value(1));
            b.fence(p1, kind);
            let rx = b.read(p1, x, Value(0));
            b.reads_from_initial(ry);
            b.reads_from_initial(rx);
            b.coherence_after_initial(wx);
            b.coherence_after_initial(wy);
            b.build()
        };
        assert!(checker().check(&build(FenceKind::Full)).is_violation());
        assert!(checker().check(&build(FenceKind::Release)).is_valid());
        assert!(checker().check(&build(FenceKind::Acquire)).is_valid());
    }

    /// Same-address ordering (coherence) still holds without any fences.
    #[test]
    fn corr_still_forbidden() {
        let mut b = ExecutionBuilder::new();
        let x = Address(0x100);
        let wx = b.write(ProcessorId(0), x, Value(1));
        let r1 = b.read(ProcessorId(1), x, Value(1));
        let r2 = b.read(ProcessorId(1), x, Value(0));
        b.reads_from(wx, r1);
        b.reads_from_initial(r2);
        b.coherence_after_initial(wx);
        assert!(checker().check(&b.build()).is_violation());
    }
}
