//! Total Store Order (x86-TSO), the target model of the paper's evaluation.
//!
//! Under TSO a core may delay its stores in a FIFO store buffer, so the only
//! program-order relaxation is write→read: `ppo = po \ (W × R)`.  Store
//! forwarding means a load may read its own core's buffered store early, so
//! only *external* reads-from edges are globally ordering.  `MFENCE` and
//! locked read-modify-writes drain the store buffer and restore the W→R
//! ordering across them.

use crate::event::FenceKind;
use crate::execution::CandidateExecution;
use crate::model::{fence_separated, po_mem, Architecture};
use crate::relation::Relation;

/// The x86-TSO memory consistency model.
///
/// ```
/// use mcversi_mcm::model::tso::Tso;
/// use mcversi_mcm::model::Architecture;
/// assert_eq!(Tso::default().name(), "TSO");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tso;

impl Architecture for Tso {
    fn name(&self) -> &'static str {
        "TSO"
    }

    fn ppo(&self, exec: &CandidateExecution) -> Relation {
        // Program order between memory accesses, minus write -> read pairs.
        po_mem(exec).filter(|a, b| !(exec.event(a).is_write() && exec.event(b).is_read()))
    }

    fn fence_order(&self, exec: &CandidateExecution) -> Relation {
        // Only MFENCE (and fence-implying RMWs, handled by `fence_separated`)
        // restore W -> R ordering under TSO; SFENCE/LFENCE order nothing that
        // ppo does not already order.
        fence_separated(exec, |k| k == FenceKind::Full)
    }

    fn global_rf(&self, exec: &CandidateExecution) -> Relation {
        exec.rf_external()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::event::{Address, ProcessorId, Value};
    use crate::execution::ExecutionBuilder;

    fn checker() -> Checker<'static> {
        Checker::new(&Tso)
    }

    /// Store buffering (SB) with both reads observing zero is *allowed* under
    /// TSO — this is the classic TSO litmus result.
    #[test]
    fn tso_allows_store_buffering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let w0 = b.write(p0, x, Value(1));
        let r0 = b.read(p0, y, Value(0));
        let w1 = b.write(p1, y, Value(1));
        let r1 = b.read(p1, x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        assert!(checker().check(&exec).is_valid());
    }

    /// SB with MFENCE between each write and read is forbidden.
    #[test]
    fn tso_forbids_fenced_store_buffering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let w0 = b.write(p0, x, Value(1));
        b.fence(p0, FenceKind::Full);
        let r0 = b.read(p0, y, Value(0));
        let w1 = b.write(p1, y, Value(1));
        b.fence(p1, FenceKind::Full);
        let r1 = b.read(p1, x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        let verdict = checker().check(&exec);
        assert!(verdict.is_violation());
    }

    /// Message passing: stale read of `x` after observing the `y` flag is a
    /// read→read (or write→write) reordering, forbidden under TSO.
    #[test]
    fn tso_forbids_message_passing_violation() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(0));
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        assert!(checker().check(&exec).is_violation());
    }

    /// Load buffering (LB) outcome is forbidden under TSO (loads are not
    /// reordered after program-order-later stores).
    #[test]
    fn tso_forbids_load_buffering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let r0 = b.read(p0, x, Value(1));
        let w0 = b.write(p0, y, Value(1));
        let r1 = b.read(p1, y, Value(1));
        let w1 = b.write(p1, x, Value(1));
        b.reads_from(w1, r0);
        b.reads_from(w0, r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        let exec = b.build();
        assert!(checker().check(&exec).is_violation());
    }

    /// Store forwarding: a core reading its own buffered store before it is
    /// globally visible is allowed (internal rf is not global).
    #[test]
    fn tso_allows_store_forwarding() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        // P0: W x=1; R x=1 (forwarded); R y=0
        let wx = b.write(p0, x, Value(1));
        let rx = b.read(p0, x, Value(1));
        let ry = b.read(p0, y, Value(0));
        // P1: W y=1; R y=1 (forwarded); R x=0
        let wy = b.write(p1, y, Value(1));
        let ry1 = b.read(p1, y, Value(1));
        let rx1 = b.read(p1, x, Value(0));
        b.reads_from(wx, rx);
        b.reads_from(wy, ry1);
        b.reads_from_initial(ry);
        b.reads_from_initial(rx1);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        assert!(
            checker().check(&exec).is_valid(),
            "SB+forwarded reads is allowed under TSO"
        );
    }

    /// Write→write reordering observed through another thread is forbidden.
    #[test]
    fn tso_forbids_write_write_reordering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        // P0: W x=1; W y=1.  P1: R y=1; R x=0.  (Same shape as MP.)
        let wx = b.write(p0, x, Value(1));
        let wy = b.write(p0, y, Value(1));
        let ry = b.read(p1, y, Value(1));
        let rx = b.read(p1, x, Value(0));
        b.reads_from(wy, ry);
        b.reads_from_initial(rx);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        assert!(checker().check(&exec).is_violation());
    }

    /// Atomic RMWs act as fences: SB with RMWs instead of plain writes is
    /// forbidden.
    #[test]
    fn tso_forbids_store_buffering_with_rmw() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        let y = Address(0x200);
        let (r0x, w0x) = b.rmw(p0, x, Value(0), Value(1));
        let r0 = b.read(p0, y, Value(0));
        let (r1y, w1y) = b.rmw(p1, y, Value(0), Value(1));
        let r1 = b.read(p1, x, Value(0));
        b.reads_from_initial(r0x);
        b.reads_from_initial(r1y);
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0x);
        b.coherence_after_initial(w1y);
        let exec = b.build();
        assert!(checker().check(&exec).is_violation());
    }

    /// IRIW (independent reads of independent writes) is forbidden under TSO
    /// because TSO is multi-copy atomic.
    #[test]
    fn tso_forbids_iriw() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let p2 = ProcessorId(2);
        let p3 = ProcessorId(3);
        let x = Address(0x100);
        let y = Address(0x200);
        let wx = b.write(p0, x, Value(1));
        let wy = b.write(p1, y, Value(1));
        // P2 sees x then not y; P3 sees y then not x.
        let r2x = b.read(p2, x, Value(1));
        let r2y = b.read(p2, y, Value(0));
        let r3y = b.read(p3, y, Value(1));
        let r3x = b.read(p3, x, Value(0));
        b.reads_from(wx, r2x);
        b.reads_from_initial(r2y);
        b.reads_from(wy, r3y);
        b.reads_from_initial(r3x);
        b.coherence_after_initial(wx);
        b.coherence_after_initial(wy);
        let exec = b.build();
        assert!(checker().check(&exec).is_violation());
    }

    /// Read→read reordering to the *same* address is forbidden (this is the
    /// shape produced by the MESI,LQ+*,Inv bugs in the paper).
    #[test]
    fn tso_forbids_same_address_read_read_reordering() {
        let mut b = ExecutionBuilder::new();
        let p0 = ProcessorId(0);
        let p1 = ProcessorId(1);
        let x = Address(0x100);
        // P0: W x=1.  P1: R x=1; R x=0 (older value after newer).
        let wx = b.write(p0, x, Value(1));
        let r1 = b.read(p1, x, Value(1));
        let r2 = b.read(p1, x, Value(0));
        b.reads_from(wx, r1);
        b.reads_from_initial(r2);
        b.coherence_after_initial(wx);
        let exec = b.build();
        let verdict = checker().check(&exec);
        assert!(verdict.is_violation());
    }
}
