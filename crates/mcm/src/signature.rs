//! Execution signatures, the per-test verdict cache and the cycle oracle —
//! the machinery behind *collective checking*.
//!
//! Running the axiomatic checker on every simulated iteration is wasteful
//! when consecutive iterations of the same test keep producing the *same*
//! observable outcome.  MTraceCheck (Lustig et al., ISCA'17) showed that
//! deduplicating executions by a compact signature and verifying only the
//! novel outcomes cuts checking work by orders of magnitude.  This module
//! provides the three pieces the test runner composes:
//!
//! 1. [`ExecutionSignature`] — a canonical digest of one observed
//!    [`CandidateExecution`]: per-load reads-from attribution, the observed
//!    coherence edges and the final memory state, all keyed by instruction
//!    identity ([`Iiid`]) so the signature is invariant under event-id
//!    renaming, and scoped by the staged program's identity hash.  For a
//!    fixed staged program the static event structure (events, `po`, fences,
//!    dependencies) repeats every iteration, so the signature *determines*
//!    the candidate execution up to checker equivalence: two complete
//!    executions with equal signatures always receive the same [`Verdict`].
//! 2. [`SignatureCache`] — a per-test map from signature to verdict with
//!    hit/miss accounting.
//! 3. [`classify_execution`] — a zero-checker oracle built on the PR 5
//!    critical-cycle relaxation tables ([`ModelKind::forbids_cycle`]): an
//!    execution whose `po ∪ rf ∪ co ∪ fr` union is acyclic is
//!    SC-consistent and therefore valid under *every* supported model (all
//!    acyclicity axioms constrain subsets of that union), and a small cyclic
//!    execution can often be classified outright by extracting its critical
//!    cycles and consulting the closed-form oracle.
//!
//! [`Verdict`]: crate::checker::Verdict

use crate::checker::Verdict;
use crate::cycle::{CriticalCycle, CycleEdge, Dir};
use crate::event::{Address, DepKind, EventId, FenceKind, Iiid, Value};
use crate::execution::CandidateExecution;
use crate::model::{rmw_atomicity_violations, ModelKind};
use crate::relation::Relation;
use mcversi_telemetry as telemetry;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// Signature-cache hits (verdict replayed without any checking work).
static SIG_CACHE_HIT: telemetry::Counter = telemetry::Counter::new("mcm.sig.cache_hit");
/// Signature-cache misses (novel outcome signatures).
static SIG_CACHE_MISS: telemetry::Counter = telemetry::Counter::new("mcm.sig.cache_miss");
/// Novel signatures certified valid by the cycle oracle with zero checker runs.
static SIG_ORACLE_VALID: telemetry::Counter = telemetry::Counter::new("mcm.sig.oracle_valid");
/// Novel signatures the oracle flagged as containing a forbidden cycle
/// (the full checker still runs to produce the authoritative witness).
static SIG_ORACLE_HINT: telemetry::Counter = telemetry::Counter::new("mcm.sig.oracle_hint");
/// Least-recently-used signatures evicted from a full [`SignatureCache`].
static SIG_EVICT: telemetry::Counter = telemetry::Counter::new("mcm.sig.evict");

/// The attributed source of one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RfSource {
    /// The load observed the initial (pre-test) value of its address.
    Initial,
    /// The load observed the write issued by this instruction instance.
    Write(Iiid),
    /// The observer recorded no source for the load (partial observation).
    Unattributed,
}

/// The identity of one write in a coherence chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WriteTag {
    /// The synthetic initial write of the given address.
    Initial(Address),
    /// The write issued by this instruction instance.
    Instr(Iiid),
}

/// A canonical signature of one observed execution.
///
/// The signature captures, keyed by instruction identity rather than event
/// id (so it is invariant under the order in which the observer happened to
/// record events):
///
/// * `rf` — for every load, which write it observed;
/// * `co` — the observed immediate coherence edges (which write each write
///   directly overwrote);
/// * `finals` — the final memory state: per address, the value of the
///   coherence-maximal write;
/// * `program` — the staged program's identity hash, so signatures of
///   different tests never compare equal.
///
/// Equality is exact, not probabilistic: two executions with different
/// reads-from attribution, coherence order or final state always produce
/// unequal signatures (the components are canonical encodings, not lossy
/// hashes).  [`ExecutionSignature::digest`] additionally provides a compact
/// 64-bit digest for display and telemetry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecutionSignature {
    program: u64,
    rf: Vec<(Iiid, RfSource)>,
    co: Vec<(WriteTag, WriteTag)>,
    finals: Vec<(Address, Value)>,
}

impl ExecutionSignature {
    /// Computes the signature of `exec` under the given staged-program
    /// identity hash.
    pub fn of(exec: &CandidateExecution, program: u64) -> Self {
        let tag_of = |id: EventId| -> WriteTag {
            let ev = exec.event(id);
            match ev.iiid {
                Some(iiid) => WriteTag::Instr(iiid),
                None => WriteTag::Initial(ev.addr.unwrap_or(Address(0))),
            }
        };

        // Per-load reads-from attribution, keyed by the reader's iiid.
        let mut rf: Vec<(Iiid, RfSource)> = Vec::new();
        for read in exec.reads() {
            let Some(iiid) = read.iiid else { continue };
            let source = match exec.rf().predecessors(read.id).first() {
                Some(&w) => match exec.event(w).iiid {
                    Some(src) => RfSource::Write(src),
                    None => RfSource::Initial,
                },
                None => RfSource::Unattributed,
            };
            rf.push((iiid, source));
        }
        rf.sort_unstable();

        // Observed immediate coherence edges.
        let mut co: Vec<(WriteTag, WriteTag)> = exec
            .co_observed()
            .iter()
            .map(|(a, b)| (tag_of(a), tag_of(b)))
            .collect();
        co.sort_unstable();

        // Final memory state: per address, the value of the write with no
        // coherence successor (deterministically tie-broken by tag when the
        // observed order is partial).
        let mut finals: Vec<(Address, Value)> = Vec::new();
        for addr in exec.addresses() {
            let writes: Vec<&crate::event::Event> = exec.writes_to(addr).collect();
            if writes.is_empty() {
                continue;
            }
            let maximal = writes
                .iter()
                .filter(|w| {
                    !exec
                        .co()
                        .successors(w.id)
                        .any(|s| exec.event(s).addr == Some(addr))
                })
                .max_by_key(|w| tag_of(w.id));
            if let Some(w) = maximal {
                finals.push((addr, w.value));
            }
        }
        finals.sort_unstable();

        ExecutionSignature {
            program,
            rf,
            co,
            finals,
        }
    }

    /// The staged-program identity hash this signature was computed under.
    pub fn program(&self) -> u64 {
        self.program
    }

    /// A compact 64-bit digest of the signature (for display and telemetry;
    /// cache lookups use full structural equality, not this digest).
    pub fn digest(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish()
    }
}

/// Default capacity of a [`SignatureCache`], in distinct signatures.
///
/// Far above what one test-run's iteration budget can produce in practice,
/// so eviction only engages on pathological campaigns (huge iteration counts
/// with near-total non-determinism) — exactly the case the bound exists for.
pub const DEFAULT_SIGNATURE_CAPACITY: usize = 4096;

/// A per-test cache mapping outcome signatures to checker verdicts.
///
/// The cache is scoped to one staged program (one test-run): the runner
/// creates a fresh cache each time it stages a test, seeded with the
/// program's identity hash.  Lookups count hits and misses both locally and
/// through the `mcm.sig.cache_hit` / `mcm.sig.cache_miss` telemetry
/// counters.
///
/// The cache is bounded: at most [`capacity`](Self::capacity) verdicts are
/// retained (default [`DEFAULT_SIGNATURE_CAPACITY`]), and inserting beyond
/// that evicts the least-recently-used signature — counted locally and on
/// the `mcm.sig.evict` telemetry counter — so long campaigns cannot grow
/// memory without bound.  An evicted verdict is re-derived on the next
/// sighting (a miss), never answered incorrectly.
#[derive(Debug)]
pub struct SignatureCache {
    program: u64,
    /// Verdict plus the use-stamp of the entry's most recent touch.
    verdicts: HashMap<ExecutionSignature, (Verdict, u64)>,
    /// Use-stamp → signature, ordered oldest first (the eviction index).
    by_stamp: std::collections::BTreeMap<u64, ExecutionSignature>,
    next_stamp: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for SignatureCache {
    fn default() -> Self {
        SignatureCache::new(0)
    }
}

impl SignatureCache {
    /// Creates an empty cache for the given staged-program identity hash,
    /// with the default capacity.
    pub fn new(program: u64) -> Self {
        Self::with_capacity(program, DEFAULT_SIGNATURE_CAPACITY)
    }

    /// Creates an empty cache with an explicit capacity (clamped to at least
    /// one entry).
    pub fn with_capacity(program: u64, capacity: usize) -> Self {
        SignatureCache {
            program,
            verdicts: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            next_stamp: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The staged-program identity hash the cache is scoped to.
    pub fn program(&self) -> u64 {
        self.program
    }

    /// The maximum number of verdicts the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Computes the signature of `exec` under this cache's program identity.
    pub fn signature_of(&self, exec: &CandidateExecution) -> ExecutionSignature {
        ExecutionSignature::of(exec, self.program)
    }

    /// Looks up the cached verdict for a signature, counting a hit or miss.
    /// A hit refreshes the entry's recency.
    pub fn lookup(&mut self, signature: &ExecutionSignature) -> Option<Verdict> {
        let stamp = self.next_stamp;
        match self.verdicts.get_mut(signature) {
            Some((verdict, used)) => {
                self.hits += 1;
                SIG_CACHE_HIT.incr();
                let verdict = verdict.clone();
                self.by_stamp.remove(used);
                *used = stamp;
                self.by_stamp.insert(stamp, signature.clone());
                self.next_stamp += 1;
                Some(verdict)
            }
            None => {
                self.misses += 1;
                SIG_CACHE_MISS.incr();
                None
            }
        }
    }

    /// Records the verdict for a signature, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&mut self, signature: ExecutionSignature, verdict: Verdict) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((_, used)) = self.verdicts.get(&signature) {
            self.by_stamp.remove(used);
        } else if self.verdicts.len() >= self.capacity {
            if let Some((&oldest, _)) = self.by_stamp.iter().next() {
                if let Some(victim) = self.by_stamp.remove(&oldest) {
                    self.verdicts.remove(&victim);
                    self.evictions += 1;
                    SIG_EVICT.incr();
                }
            }
        }
        self.by_stamp.insert(stamp, signature.clone());
        self.verdicts.insert(signature, (verdict, stamp));
    }

    /// Number of distinct signatures with a recorded verdict.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Returns `true` when no verdict has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to keep the cache within its capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Largest execution (event count) the cycle-extraction tier of the oracle
/// attempts; bigger executions fall back to [`OracleVerdict::Undecided`]
/// after the (cheap) SC-consistency test.
const ORACLE_EVENT_CAP: usize = 48;
/// Simple-cycle enumeration bounds: beyond any of these the oracle abstains.
const ORACLE_MAX_CYCLES: usize = 128;
const ORACLE_MAX_STEPS: usize = 50_000;
const ORACLE_MAX_CYCLE_LEN: usize = 16;

/// The cycle oracle's classification of one execution (see
/// [`classify_execution`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// `po ∪ rf ∪ co ∪ fr` is acyclic (and RMW atomicity holds): the
    /// execution is SC-consistent, hence valid under every supported model.
    ScConsistent,
    /// Every simple communication/program-order cycle of the execution was
    /// extracted, classified as a critical cycle and found *allowed* by the
    /// model's relaxation tables: the execution is valid, with zero checker
    /// runs.
    AllowedCycles,
    /// Some extracted critical cycle is forbidden by the model.  The caller
    /// should run the full checker to obtain the authoritative
    /// [`Violation`](crate::checker::Violation) witness.
    ForbiddenCycle,
    /// The oracle makes no claim (large execution, enumeration bounds hit,
    /// an unclassifiable cycle, RMW events on a cycle, …); the caller must
    /// fall back to the full checker.
    Undecided,
}

impl OracleVerdict {
    /// Returns `true` when the oracle certifies the execution valid with
    /// zero checker invocations.
    pub fn certifies_valid(self) -> bool {
        matches!(
            self,
            OracleVerdict::ScConsistent | OracleVerdict::AllowedCycles
        )
    }
}

/// Classifies an execution against `model` using only the PR 5 closed-form
/// cycle oracle — no axiomatic checker run.
///
/// Soundness rests on two facts about the supported model family:
///
/// * every acyclicity axiom of every [`ModelKind`] constrains a subset of
///   `po ∪ rf ∪ co ∪ fr` (ppo and fence order are subsets of `po`, global
///   rf a subset of `rf`), so an execution whose union relation is acyclic
///   satisfies them all;
/// * the only emptiness axiom is RMW atomicity, which is tested directly
///   via [`rmw_atomicity_violations`].
///
/// A claim of [`OracleVerdict::ForbiddenCycle`] is *advisory*: callers
/// re-run the checker for the authoritative witness, so a misclassified
/// cycle can cost a checker run but never an incorrect verdict.  The
/// conformance gate in `mcversi-bench` pins the oracle's agreement with the
/// checker over the whole enumerated litmus corpus.
pub fn classify_execution(exec: &CandidateExecution, model: ModelKind) -> OracleVerdict {
    let fr = exec.fr();
    if !rmw_atomicity_violations(exec, &fr).is_empty() {
        return OracleVerdict::Undecided;
    }
    let mut union = exec.po().clone();
    union.union_with(exec.rf());
    union.union_with(exec.co());
    union.union_with(&fr);
    if union.is_acyclic() {
        return OracleVerdict::ScConsistent;
    }
    if exec.len() > ORACLE_EVENT_CAP {
        return OracleVerdict::Undecided;
    }
    let Some(cycles) = simple_cycles(&union) else {
        return OracleVerdict::Undecided;
    };
    let mut all_classified = true;
    let mut seen: BTreeSet<CriticalCycle> = BTreeSet::new();
    for cycle in &cycles {
        match extract_critical_cycle(exec, &fr, cycle) {
            Some(critical) => {
                let canonical = critical.canonicalize();
                if seen.insert(canonical.clone()) && model.forbids_cycle(&canonical) {
                    return OracleVerdict::ForbiddenCycle;
                }
            }
            None => all_classified = false,
        }
    }
    if all_classified {
        OracleVerdict::AllowedCycles
    } else {
        OracleVerdict::Undecided
    }
}

/// Counts one oracle zero-checker certification (`mcm.sig.oracle_valid`).
pub fn record_oracle_valid() {
    SIG_ORACLE_VALID.incr();
}

/// Counts one batched-signature dedup hit (`mcm.sig.cache_hit`): a novel
/// signature re-observed before its deferred collective verdict was computed
/// — deduplicated exactly like a cached one.
pub fn record_batched_hit() {
    SIG_CACHE_HIT.incr();
}

/// Counts one oracle forbidden-cycle hint (`mcm.sig.oracle_hint`).
pub fn record_oracle_hint() {
    SIG_ORACLE_HINT.incr();
}

/// Enumerates every simple cycle of `rel` (each reported once, starting at
/// its smallest event id), or `None` when the bounds are exceeded.
fn simple_cycles(rel: &Relation) -> Option<Vec<Vec<EventId>>> {
    let nodes: Vec<EventId> = rel.nodes().into_iter().collect();
    let mut cycles: Vec<Vec<EventId>> = Vec::new();
    let mut steps = 0usize;
    for &root in &nodes {
        let mut path = vec![root];
        let mut on_path: BTreeSet<EventId> = BTreeSet::new();
        on_path.insert(root);
        if !dfs_cycles(rel, root, &mut path, &mut on_path, &mut cycles, &mut steps) {
            return None;
        }
    }
    Some(cycles)
}

/// Depth-first enumeration of simple cycles through `root` using only nodes
/// `>= root`; returns `false` when a bound is exceeded.
fn dfs_cycles(
    rel: &Relation,
    root: EventId,
    path: &mut Vec<EventId>,
    on_path: &mut BTreeSet<EventId>,
    cycles: &mut Vec<Vec<EventId>>,
    steps: &mut usize,
) -> bool {
    let current = *path.last().expect("path is never empty");
    for next in rel.successors(current) {
        *steps += 1;
        if *steps > ORACLE_MAX_STEPS {
            return false;
        }
        if next == root {
            cycles.push(path.clone());
            if cycles.len() > ORACLE_MAX_CYCLES {
                return false;
            }
        } else if next > root && !on_path.contains(&next) && path.len() < ORACLE_MAX_CYCLE_LEN {
            path.push(next);
            on_path.insert(next);
            let ok = dfs_cycles(rel, root, path, on_path, cycles, steps);
            path.pop();
            on_path.remove(&next);
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Attempts to reconstruct a validated [`CriticalCycle`] from a raw simple
/// cycle of `po ∪ rf ∪ co ∪ fr`; returns `None` whenever any step is
/// ambiguous, so a `Some` classification is always faithful.
fn extract_critical_cycle(
    exec: &CandidateExecution,
    fr: &Relation,
    cycle: &[EventId],
) -> Option<CriticalCycle> {
    // Drop fence events from the cycle (program order is transitive, so the
    // detour through a fence implies the direct po edge); reject cycles
    // through RMW halves or initial writes — the critical-cycle vocabulary
    // does not model them.
    let mut accesses: Vec<EventId> = Vec::new();
    for &id in cycle {
        let ev = exec.event(id);
        if ev.is_fence() {
            continue;
        }
        if ev.kind.is_rmw() || ev.iiid.is_none() || ev.addr.is_none() {
            return None;
        }
        accesses.push(id);
    }
    let n = accesses.len();
    if n < 4 {
        return None;
    }

    let mut edges: Vec<CycleEdge> = Vec::with_capacity(n);
    for i in 0..n {
        let a = accesses[i];
        let b = accesses[(i + 1) % n];
        edges.push(classify_edge(exec, fr, a, b)?);
    }

    // Collapse composable external runs (`ws;ws = ws`, `fr;ws = fr`,
    // `rf;fr ⊆ ws`): the raw cycle may take a long way around a coherence
    // chain where the critical cycle uses the single composed edge.
    loop {
        let n = accesses.len();
        if n < 4 {
            return None;
        }
        let composed = (0..n).find_map(|i| {
            let j = (i + 1) % n;
            match (edges[i], edges[j]) {
                (CycleEdge::Ws, CycleEdge::Ws) => Some((i, CycleEdge::Ws)),
                (CycleEdge::Fr, CycleEdge::Ws) => Some((i, CycleEdge::Fr)),
                (CycleEdge::Rf, CycleEdge::Fr) => Some((i, CycleEdge::Ws)),
                _ => None,
            }
        });
        match composed {
            Some((i, merged)) => {
                let j = (i + 1) % n;
                edges[i] = merged;
                edges.remove(j);
                accesses.remove(j);
            }
            None => break,
        }
    }

    // Faithfulness guards the validator cannot express: external edges must
    // connect same-address accesses of different threads, internal edges
    // different-address accesses of the same thread.
    let n = accesses.len();
    let mut dirs: Vec<Dir> = Vec::with_capacity(n);
    for &id in &accesses {
        let ev = exec.event(id);
        dirs.push(if ev.is_read() { Dir::R } else { Dir::W });
    }
    for i in 0..n {
        let a = exec.event(accesses[i]);
        let b = exec.event(accesses[(i + 1) % n]);
        let same_thread = a.iiid.map(|x| x.pid) == b.iiid.map(|x| x.pid);
        let same_addr = a.addr == b.addr;
        if edges[i].is_external() {
            if same_thread || !same_addr {
                return None;
            }
        } else if !same_thread || same_addr {
            return None;
        }
    }

    CriticalCycle::new(edges, dirs).ok()
}

/// Classifies the edge `a → b` of a raw cycle, or `None` when ambiguous.
fn classify_edge(
    exec: &CandidateExecution,
    fr: &Relation,
    a: EventId,
    b: EventId,
) -> Option<CycleEdge> {
    let ea = exec.event(a);
    let eb = exec.event(b);
    let same_thread = ea.iiid.zip(eb.iiid).is_some_and(|(x, y)| x.pid == y.pid);
    if !same_thread {
        return match (ea.is_write(), eb.is_write()) {
            (true, false) if exec.rf().contains(a, b) => Some(CycleEdge::Rf),
            (true, true) if exec.co().contains(a, b) => Some(CycleEdge::Ws),
            (false, true) if fr.contains(a, b) => Some(CycleEdge::Fr),
            _ => None,
        };
    }
    if !exec.po().contains(a, b) {
        return None;
    }
    // Fences separating the pair: exactly one flavour is expressible.
    let kinds: BTreeSet<FenceKind> = exec
        .fences()
        .filter_map(|f| match f.kind {
            crate::event::EventKind::Fence(kind)
                if exec.po().contains(a, f.id) && exec.po().contains(f.id, b) =>
            {
                Some(kind)
            }
            _ => None,
        })
        .collect();
    // Dependencies carried by the pair.
    let dep_kinds: Vec<DepKind> = DepKind::ALL
        .into_iter()
        .filter(|&k| exec.deps().of(k).contains(a, b))
        .collect();
    match (kinds.len(), dep_kinds.len()) {
        (0, 0) => Some(CycleEdge::Po),
        (1, 0) => kinds.first().copied().map(CycleEdge::Fenced),
        (0, 1) => Some(CycleEdge::Dep(dep_kinds[0])),
        // A pair ordered by several flavours at once cannot be expressed as
        // one critical-cycle edge; abstain rather than under-approximate.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::event::ProcessorId;
    use crate::execution::ExecutionBuilder;

    fn p(i: u32) -> ProcessorId {
        ProcessorId(i)
    }

    /// SB with both reads observing the initial values (the weak outcome).
    fn sb_weak() -> CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let (x, y) = (Address(0x100), Address(0x200));
        let w0 = b.write(p(0), x, Value(1));
        let r0 = b.read(p(0), y, Value(0));
        let w1 = b.write(p(1), y, Value(1));
        let r1 = b.read(p(1), x, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        b.build()
    }

    /// SB with one read observing the other thread's write (SC-consistent).
    fn sb_strong() -> CandidateExecution {
        let mut b = ExecutionBuilder::new();
        let (x, y) = (Address(0x100), Address(0x200));
        let w0 = b.write(p(0), x, Value(1));
        let r0 = b.read(p(0), y, Value(1));
        let w1 = b.write(p(1), y, Value(1));
        let r1 = b.read(p(1), x, Value(0));
        b.reads_from(w1, r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w0);
        b.coherence_after_initial(w1);
        b.build()
    }

    #[test]
    fn signature_is_invariant_under_insertion_order() {
        // The same abstract execution built in two different event orders.
        let mut b = ExecutionBuilder::new();
        let (x, y) = (Address(0x100), Address(0x200));
        let w1 = b.write(p(1), y, Value(1));
        let r1 = b.read(p(1), x, Value(0));
        let w0 = b.write(p(0), x, Value(1));
        let r0 = b.read(p(0), y, Value(0));
        b.reads_from_initial(r0);
        b.reads_from_initial(r1);
        b.coherence_after_initial(w1);
        b.coherence_after_initial(w0);
        let permuted = b.build();
        let a = ExecutionSignature::of(&sb_weak(), 7);
        let b = ExecutionSignature::of(&permuted, 7);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn signature_distinguishes_rf_attribution() {
        let weak = ExecutionSignature::of(&sb_weak(), 7);
        let strong = ExecutionSignature::of(&sb_strong(), 7);
        assert_ne!(weak, strong);
    }

    #[test]
    fn signature_distinguishes_final_state_and_program() {
        let mut b = ExecutionBuilder::new();
        let x = Address(0x100);
        let w0 = b.write(p(0), x, Value(1));
        let w1 = b.write(p(1), x, Value(2));
        b.coherence_after_initial(w0);
        b.coherence(w0, w1);
        let one = b.build();

        let mut b = ExecutionBuilder::new();
        let w0 = b.write(p(0), x, Value(1));
        let w1 = b.write(p(1), x, Value(2));
        b.coherence_after_initial(w1);
        b.coherence(w1, w0);
        let two = b.build();

        let sig_one = ExecutionSignature::of(&one, 7);
        let sig_two = ExecutionSignature::of(&two, 7);
        assert_ne!(sig_one, sig_two, "reversed coherence must not collide");
        assert_ne!(
            ExecutionSignature::of(&one, 7),
            ExecutionSignature::of(&one, 8),
            "different staged programs must not collide"
        );
        assert_eq!(sig_one.program(), 7);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = SignatureCache::new(42);
        assert!(cache.is_empty());
        let sig = cache.signature_of(&sb_weak());
        assert_eq!(cache.lookup(&sig), None);
        cache.insert(sig.clone(), Verdict::Valid);
        assert_eq!(cache.lookup(&sig), Some(Verdict::Valid));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.program(), 42);
    }

    #[test]
    fn cache_capacity_is_bounded_with_lru_eviction() {
        let exec = sb_weak();
        // Distinct program hashes give cheap distinct signatures.
        let sig = |i: u64| ExecutionSignature::of(&exec, i);
        let mut cache = SignatureCache::with_capacity(0, 3);
        assert_eq!(cache.capacity(), 3);
        for i in 0..3 {
            cache.insert(sig(i), Verdict::Valid);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);
        // Touch sig(0) so sig(1) becomes the least-recently-used entry.
        assert_eq!(cache.lookup(&sig(0)), Some(Verdict::Valid));
        cache.insert(sig(3), Verdict::Valid);
        assert_eq!(cache.len(), 3, "the cache never exceeds its capacity");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(&sig(1)), None, "the LRU entry was evicted");
        assert_eq!(cache.lookup(&sig(0)), Some(Verdict::Valid));
        assert_eq!(cache.lookup(&sig(3)), Some(Verdict::Valid));
        // Overwriting an existing signature neither grows nor evicts.
        cache.insert(sig(0), Verdict::Valid);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        // The default capacity is pinned; degenerate capacities clamp to 1.
        assert_eq!(
            SignatureCache::new(1).capacity(),
            DEFAULT_SIGNATURE_CAPACITY
        );
        assert_eq!(DEFAULT_SIGNATURE_CAPACITY, 4096);
        assert_eq!(SignatureCache::with_capacity(0, 0).capacity(), 1);
    }

    #[test]
    fn oracle_certifies_sc_consistent_executions_for_every_model() {
        let exec = sb_strong();
        for model in ModelKind::ALL {
            assert_eq!(
                classify_execution(&exec, model),
                OracleVerdict::ScConsistent
            );
            assert!(Checker::new(model.instance()).check(&exec).is_valid());
        }
    }

    #[test]
    fn oracle_matches_checker_on_the_sb_weak_outcome() {
        let exec = sb_weak();
        for model in ModelKind::ALL {
            let oracle = classify_execution(&exec, model);
            let checker = Checker::new(model.instance()).check(&exec);
            match oracle {
                OracleVerdict::ForbiddenCycle => assert!(
                    checker.is_violation(),
                    "{model:?}: oracle forbids but checker allows"
                ),
                OracleVerdict::ScConsistent | OracleVerdict::AllowedCycles => assert!(
                    checker.is_valid(),
                    "{model:?}: oracle allows but checker forbids"
                ),
                OracleVerdict::Undecided => {}
            }
            // SB without fences: forbidden under SC only.
            if model == ModelKind::Sc {
                assert_eq!(oracle, OracleVerdict::ForbiddenCycle);
            } else {
                assert_eq!(oracle, OracleVerdict::AllowedCycles, "{model:?}");
            }
        }
    }

    #[test]
    fn oracle_abstains_on_rmw_atomicity_violations() {
        // An atomic pair broken by an intervening write: no cycle, but the
        // execution is invalid — the oracle must not certify it.
        let mut b = ExecutionBuilder::new();
        let x = Address(0x100);
        let (r, w) = b.rmw(p(0), x, Value(0), Value(1));
        let intruder = b.write(p(1), x, Value(7));
        b.reads_from_initial(r);
        b.coherence_after_initial(intruder);
        b.coherence(intruder, w);
        let exec = b.build();
        for model in ModelKind::ALL {
            assert_eq!(classify_execution(&exec, model), OracleVerdict::Undecided);
            assert!(
                Checker::new(model.instance()).check(&exec).is_violation(),
                "{model:?}: atomicity violation must be flagged"
            );
        }
    }
}
