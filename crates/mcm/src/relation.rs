//! Binary relations over events and the graph algorithms used by the checker.
//!
//! A [`Relation`] is a finite set of ordered pairs of [`EventId`]s, stored as
//! an adjacency map.  Axiomatic consistency models are phrased as constraints
//! (acyclicity, irreflexivity) over unions and compositions of such relations,
//! so this module provides the small relational algebra the checker needs:
//! union, composition, inverse, restriction, transitive closure, acyclicity
//! with cycle extraction, and topological ordering.

use crate::event::EventId;
use mcversi_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Transitive-closure computations.
static CLOSURE_CALLS: telemetry::Counter = telemetry::Counter::new("mcm.closure.calls");
/// Word-wise bitset row ORs performed inside closure sweeps (hot path).
static CLOSURE_ROW_SWEEPS: telemetry::Counter = telemetry::Counter::new("mcm.closure.row_sweeps");

/// A binary relation over [`EventId`]s.
///
/// The representation is an adjacency map from source to the ordered set of
/// targets.  All operations are deterministic (iteration order follows event
/// id order), which keeps checker output and test failures reproducible.
///
/// ```
/// use mcversi_mcm::relation::Relation;
/// use mcversi_mcm::event::EventId;
///
/// let mut r = Relation::new();
/// r.insert(EventId(0), EventId(1));
/// r.insert(EventId(1), EventId(2));
/// assert!(r.contains(EventId(0), EventId(1)));
/// assert!(!r.contains(EventId(0), EventId(2)));
/// assert!(r.transitive_closure().contains(EventId(0), EventId(2)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    edges: BTreeMap<EventId, BTreeSet<EventId>>,
    len: usize,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Relation {
            edges: BTreeMap::new(),
            len: 0,
        }
    }

    /// Creates a relation from an iterator of pairs.
    pub fn from_pairs<I: IntoIterator<Item = (EventId, EventId)>>(pairs: I) -> Self {
        let mut r = Relation::new();
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// Inserts the pair `(from, to)`. Returns `true` if it was not already present.
    pub fn insert(&mut self, from: EventId, to: EventId) -> bool {
        let inserted = self.edges.entry(from).or_default().insert(to);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Removes the pair `(from, to)`. Returns `true` if it was present.
    pub fn remove(&mut self, from: EventId, to: EventId) -> bool {
        if let Some(set) = self.edges.get_mut(&from) {
            if set.remove(&to) {
                self.len -= 1;
                if set.is_empty() {
                    self.edges.remove(&from);
                }
                return true;
            }
        }
        false
    }

    /// Returns `true` if the pair `(from, to)` is in the relation.
    pub fn contains(&self, from: EventId, to: EventId) -> bool {
        self.edges.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the relation contains no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.edges
            .iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
    }

    /// Successors of `from` (events ordered after it by one step of the relation).
    pub fn successors(&self, from: EventId) -> impl Iterator<Item = EventId> + '_ {
        self.edges.get(&from).into_iter().flatten().copied()
    }

    /// Predecessors of `to`.  Linear in the size of the relation.
    pub fn predecessors(&self, to: EventId) -> Vec<EventId> {
        self.iter()
            .filter_map(|(a, b)| if b == to { Some(a) } else { None })
            .collect()
    }

    /// All events that appear as source or target of at least one pair.
    pub fn nodes(&self) -> BTreeSet<EventId> {
        let mut nodes = BTreeSet::new();
        for (a, b) in self.iter() {
            nodes.insert(a);
            nodes.insert(b);
        }
        nodes
    }

    /// In-place union with another relation.
    pub fn union_with(&mut self, other: &Relation) {
        for (a, b) in other.iter() {
            self.insert(a, b);
        }
    }

    /// Union of `self` and `other`.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Union of an iterator of relations.
    pub fn union_all<'a, I: IntoIterator<Item = &'a Relation>>(rels: I) -> Relation {
        let mut out = Relation::new();
        for r in rels {
            out.union_with(r);
        }
        out
    }

    /// Intersection of `self` and `other`.
    pub fn intersection(&self, other: &Relation) -> Relation {
        Relation::from_pairs(self.iter().filter(|&(a, b)| other.contains(a, b)))
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation::from_pairs(self.iter().filter(|&(a, b)| !other.contains(a, b)))
    }

    /// Inverse relation: contains `(b, a)` for every `(a, b)` in `self`.
    pub fn inverse(&self) -> Relation {
        Relation::from_pairs(self.iter().map(|(a, b)| (b, a)))
    }

    /// Relational composition `self ; other`: `(a, c)` whenever `(a, b)` in
    /// `self` and `(b, c)` in `other` for some `b`.
    pub fn compose(&self, other: &Relation) -> Relation {
        let mut out = Relation::new();
        for (a, b) in self.iter() {
            for c in other.successors(b) {
                out.insert(a, c);
            }
        }
        out
    }

    /// Restriction of the relation to pairs satisfying `keep`.
    pub fn filter<F: Fn(EventId, EventId) -> bool>(&self, keep: F) -> Relation {
        Relation::from_pairs(self.iter().filter(|&(a, b)| keep(a, b)))
    }

    /// Transitive closure computed over dense per-node bitsets.
    ///
    /// Participating nodes are mapped to dense indices and reachability rows
    /// are 64-bit word vectors, so unions of whole successor sets are single
    /// word-wise OR sweeps instead of `BTreeSet` merges.  For acyclic
    /// relations (the common case: `co` is validated acyclic before closure)
    /// one pass in reverse topological order suffices — `O(V·E/64)` word
    /// operations; cyclic relations fall back to a per-node bitset BFS with
    /// identical semantics to the original implementation.
    pub fn transitive_closure(&self) -> Relation {
        CLOSURE_CALLS.incr();
        let dense = match DenseGraph::from_relation(self) {
            Some(dense) => dense,
            None => return Relation::new(),
        };
        let reach = match dense.topological_order() {
            Some(order) => dense.closure_acyclic(&order),
            None => dense.closure_bfs(),
        };
        dense.to_relation(&reach)
    }

    /// Returns `true` if the relation relates any event to itself.
    pub fn has_reflexive_pair(&self) -> bool {
        self.iter().any(|(a, b)| a == b)
    }

    /// Returns `true` if the relation is irreflexive after taking its
    /// transitive closure (i.e. no event reaches itself).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Finds a cycle if one exists and returns it as a list of events forming
    /// the cycle (each adjacent pair, and the last-to-first pair, are related).
    ///
    /// Uses an iterative depth-first search with tri-colour marking; the cycle
    /// is reconstructed from the DFS parent pointers when a back-edge is found.
    pub fn find_cycle(&self) -> Option<Vec<EventId>> {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour: BTreeMap<EventId, u8> = BTreeMap::new();
        let mut parent: BTreeMap<EventId, EventId> = BTreeMap::new();
        let roots: Vec<EventId> = self.edges.keys().copied().collect();

        for &root in &roots {
            if colour.get(&root).copied().unwrap_or(WHITE) != WHITE {
                continue;
            }
            colour.insert(root, GREY);
            // Stack frames: (node, successor list, next successor index).
            let mut stack: Vec<(EventId, Vec<EventId>, usize)> =
                vec![(root, self.successors(root).collect(), 0)];
            while !stack.is_empty() {
                let frame_len = stack.last().expect("non-empty").1.len();
                let frame_idx = stack.last().expect("non-empty").2;
                let frame_node = stack.last().expect("non-empty").0;
                if frame_idx < frame_len {
                    let succ = stack.last().expect("non-empty").1[frame_idx];
                    stack.last_mut().expect("non-empty").2 += 1;
                    match colour.get(&succ).copied().unwrap_or(WHITE) {
                        WHITE => {
                            parent.insert(succ, frame_node);
                            colour.insert(succ, GREY);
                            let succs: Vec<EventId> = self.successors(succ).collect();
                            stack.push((succ, succs, 0));
                        }
                        GREY => {
                            // Back-edge frame_node -> succ closes a cycle.
                            let mut cycle = vec![frame_node];
                            let mut cur = frame_node;
                            while cur != succ {
                                cur = parent[&cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    colour.insert(frame_node, BLACK);
                    stack.pop();
                }
            }
        }
        None
    }

    /// Returns a topological ordering of all nodes participating in the
    /// relation, or `None` if the relation is cyclic.
    ///
    /// Kahn's algorithm; ties are broken by event id so the result is
    /// deterministic.
    pub fn topological_sort(&self) -> Option<Vec<EventId>> {
        let nodes = self.nodes();
        let mut indegree: BTreeMap<EventId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for (_, b) in self.iter() {
            *indegree.get_mut(&b).expect("target in node set") += 1;
        }
        let mut ready: BTreeSet<EventId> = indegree
            .iter()
            .filter_map(|(&n, &d)| if d == 0 { Some(n) } else { None })
            .collect();
        let mut out = Vec::with_capacity(nodes.len());
        while let Some(&n) = ready.iter().next() {
            ready.remove(&n);
            out.push(n);
            for s in self.successors(n) {
                let d = indegree.get_mut(&s).expect("successor in node set");
                *d -= 1;
                if *d == 0 {
                    ready.insert(s);
                }
            }
        }
        if out.len() == nodes.len() {
            Some(out)
        } else {
            None
        }
    }
}

/// Dense bitset view of a relation used by [`Relation::transitive_closure`].
///
/// Participating nodes get contiguous indices; reachability rows are stored
/// as one flat `u64` word vector of `nodes.len() * words` entries so that
/// unioning a successor's full reachability set into a node's row is a plain
/// word-wise OR.
#[derive(Debug)]
struct DenseGraph {
    /// Participating events, sorted; the dense index is the position here.
    nodes: Vec<EventId>,
    /// Words per bitset row: `nodes.len().div_ceil(64)`.
    words: usize,
    /// Direct successors as dense indices.
    succs: Vec<Vec<u32>>,
    /// Direct-successor bitset rows, flattened.
    adj: Vec<u64>,
}

impl DenseGraph {
    /// Builds the dense view; `None` for an empty relation.
    fn from_relation(rel: &Relation) -> Option<DenseGraph> {
        if rel.is_empty() {
            return None;
        }
        let nodes: Vec<EventId> = rel.nodes().into_iter().collect();
        let index: BTreeMap<EventId, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let n = nodes.len();
        let words = n.div_ceil(64);
        let mut succs = vec![Vec::new(); n];
        let mut adj = vec![0u64; n * words];
        for (a, b) in rel.iter() {
            let i = index[&a] as usize;
            let j = index[&b];
            succs[i].push(j);
            adj[i * words + j as usize / 64] |= 1u64 << (j % 64);
        }
        Some(DenseGraph {
            nodes,
            words,
            succs,
            adj,
        })
    }

    /// Kahn topological order over dense indices, or `None` when cyclic.
    fn topological_order(&self) -> Option<Vec<u32>> {
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        for succs in &self.succs {
            for &s in succs {
                indegree[s as usize] += 1;
            }
        }
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &s in &self.succs[i as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// `rows[dst] |= rows[src]` for two distinct flattened bitset rows.
    fn or_row(rows: &mut [u64], words: usize, dst: usize, src: usize) {
        debug_assert_ne!(dst, src);
        CLOSURE_ROW_SWEEPS.incr();
        let (dst_row, src_row) = if dst < src {
            let (lo, hi) = rows.split_at_mut(src * words);
            (&mut lo[dst * words..(dst + 1) * words], &hi[..words])
        } else {
            let (lo, hi) = rows.split_at_mut(dst * words);
            (&mut hi[..words], &lo[src * words..(src + 1) * words])
        };
        for (d, s) in dst_row.iter_mut().zip(src_row) {
            *d |= *s;
        }
    }

    /// Closure of an acyclic graph: one sweep in reverse topological order,
    /// `reach[i] = adj[i] ∪ ⋃ reach[succ]` — `O(E)` row ORs total.
    fn closure_acyclic(&self, order: &[u32]) -> Vec<u64> {
        let mut reach = self.adj.clone();
        for &i in order.iter().rev() {
            for &s in &self.succs[i as usize] {
                Self::or_row(&mut reach, self.words, i as usize, s as usize);
            }
        }
        reach
    }

    /// Fallback closure for cyclic graphs: per-node BFS with a bitset visited
    /// row (keeps the original semantics, e.g. a node on a cycle reaches
    /// itself).
    fn closure_bfs(&self) -> Vec<u64> {
        let n = self.nodes.len();
        let mut reach = vec![0u64; n * self.words];
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..n {
            let row = &mut reach[i * self.words..(i + 1) * self.words];
            stack.clear();
            stack.extend(&self.succs[i]);
            while let Some(j) = stack.pop() {
                let word = j as usize / 64;
                let bit = 1u64 << (j % 64);
                if row[word] & bit == 0 {
                    row[word] |= bit;
                    stack.extend(&self.succs[j as usize]);
                }
            }
        }
        reach
    }

    /// Converts flattened reachability rows back into a [`Relation`].
    fn to_relation(&self, reach: &[u64]) -> Relation {
        let mut out = Relation::new();
        for (i, &from) in self.nodes.iter().enumerate() {
            let row = &reach[i * self.words..(i + 1) * self.words];
            for (w, &bits) in row.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let j = w * 64 + bits.trailing_zeros() as usize;
                    out.insert(from, self.nodes[j]);
                    bits &= bits - 1;
                }
            }
        }
        out
    }
}

impl FromIterator<(EventId, EventId)> for Relation {
    fn from_iter<I: IntoIterator<Item = (EventId, EventId)>>(iter: I) -> Self {
        Relation::from_pairs(iter)
    }
}

impl Extend<(EventId, EventId)> for Relation {
    fn extend<I: IntoIterator<Item = (EventId, EventId)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({a},{b})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::new();
        assert!(r.is_empty());
        assert!(r.insert(e(0), e(1)));
        assert!(!r.insert(e(0), e(1)));
        assert_eq!(r.len(), 1);
        assert!(r.contains(e(0), e(1)));
        assert!(!r.contains(e(1), e(0)));
        assert!(r.remove(e(0), e(1)));
        assert!(!r.remove(e(0), e(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn union_intersection_difference() {
        let a = Relation::from_pairs([(e(0), e(1)), (e(1), e(2))]);
        let b = Relation::from_pairs([(e(1), e(2)), (e(2), e(3))]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(e(1), e(2)));
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(e(0), e(1)));
    }

    #[test]
    fn inverse_and_compose() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(1), e(2))]);
        let inv = r.inverse();
        assert!(inv.contains(e(1), e(0)));
        assert!(inv.contains(e(2), e(1)));
        let comp = r.compose(&r);
        assert_eq!(comp.len(), 1);
        assert!(comp.contains(e(0), e(2)));
    }

    #[test]
    fn transitive_closure_chain() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(1), e(2)), (e(2), e(3))]);
        let tc = r.transitive_closure();
        assert!(tc.contains(e(0), e(3)));
        assert!(tc.contains(e(0), e(2)));
        assert!(tc.contains(e(1), e(3)));
        assert_eq!(tc.len(), 6);
    }

    /// Reference closure (the original BTree-based BFS) for differential
    /// testing of the bitset implementation.
    fn reference_closure(rel: &Relation) -> Relation {
        let mut out = Relation::new();
        for start in rel.nodes() {
            let mut stack: Vec<EventId> = rel.successors(start).collect();
            let mut seen: BTreeSet<EventId> = BTreeSet::new();
            while let Some(n) = stack.pop() {
                if seen.insert(n) {
                    out.insert(start, n);
                    stack.extend(rel.successors(n));
                }
            }
        }
        out
    }

    #[test]
    fn bitset_closure_matches_reference_on_random_graphs() {
        // Deterministic pseudo-random graphs: mixes of DAGs, cycles,
        // self-loops, sparse and dense regions, and node ids above 64 so
        // multi-word rows are exercised.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let nodes = 1 + (next() % 90) as u32;
            let edges = next() % (2 * nodes as u64 + 1);
            let mut rel = Relation::new();
            for _ in 0..edges {
                let a = (next() % nodes as u64) as u32;
                let b = (next() % nodes as u64) as u32;
                // Spread ids so dense indices differ from raw ids.
                rel.insert(e(a * 3 + 1), e(b * 3 + 1));
            }
            assert_eq!(
                rel.transitive_closure(),
                reference_closure(&rel),
                "case {case}: closure mismatch for {rel}"
            );
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(1), e(2)), (e(3), e(0))]);
        let tc = r.transitive_closure();
        assert_eq!(tc.transitive_closure(), tc);
    }

    #[test]
    fn acyclic_detection() {
        let dag = Relation::from_pairs([(e(0), e(1)), (e(0), e(2)), (e(1), e(3)), (e(2), e(3))]);
        assert!(dag.is_acyclic());
        assert!(dag.find_cycle().is_none());

        let cyc = Relation::from_pairs([(e(0), e(1)), (e(1), e(2)), (e(2), e(0))]);
        assert!(!cyc.is_acyclic());
        let cycle = cyc.find_cycle().expect("cycle exists");
        assert!(cycle.len() >= 2);
        // Every adjacent pair in the reported cycle must be an edge.
        for w in cycle.windows(2) {
            assert!(cyc.contains(w[0], w[1]), "cycle edge {:?} missing", w);
        }
        assert!(cyc.contains(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let r = Relation::from_pairs([(e(5), e(5))]);
        assert!(!r.is_acyclic());
        assert_eq!(r.find_cycle().unwrap(), vec![e(5)]);
        assert!(r.has_reflexive_pair());
    }

    #[test]
    fn two_node_cycle() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(1), e(0))]);
        let cycle = r.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn topological_sort_dag() {
        let r = Relation::from_pairs([(e(2), e(1)), (e(1), e(0)), (e(3), e(0))]);
        let order = r.topological_sort().expect("acyclic");
        let pos = |x: EventId| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(e(2)) < pos(e(1)));
        assert!(pos(e(1)) < pos(e(0)));
        assert!(pos(e(3)) < pos(e(0)));
    }

    #[test]
    fn topological_sort_rejects_cycles() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(1), e(0))]);
        assert!(r.topological_sort().is_none());
    }

    #[test]
    fn disconnected_components() {
        let r = Relation::from_pairs([(e(0), e(1)), (e(10), e(11)), (e(11), e(10))]);
        assert!(!r.is_acyclic());
        // The cycle reported must come from the cyclic component.
        let cycle = r.find_cycle().unwrap();
        assert!(cycle.contains(&e(10)) || cycle.contains(&e(11)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut r: Relation = [(e(0), e(1))].into_iter().collect();
        r.extend([(e(1), e(2)), (e(0), e(1))]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn display_lists_pairs() {
        let r = Relation::from_pairs([(e(0), e(1))]);
        assert_eq!(format!("{r}"), "{(e0,e1)}");
    }

    #[test]
    fn predecessors_and_nodes() {
        let r = Relation::from_pairs([(e(0), e(2)), (e(1), e(2))]);
        let preds = r.predecessors(e(2));
        assert_eq!(preds, vec![e(0), e(1)]);
        assert_eq!(r.nodes().len(), 3);
    }

    #[test]
    fn large_chain_acyclic_and_sorted() {
        let r = Relation::from_pairs((0..500u32).map(|i| (e(i), e(i + 1))));
        assert!(r.is_acyclic());
        let order = r.topological_sort().unwrap();
        assert_eq!(order.len(), 501);
        assert_eq!(order[0], e(0));
        assert_eq!(order[500], e(500));
    }

    #[test]
    fn large_cycle_detected() {
        let mut pairs: Vec<(EventId, EventId)> = (0..500u32).map(|i| (e(i), e(i + 1))).collect();
        pairs.push((e(500), e(0)));
        let r = Relation::from_pairs(pairs);
        assert!(!r.is_acyclic());
    }
}
