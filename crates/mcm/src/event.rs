//! Events and their identifying metadata.
//!
//! An *event* is a single memory-model-visible action: a read, a write, a
//! fence, or one half of a read-modify-write.  Each memory instruction of a
//! test maps to one event, except read-modify-write instructions which map to
//! a read event and a write event sharing the same instruction identifier
//! ([`Iiid`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hardware thread / processor (0-based).
///
/// A newtype so processor ids cannot be confused with addresses or values.
///
/// ```
/// use mcversi_mcm::event::ProcessorId;
/// let p = ProcessorId(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(pub u32);

impl ProcessorId {
    /// Returns the processor id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A byte address in the simulated physical address space.
///
/// Conflict order relations only relate events with equal addresses, so the
/// granularity at which addresses are compared matters: McVerSi relates events
/// at the granularity of the access (all test accesses are aligned and of
/// equal size), which this newtype models directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address(pub u64);

impl Address {
    /// Returns the cache-line-aligned address for a given line size.
    ///
    /// ```
    /// use mcversi_mcm::event::Address;
    /// assert_eq!(Address(0x1234).line(64), Address(0x1200));
    /// ```
    pub fn line(self, line_bytes: u64) -> Address {
        Address(self.0 / line_bytes * line_bytes)
    }

    /// Raw numeric address.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A data value read or written by an event.
///
/// McVerSi assigns each dynamic write a globally unique value before the test
/// executes, so any observed read value maps back to exactly one producing
/// write ("write unique ID" scheme, §4.1 of the paper).  The initial value of
/// every location is zero.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Value(pub u64);

impl Value {
    /// The initial (pre-test) value of every memory location.
    pub const INITIAL: Value = Value(0);

    /// Returns `true` if this is the initial value.
    pub fn is_initial(self) -> bool {
        self == Self::INITIAL
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Instruction instance identifier: which processor issued the instruction and
/// at which program-order index.
///
/// Events originating from the same instruction (e.g. the read and write halves
/// of an atomic read-modify-write) share the same `Iiid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Iiid {
    /// Issuing processor.
    pub pid: ProcessorId,
    /// Program-order index within the issuing processor's instruction stream.
    pub poi: u32,
}

impl fmt::Display for Iiid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.pid, self.poi)
    }
}

/// Dense identifier of an event within one [`CandidateExecution`].
///
/// Event ids are allocated contiguously from zero by [`ExecutionBuilder`],
/// which lets relations index events cheaply.
///
/// [`CandidateExecution`]: crate::execution::CandidateExecution
/// [`ExecutionBuilder`]: crate::execution::ExecutionBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    /// Returns the event id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Kinds of memory fences that can appear in a test.
///
/// The first three are the x86 flavours the original evaluation uses; the
/// remaining three exist for the relaxed (ARM/Power-style) target models:
/// acquire/release-style one-directional fences and a Power `lwsync`-style
/// lightweight fence that orders everything except write→read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FenceKind {
    /// A full fence ordering all memory operations across it (x86 `MFENCE`,
    /// ARM `DMB SY`, Power `sync`).  Cumulative under the relaxed models.
    Full,
    /// A store-store fence (x86 `SFENCE`, ARM `DMB ST`).
    StoreStore,
    /// A load-load fence (x86 `LFENCE`, ARM `DMB LD` restricted to loads).
    LoadLoad,
    /// An acquire-style fence: program-order-earlier *reads* are ordered
    /// against everything after the fence (ARM `LDAR`-like, C11 acquire).
    Acquire,
    /// A release-style fence: everything before the fence is ordered against
    /// program-order-later *writes* (ARM `STLR`-like, C11 release).
    Release,
    /// A Power `lwsync`-style lightweight fence: orders all pairs except
    /// write→read, cumulatively.
    LightweightSync,
}

impl FenceKind {
    /// Every fence kind, strongest first.
    pub const ALL: [FenceKind; 6] = [
        FenceKind::Full,
        FenceKind::LightweightSync,
        FenceKind::Acquire,
        FenceKind::Release,
        FenceKind::StoreStore,
        FenceKind::LoadLoad,
    ];
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Full => write!(f, "mfence"),
            FenceKind::StoreStore => write!(f, "sfence"),
            FenceKind::LoadLoad => write!(f, "lfence"),
            FenceKind::Acquire => write!(f, "acq"),
            FenceKind::Release => write!(f, "rel"),
            FenceKind::LightweightSync => write!(f, "lwsync"),
        }
    }
}

/// The syntactic dependency kinds a test can carry between a read and a
/// program-order-later access (paper §5.2.1: targeting MCMs weaker than TSO
/// requires growing the operation set with dependencies).
///
/// A dependency edge always goes from a read to a program-order-later access
/// of the *same* thread; relaxed models include these edges in their
/// preserved program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// The address of the target access is computed from the read's value.
    Addr,
    /// The data written by the target write is computed from the read's value.
    Data,
    /// The target access is control-dependent on the read (a branch on the
    /// read's value precedes it).
    Ctrl,
}

impl DepKind {
    /// All dependency kinds.
    pub const ALL: [DepKind; 3] = [DepKind::Addr, DepKind::Data, DepKind::Ctrl];
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Addr => write!(f, "addr"),
            DepKind::Data => write!(f, "data"),
            DepKind::Ctrl => write!(f, "ctrl"),
        }
    }
}

/// The kind of action an event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A read of a memory location.
    Read,
    /// A write to a memory location.
    Write,
    /// The read half of an atomic read-modify-write.
    RmwRead,
    /// The write half of an atomic read-modify-write.
    RmwWrite,
    /// A memory fence.
    Fence(FenceKind),
}

impl EventKind {
    /// Returns `true` for reads (including the read half of an RMW).
    pub fn is_read(self) -> bool {
        matches!(self, EventKind::Read | EventKind::RmwRead)
    }

    /// Returns `true` for writes (including the write half of an RMW).
    pub fn is_write(self) -> bool {
        matches!(self, EventKind::Write | EventKind::RmwWrite)
    }

    /// Returns `true` for fences.
    pub fn is_fence(self) -> bool {
        matches!(self, EventKind::Fence(_))
    }

    /// Returns `true` for either half of an atomic read-modify-write.
    pub fn is_rmw(self) -> bool {
        matches!(self, EventKind::RmwRead | EventKind::RmwWrite)
    }

    /// Returns `true` if the event accesses memory (read or write).
    pub fn is_memory_access(self) -> bool {
        self.is_read() || self.is_write()
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Read => write!(f, "R"),
            EventKind::Write => write!(f, "W"),
            EventKind::RmwRead => write!(f, "R*"),
            EventKind::RmwWrite => write!(f, "W*"),
            EventKind::Fence(k) => write!(f, "F[{k}]"),
        }
    }
}

/// A memory-model event.
///
/// Events are created through [`ExecutionBuilder`] which allocates their ids;
/// they are immutable thereafter.
///
/// [`ExecutionBuilder`]: crate::execution::ExecutionBuilder
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Dense identifier within the execution.
    pub id: EventId,
    /// Issuing instruction; `None` for synthetic initial-value writes.
    pub iiid: Option<Iiid>,
    /// What the event does.
    pub kind: EventKind,
    /// Accessed address; `None` for fences.
    pub addr: Option<Address>,
    /// Value read or written; [`Value::INITIAL`] for fences.
    pub value: Value,
}

impl Event {
    /// Returns `true` if the event is a synthetic initial-value write.
    pub fn is_initial(&self) -> bool {
        self.iiid.is_none() && self.kind.is_write()
    }

    /// Returns the issuing processor, if the event belongs to a real thread.
    pub fn pid(&self) -> Option<ProcessorId> {
        self.iiid.map(|i| i.pid)
    }

    /// Returns `true` if the event is a read (including the read half of a RMW).
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// Returns `true` if the event is a write (including the write half of a RMW).
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// Returns `true` if the event is a fence.
    pub fn is_fence(&self) -> bool {
        self.kind.is_fence()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.iiid, self.addr) {
            (Some(iiid), Some(addr)) => {
                write!(f, "{}[{} {}={}]", self.id, iiid, addr, self.value)?;
                write!(f, " {}", self.kind)
            }
            (Some(iiid), None) => write!(f, "{}[{}] {}", self.id, iiid, self.kind),
            (None, Some(addr)) => write!(f, "{}[init {}]", self.id, addr),
            (None, None) => write!(f, "{}[?]", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_alignment() {
        assert_eq!(Address(0).line(64), Address(0));
        assert_eq!(Address(63).line(64), Address(0));
        assert_eq!(Address(64).line(64), Address(64));
        assert_eq!(Address(0x12345).line(64), Address(0x12340));
    }

    #[test]
    fn value_initial() {
        assert!(Value::INITIAL.is_initial());
        assert!(!Value(7).is_initial());
        assert_eq!(Value::default(), Value::INITIAL);
    }

    #[test]
    fn event_kind_predicates() {
        assert!(EventKind::Read.is_read());
        assert!(EventKind::RmwRead.is_read());
        assert!(!EventKind::Write.is_read());
        assert!(EventKind::Write.is_write());
        assert!(EventKind::RmwWrite.is_write());
        assert!(!EventKind::Read.is_write());
        assert!(EventKind::Fence(FenceKind::Full).is_fence());
        assert!(!EventKind::Fence(FenceKind::Full).is_memory_access());
        assert!(EventKind::RmwWrite.is_rmw());
        assert!(EventKind::Read.is_memory_access());
    }

    #[test]
    fn display_formats_are_informative() {
        let e = Event {
            id: EventId(3),
            iiid: Some(Iiid {
                pid: ProcessorId(1),
                poi: 9,
            }),
            kind: EventKind::Write,
            addr: Some(Address(0x40)),
            value: Value(5),
        };
        let s = format!("{e}");
        assert!(s.contains("e3"));
        assert!(s.contains("P1"));
        assert!(s.contains("0x40"));
        assert!(!format!("{:?}", e).is_empty());
    }

    #[test]
    fn initial_event_detection() {
        let init = Event {
            id: EventId(0),
            iiid: None,
            kind: EventKind::Write,
            addr: Some(Address(0)),
            value: Value::INITIAL,
        };
        assert!(init.is_initial());
        assert_eq!(init.pid(), None);
    }

    #[test]
    fn fence_and_dep_kinds_display_uniquely() {
        let mut names: Vec<String> = FenceKind::ALL.iter().map(|k| k.to_string()).collect();
        names.extend(DepKind::ALL.iter().map(|k| k.to_string()));
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "fence/dep display names collide");
        assert_eq!(FenceKind::ALL.len(), 6);
        assert_eq!(DepKind::ALL.len(), 3);
    }

    #[test]
    fn ordering_of_ids_is_numeric() {
        assert!(EventId(2) < EventId(10));
        assert!(ProcessorId(0) < ProcessorId(1));
        assert!(Address(0x10) < Address(0x20));
    }
}
